"""Fitting FMT parameters from an incident database + expert interviews.

Walks through the paper's calibration methodology on synthetic data:

1. simulate a fleet of 1000 joints for 10 years under the current
   policy, logging every incident (the database the paper mined);
2. estimate the rare, non-inspectable failure modes from the database's
   failure records with a censoring-aware Erlang MLE;
3. estimate the inspectable degradation modes from (simulated) expert
   interviews, aggregating three experts' quantile assessments;
4. rebuild the model from the estimates and check that it predicts the
   observed system-level failure rate.

Run with::

    python examples/parameter_fitting.py
"""

import numpy as np
from scipy import stats as sps

from repro import MonteCarlo
from repro.data import (
    ExpertJudgment,
    aggregate_judgments,
    estimate_failure_rate,
    fit_erlang_censored,
    fit_erlang_to_quantiles,
    generate_incident_database,
    lifetimes_from_database,
)
from repro.eijoint import build_ei_joint_fmt, current_policy, default_parameters

N_JOINTS = 1000
WINDOW = 10.0


def simulated_interview(mode, rng):
    """Three experts answer 5%/50%/95% lifetime questions with noise."""
    judgments = []
    for expert in range(3):
        noisy = {}
        for level in (0.05, 0.5, 0.95):
            truth = sps.gamma.ppf(
                level, a=mode.phases, scale=mode.mean_lifetime / mode.phases
            )
            noisy[level] = float(truth) * float(rng.lognormal(0.0, 0.1))
        values = sorted(noisy.values())
        judgments.append(
            ExpertJudgment(f"expert_{expert}", dict(zip(sorted(noisy), values)))
        )
    return judgments


def main():
    truth = default_parameters()
    tree = build_ei_joint_fmt(truth)
    print(f"simulating a fleet: {N_JOINTS} joints x {WINDOW:g} years ...")
    database = generate_incident_database(
        tree, current_policy(truth), n_joints=N_JOINTS, window=WINDOW, seed=1
    )
    print(f"database: {database}")
    observed = estimate_failure_rate(database, kind="system_failure")
    print(f"observed system failure rate: {observed} per joint-year\n")

    rng = np.random.default_rng(2)
    fitted = truth
    print(f"{'mode':<22} {'source':<12} {'true mean':>10} {'fitted':>8}")
    for mode in truth.modes:
        if mode.inspectable:
            consensus = aggregate_judgments(simulated_interview(mode, rng))
            erlang = fit_erlang_to_quantiles(consensus)
            source = "experts"
            fitted = fitted.with_mode(
                mode.name,
                phases=erlang.shape,
                mean_lifetime=erlang.mean(),
                threshold=min(mode.threshold, erlang.shape),
            )
        else:
            sample = lifetimes_from_database(database, mode.name)
            erlang = fit_erlang_censored(sample, shape=mode.phases)
            source = f"database"
            fitted = fitted.with_mode(mode.name, mean_lifetime=erlang.mean())
        print(f"{mode.name:<22} {source:<12} "
              f"{mode.mean_lifetime:>10.1f} {erlang.mean():>8.1f}")

    print("\nre-simulating with the fitted parameters ...")
    prediction = MonteCarlo(
        build_ei_joint_fmt(fitted),
        current_policy(fitted),
        horizon=WINDOW,
        seed=3,
    ).run(2 * N_JOINTS)
    predicted = prediction.failures_per_year
    print(f"predicted system failure rate: {predicted} per joint-year")
    agree = predicted.lower <= observed.upper and observed.lower <= predicted.upper
    print("validation:", "AGREE (CIs overlap)" if agree else "DISAGREE")


if __name__ == "__main__":
    main()
