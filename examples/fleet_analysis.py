"""Fleet-level analysis: from one joint to the national failure count.

Combines three library features:

* traffic classes (`repro.eijoint.fleet`) — heavier-loaded joints
  degrade faster;
* the parallel Monte Carlo driver — fleet studies multiply replication
  counts, so trajectories fan out over worker processes;
* the point-availability curve — reconstructed from recorded down
  intervals.

Run with::

    python examples/fleet_analysis.py
"""

from repro import MonteCarlo
from repro.eijoint import (
    DEFAULT_TRAFFIC_MIX,
    build_ei_joint_fmt,
    current_policy,
    default_parameters,
    fleet_failures_per_year,
    scale_parameters,
)
from repro.simulation import availability_curve

FLEET_SIZE = 50_000


def main():
    # --- per-class and national failure counts ------------------------
    per_class, national = fleet_failures_per_year(
        strategy_factory=lambda params: current_policy(params),
        mix=DEFAULT_TRAFFIC_MIX,
        fleet_size=FLEET_SIZE,
        horizon=25.0,
        n_runs=800,
        seed=11,
    )
    print(f"fleet of {FLEET_SIZE:,} joints, current policy:")
    for entry in per_class:
        cls = entry.traffic_class
        print(
            f"  {cls.name:<12} share {cls.fraction:>4.0%}  "
            f"intensity x{cls.intensity:<4g} "
            f"ENF {entry.failures_per_joint_year.estimate:.4f}/joint-yr"
        )
    print(f"  -> expected service-affecting failures: {national:.0f}/year\n")

    # --- heavy-haul joints in detail, run in parallel ------------------
    heavy = scale_parameters(default_parameters(), 1.6)
    tree = build_ei_joint_fmt(heavy)
    result = MonteCarlo(
        tree,
        current_policy(heavy),
        horizon=25.0,
        seed=12,
        record_events=True,
    ).run_parallel(600, processes=2, keep_trajectories=True)
    print("heavy-haul class, 600 trajectories over 2 worker processes:")
    print(f"  failures/yr : {result.failures_per_year}")

    times = [5.0, 10.0, 20.0]
    _, intervals = availability_curve(result.trajectories, times)
    for t, interval in zip(times, intervals):
        print(f"  A({t:>4}y)     : {interval.estimate:.5f}")


if __name__ == "__main__":
    main()
