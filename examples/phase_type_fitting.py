"""From Weibull field data to an FMT basic event.

Reliability engineers often summarise field data as a Weibull lifetime;
the FMT formalism needs exponentially-timed phases.  This example walks
the bridge:

1. "field data": Weibull(scale=10, shape=2.5) lifetimes for a wear
   mode (increasing hazard — wear-out behaviour);
2. fit the Weibull from samples (`repro.data.fit_weibull`);
3. approximate it by a moment-matching Erlang
   (`repro.stats.erlang_approximation`) and report the fit quality;
4. build a basic event from it, place the detection threshold halfway,
   and quantify how much periodic inspection helps.

Run with::

    python examples/phase_type_fitting.py
"""

import numpy as np

from repro import FMTBuilder, MonteCarlo, MaintenanceStrategy
from repro.core import BasicEvent
from repro.data import fit_weibull
from repro.maintenance import InspectionModule, clean
from repro.stats import Weibull, erlang_approximation


def main():
    rng = np.random.default_rng(7)
    true_lifetime = Weibull(scale=10.0, shape=2.5)

    # --- 1+2: field data and a Weibull fit ---------------------------
    field_data = true_lifetime.sample(rng, size=500)
    fitted = fit_weibull(field_data)
    print(f"true lifetime : {true_lifetime}")
    print(f"fitted        : scale={fitted.scale:.2f}, shape={fitted.shape:.2f} "
          f"(from {len(field_data)} observations)")

    # --- 3: phase-type approximation ----------------------------------
    fit = erlang_approximation(fitted)
    print(f"\nErlang approximation: {fit.phases} phases, "
          f"rate {fit.erlang.rate:.3f}/yr")
    print(f"  target mean {fit.target_mean:.2f}y, CV {fit.target_cv:.3f}")
    print(f"  Kolmogorov distance to the Weibull: {fit.kolmogorov:.4f}")

    # --- 4: use it in a model -----------------------------------------
    builder = FMTBuilder("wearout")
    builder.add_event(
        BasicEvent.from_distribution(
            "wear",
            fitted,
            threshold_fraction=0.5,
            description="wear-out mode fitted from field data",
        )
    )
    builder.or_gate("top", ["wear"])
    tree = builder.build("top")
    event = tree.basic_events["wear"]
    print(f"\nbasic event: {event!r}")

    unmaintained = MonteCarlo(
        tree, MaintenanceStrategy.none(), horizon=100.0, seed=1
    ).run(2000)
    inspected = MonteCarlo(
        tree,
        MaintenanceStrategy(
            "yearly",
            inspections=(
                InspectionModule(
                    "check", period=1.0, targets=["wear"], action=clean()
                ),
            ),
        ),
        horizon=100.0,
        seed=1,
    ).run(2000)
    print(f"\nfailures per year, corrective only : "
          f"{unmaintained.failures_per_year}")
    print(f"failures per year, yearly inspection: "
          f"{inspected.failures_per_year}")
    ratio = (
        unmaintained.failures_per_year.estimate
        / inspected.failures_per_year.estimate
    )
    print(f"-> inspection prevents a factor {ratio:.1f} of failures; the "
          "wear-out (increasing hazard) shape is what the multi-phase "
          "approximation captures and a single exponential would miss.")


if __name__ == "__main__":
    main()
