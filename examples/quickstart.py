"""Quickstart: build a small fault maintenance tree and analyse it.

A pump system: two redundant pumps (AND) in parallel with a degrading
valve (OR at the top).  The valve degrades through four phases; from
phase 2 on, a periodic inspection can see the degradation and cleans
the valve before it fails.

Run with::

    python examples/quickstart.py
"""

from repro import FMTBuilder, CostModel, MonteCarlo, MaintenanceStrategy
from repro.analysis import minimal_cut_sets, unreliability
from repro.maintenance import InspectionModule, clean


def build_model():
    """Two redundant pumps OR a degrading valve."""
    builder = FMTBuilder("pump_system")
    builder.basic_event("pump_a", mean=5.0, description="pump A wears out")
    builder.basic_event("pump_b", mean=5.0, description="pump B wears out")
    builder.degraded_event(
        "valve",
        phases=4,
        mean=8.0,
        threshold=2,
        description="valve clogs gradually; visible from phase 2",
    )
    builder.and_gate("pumps", ["pump_a", "pump_b"])
    builder.or_gate("system", ["pumps", "valve"])
    return builder.build("system")


def main():
    tree = build_model()
    print(f"model: {tree}")

    # --- qualitative analysis: how can the system fail? -------------
    print("\nminimal cut sets:")
    for cut in minimal_cut_sets(tree):
        print("  {" + ", ".join(sorted(cut)) + "}")

    # --- exact unmaintained unreliability ----------------------------
    for t in (1.0, 5.0, 10.0):
        print(f"unreliability({t:>4}y, no maintenance) = "
              f"{unreliability(tree, t):.4f}")

    # --- condition-based maintenance ---------------------------------
    strategy = MaintenanceStrategy(
        name="quarterly-valve-inspection",
        inspections=(
            InspectionModule(
                "valve_check", period=0.25, targets=["valve"], action=clean()
            ),
        ),
        on_system_failure="replace",
    )
    cost_model = CostModel(
        inspection_visit=50.0,
        action_costs={"clean": 20.0, "replace": 400.0},
        system_failure=5000.0,
    )
    result = MonteCarlo(
        tree, strategy, horizon=20.0, cost_model=cost_model, seed=42
    ).run(5000)
    summary = result.summary

    print(f"\nunder '{strategy.name}' over {summary.horizon:g} years "
          f"({summary.n_runs} simulated lives):")
    print(f"  reliability(20y)      : {summary.reliability:.3f}")
    print(f"  failures per year     : {summary.failures_per_year}")
    print(f"  availability          : {summary.availability.estimate:.6f}")
    print(f"  cost per year         : {summary.cost_per_year}")
    breakdown = summary.cost_breakdown_per_year
    print(f"    inspections {breakdown.inspections:7.1f}  "
          f"preventive {breakdown.preventive:7.1f}  "
          f"failures {breakdown.failures:7.1f}")


if __name__ == "__main__":
    main()
