"""Rare-event estimation: importance splitting vs crude Monte Carlo.

This example reproduces the tightest inspection frequency the paper's
cost grid considers (12 rounds/yr) with both unreliability estimators
side by side:

* crude Monte Carlo — the baseline, feasible but wasteful here;
* fixed-effort importance splitting — the rare-event estimator, using
  an importance function derived from the tree structure.

Run with ``PYTHONPATH=src python examples/rare_event_estimation.py``.
"""

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy
from repro.rareevent import RareEventConfig, crude_equivalent_runs
from repro.simulation.montecarlo import MonteCarlo

INSPECTIONS_PER_YEAR = 12.0  # tightest point of the fig6 grid
HORIZON = 1.0  # one-year mission
SEED = 2016


def build_study():
    """The (model, strategy) pair of the high-inspection grid point."""
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    strategy = inspection_policy(INSPECTIONS_PER_YEAR, parameters=params)
    return tree, strategy


def main() -> None:
    tree, strategy = build_study()

    print(f"EI joint, {INSPECTIONS_PER_YEAR:g} inspections/yr, "
          f"{HORIZON:g} y mission\n")

    # --- crude Monte Carlo -------------------------------------------
    crude_n = 40_000
    crude = MonteCarlo(tree, strategy, horizon=HORIZON, seed=SEED).run(crude_n)
    u = crude.unreliability
    print(f"crude MC        p = {u.estimate:.3e}  "
          f"[{u.lower:.2e}, {u.upper:.2e}]  ({crude_n:,} trajectories)")

    # --- fixed-effort importance splitting ---------------------------
    splitting = MonteCarlo(
        tree, strategy, horizon=HORIZON, seed=SEED + 1
    ).run_rare_event(
        RareEventConfig(
            method="fixed_effort",
            thresholds=(0.5, 2.0 / 3.0),
            effort=800,
            n_replications=6,
        )
    )
    u = splitting.unreliability
    print(f"fixed effort    p = {u.estimate:.3e}  "
          f"[{u.lower:.2e}, {u.upper:.2e}]  "
          f"({splitting.n_trajectories:,} segments)")

    equivalent = crude_equivalent_runs(u)
    if equivalent is not None:
        print(f"\nthe splitting interval is as tight as a crude run of "
              f"~{equivalent:,} trajectories "
              f"({equivalent / splitting.n_trajectories:.1f}x the segments "
              "it simulated)")
    print("\nFor the genuinely rare regime (p ~ 1e-6, mean-preserving "
          "granularity refinement)\nsee `python -m repro rareevent` and "
          "docs/rare_events.md.")


if __name__ == "__main__":
    main()
