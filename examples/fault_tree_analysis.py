"""Classical fault-tree analysis and the Galileo model format.

Shows the exact (non-simulation) analysis toolbox on the EI-joint:
minimal cut sets, time-dependent unreliability with bounds, MTTF, and
importance measures — then round-trips the model through the extended
Galileo text format.

Run with::

    python examples/fault_tree_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis import (
    importance_table,
    mean_time_to_failure,
    minimal_cut_sets,
    unreliability,
    unreliability_bounds,
)
from repro.dsl import dumps, load_file, save_file
from repro.eijoint import build_ei_joint_fmt


def main():
    # Static analyses require independent events: drop the RDEPs.
    tree = build_ei_joint_fmt().without_dependencies()
    print(f"model: {tree}\n")

    print("minimal cut sets (how the joint can fail):")
    for cut in minimal_cut_sets(tree):
        print("  {" + ", ".join(sorted(cut)) + "}")

    print("\nunmaintained unreliability with cut-set bounds:")
    for t in (1.0, 5.0, 10.0, 20.0):
        exact = unreliability(tree, t)
        lower, upper = unreliability_bounds(tree, t)
        print(f"  t={t:>4}y  exact={exact:.4f}  bounds=[{lower:.4f}, {upper:.4f}]")

    print(f"\nMTTF (unmaintained): {mean_time_to_failure(tree):.2f} years")

    print("\nimportance measures at t=5y (sorted by Fussell-Vesely):")
    table = importance_table(tree, 5.0)
    ranked = sorted(table.values(), key=lambda m: m.fussell_vesely, reverse=True)
    print(f"  {'event':<22} {'p(5y)':>8} {'Birnbaum':>9} {'FV':>7} {'RAW':>7}")
    for measure in ranked:
        print(
            f"  {measure.event:<22} {measure.probability:>8.4f} "
            f"{measure.birnbaum:>9.4f} {measure.fussell_vesely:>7.3f} "
            f"{measure.raw:>7.2f}"
        )

    # --- model interchange -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ei_joint.fmt"
        save_file(build_ei_joint_fmt(), path)
        restored = load_file(path)
        print(f"\nGalileo round-trip: wrote {path.name}, "
              f"restored {restored}")
        print("first lines of the serialized model:")
        for line in dumps(restored).splitlines()[:6]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
