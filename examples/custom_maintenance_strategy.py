"""Designing a custom maintenance strategy for the EI-joint.

Demonstrates the full strategy vocabulary on the case-study model:

* different inspection periods per failure-mode group (electrical modes
  degrade faster than mechanical ones, so inspect them more often);
* a work-planning delay between detection and remedy;
* imperfect maintenance (cleaning restores only 2 phases);
* a periodic bolt re-tightening campaign (time-based RepairModule).

The custom strategy is compared against the current policy on the same
seeds and the same cost model.

Run with::

    python examples/custom_maintenance_strategy.py
"""

from repro import MonteCarlo, MaintenanceStrategy
from repro.eijoint import build_ei_joint_fmt, current_policy, default_cost_model
from repro.maintenance import (
    InspectionModule,
    RepairModule,
    clean,
    repair,
    replace,
)
from repro.units import months, weeks

HORIZON = 50.0
RUNS = 1500


def build_custom_strategy() -> MaintenanceStrategy:
    """Differentiated inspection periods + a bolt-tightening campaign."""
    electrical_check = InspectionModule(
        "electrical_check",
        period=months(3),
        targets=["ferrous_dust", "pollution_conductive"],
        action=clean(restore_phases=2),  # imperfect cleaning
        delay=weeks(2),  # the work order takes two weeks
    )
    grinding_check = InspectionModule(
        "grinding_check",
        period=months(6),
        targets=["metal_overflow"],
        action=repair(),
        delay=weeks(4),
    )
    structural_check = InspectionModule(
        "structural_check",
        period=1.0,
        targets=["glue_failure", "fishplate_crack"],
        action=replace(),
        delay=weeks(6),
    )
    bolt_campaign = RepairModule(
        "bolt_campaign",
        period=2.0,
        targets=["bolt_1", "bolt_2", "bolt_3", "bolt_4"],
        action=repair(),
    )
    return MaintenanceStrategy(
        name="differentiated",
        inspections=(electrical_check, grinding_check, structural_check),
        repairs=(bolt_campaign,),
        on_system_failure="replace",
        system_repair_time=current_policy().system_repair_time,
        description="per-group inspection periods, imperfect cleaning, "
        "planning delays, biennial bolt re-tightening",
    )


def main():
    tree = build_ei_joint_fmt()
    cost_model = default_cost_model()

    print("comparing strategies over "
          f"{HORIZON:g} years, {RUNS} runs each:\n")
    for strategy in (current_policy(), build_custom_strategy()):
        result = MonteCarlo(
            tree, strategy, horizon=HORIZON, cost_model=cost_model, seed=99
        ).run(RUNS)
        summary = result.summary
        breakdown = summary.cost_breakdown_per_year
        print(f"strategy: {strategy.name}")
        print(f"  {strategy.description}")
        print(f"  failures/yr : {summary.failures_per_year}")
        print(f"  reliability : {summary.reliability:.3f} at {HORIZON:g}y")
        print(f"  cost/yr     : {breakdown.total:8.0f}  "
              f"(planned {breakdown.planned:.0f}, "
              f"unplanned {breakdown.unplanned:.0f})")
        print(f"  actions/yr  : {summary.preventive_actions_per_year:.2f} "
              f"preventive, {summary.corrective_replacements_per_year:.3f} "
              "corrective")
        print()


if __name__ == "__main__":
    main()
