"""The EI-joint case study: compare maintenance strategies end to end.

Reproduces, at example scale, the paper's core analysis: the effect of
the inspection frequency on the reliability, expected number of
failures, and annual cost of the electrically insulated railway joint.

Run with::

    python examples/ei_joint_case_study.py
"""

from repro import MonteCarlo
from repro.eijoint import (
    build_ei_joint_fmt,
    current_policy,
    default_cost_model,
    inspection_policy,
    no_maintenance,
)

HORIZON = 50.0
RUNS = 1500


def main():
    tree = build_ei_joint_fmt()
    cost_model = default_cost_model()
    print(f"model: {tree}\n")

    strategies = [
        no_maintenance(),
        inspection_policy(1),
        inspection_policy(2),
        current_policy(),
        inspection_policy(8),
    ]

    header = (
        f"{'strategy':<18} {'ENF/yr':>10} {'R(50y)':>8} "
        f"{'cost/yr':>9} {'planned':>9} {'unplanned':>10}"
    )
    print(header)
    print("-" * len(header))
    for strategy in strategies:
        result = MonteCarlo(
            tree, strategy, horizon=HORIZON, cost_model=cost_model, seed=2016
        ).run(RUNS)
        summary = result.summary
        breakdown = summary.cost_breakdown_per_year
        print(
            f"{strategy.name:<18} "
            f"{summary.failures_per_year.estimate:>10.4f} "
            f"{summary.reliability:>8.3f} "
            f"{breakdown.total:>9.0f} "
            f"{breakdown.planned:>9.0f} "
            f"{breakdown.unplanned:>10.0f}"
        )

    print(
        "\nThe current quarterly policy minimises total cost: fewer "
        "inspections let preventable failures through, more inspections "
        "cost more than the failures they avoid."
    )


if __name__ == "__main__":
    main()
