"""Micro-benchmarks of the computational substrates.

Not tied to a paper table; these track the performance of the hot
paths (trajectory simulation, BDD compilation + quantification, cut-set
expansion, CTMC transient solve) so regressions are visible.
"""

import numpy as np

from repro.analysis.bdd import build_bdd
from repro.analysis.cutsets import minimal_cut_sets
from repro.ctmc.compiler import compile_fmt
from repro.ctmc.transient import transient_distribution
from repro.eijoint import build_ei_joint_fmt, current_policy, unmaintained
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator


def test_bench_simulate_trajectory_current_policy(benchmark):
    tree = build_ei_joint_fmt()
    simulator = FMTSimulator(tree, current_policy(), horizon=50.0)
    seeds = iter(range(10_000_000))

    def one_trajectory():
        return simulator.simulate(np.random.default_rng(next(seeds)))

    trajectory = benchmark(one_trajectory)
    assert trajectory.horizon == 50.0


def test_bench_simulate_trajectory_unmaintained(benchmark):
    tree = build_ei_joint_fmt()
    simulator = FMTSimulator(tree, unmaintained(), horizon=50.0)
    seeds = iter(range(10_000_000))
    benchmark(lambda: simulator.simulate(np.random.default_rng(next(seeds))))


def test_bench_bdd_build_and_quantify(benchmark):
    tree = build_ei_joint_fmt().without_dependencies()
    probabilities = {name: 0.05 for name in tree.basic_events}

    def build_and_eval():
        bdd, root = build_bdd(tree)
        return bdd.probability(root, probabilities)

    value = benchmark(build_and_eval)
    assert 0.0 < value < 1.0


def test_bench_minimal_cut_sets(benchmark):
    tree = build_ei_joint_fmt()
    cut_sets = benchmark(lambda: minimal_cut_sets(tree))
    assert len(cut_sets) == 13


def test_bench_ctmc_transient(benchmark):
    from repro.experiments.ctmc_crossval import build_submodel
    from repro.maintenance.actions import clean
    from repro.maintenance.modules import InspectionModule

    tree = build_submodel()
    module = InspectionModule(
        "i", period=1.0, targets=["dust"], action=clean(), timing="exponential"
    )
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    compiled = compile_fmt(tree, strategy)
    value = benchmark(
        lambda: transient_distribution(compiled.ctmc, 10.0).sum()
    )
    assert abs(value - 1.0) < 1e-9
