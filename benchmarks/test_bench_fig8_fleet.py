"""F8 — fleet-level failure count across heterogeneous traffic classes.

Expected shape: per-joint failure rates are ordered by traffic
intensity, and the 50k-joint network sees hundreds of service-affecting
EI-joint failures per year — the fleet-level magnitude that motivates
the paper.
"""

from conftest import run_once

from repro.experiments import fig8_fleet


def _estimate(cell: str) -> float:
    return float(cell.split()[0])


def test_bench_fig8_fleet(benchmark, bench_config):
    result = run_once(benchmark, fig8_fleet.run, bench_config)
    rates = [_estimate(c) for c in result.column("ENF per joint-year")]
    assert rates[0] < rates[-1]  # branch-line < heavy-haul
    total_note = next(n for n in result.notes if "per year network-wide" in n)
    import re

    total = float(re.search(r"([\d.]+) per year", total_note).group(1))
    assert 100.0 < total < 5000.0