"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the evaluation (see
DESIGN.md's experiment index) at a reduced-but-meaningful replication
count, assert the paper's qualitative claims, and print the regenerated
table (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Replication configuration used by all benchmarks."""
    return ExperimentConfig(n_runs=600, horizon=40.0, seed=2016)


def run_once(benchmark, runner, config):
    """Run an experiment exactly once under the benchmark timer."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result
