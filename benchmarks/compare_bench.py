"""Diff a fresh engine benchmark against the committed baseline.

Loads two ``repro-bench/1`` JSON files (a fresh run and the committed
``BENCH_engine.json``), compares ``median_s_per_trajectory`` per
workload, and fails when any workload regressed by more than
``--max-regression`` (default 25% — generous enough to absorb machine
differences between the baseline host and CI runners, tight enough to
catch a hot-path pessimisation).  Improvements never fail.

``--require-speedup WORKLOAD:BASELINE:FACTOR`` (repeatable) gates a
minimum speedup *within the fresh results file* — both medians come
from the same host and run, so the committed baseline's hardware cannot
fake or mask the ratio.  CI uses it to hold the vectorized kernel to
its advertised edge over the object engine.

With ``--max-overhead`` it additionally measures the fully-instrumented
(spans + progress + metrics) throughput of the EI-joint current-policy
workload against an uninstrumented run and fails when the telemetry
costs more than the given fraction — the same budget
``tests/test_telemetry.py`` enforces, exercised here against the real
benchmark workload so the CI bench job guards it too.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py fresh.json
    PYTHONPATH=src python benchmarks/compare_bench.py fresh.json \
        --baseline BENCH_engine.json --max-regression 0.25 \
        --max-overhead 0.05
    PYTHONPATH=src python benchmarks/compare_bench.py fresh.json \
        --require-speedup eijoint-unmaintained-vectorized:eijoint-unmaintained:10
    PYTHONPATH=src python benchmarks/compare_bench.py fresh.json \
        --require-floor eijoint-current-policy-vectorized:25000 \
        --check-shm-leak
    PYTHONPATH=src python benchmarks/compare_bench.py --max-overhead 0.05

``--require-floor WORKLOAD:TRAJ_PER_SEC`` gates an absolute throughput
floor, and ``--check-shm-leak`` exercises the zero-copy shared-memory
parallel fold (clean and worker-crash paths) and fails on any leaked
``/dev/shm`` segment.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_engine.json")


def load_bench(path: str) -> Dict[str, dict]:
    """Workload table of a ``repro-bench/1`` file, schema-checked."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != "repro-bench/1":
        raise SystemExit(f"{path}: not a repro-bench/1 file")
    return payload["workloads"]


def compare(
    fresh: Dict[str, dict],
    baseline: Dict[str, dict],
    max_regression: float,
) -> Tuple[List[str], List[str]]:
    """(report lines, violation lines) for workloads present in both.

    Workloads only present on one side are reported but never fail the
    comparison: a quick run and a full baseline legitimately differ in
    batch sizing, not in workload set, so a disappearance is worth a
    line yet should not block adding or retiring a workload.
    """
    lines: List[str] = []
    violations: List[str] = []
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        violations.append("no shared workloads between fresh run and baseline")
    for name in shared:
        fresh_median = fresh[name]["median_s_per_trajectory"]
        base_median = baseline[name]["median_s_per_trajectory"]
        delta = fresh_median / base_median - 1.0
        marker = " "
        if delta > max_regression:
            marker = "!"
            violations.append(
                f"{name}: {delta:+.1%} slower than baseline "
                f"(budget {max_regression:+.0%})"
            )
        lines.append(
            f"{marker} {name:32s} {base_median * 1e6:10.2f} -> "
            f"{fresh_median * 1e6:10.2f} us/traj  ({delta:+6.1%})"
        )
    for name in sorted(set(baseline) - set(fresh)):
        lines.append(f"  {name:32s} (not in fresh run)")
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"  {name:32s} (new, no baseline)")
    return lines, violations


def parse_speedup_spec(spec: str) -> Tuple[str, str, float]:
    """Parse ``WORKLOAD:BASELINE:FACTOR`` into its three parts."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"--require-speedup {spec!r}: expected WORKLOAD:BASELINE:FACTOR"
        )
    workload, baseline, factor_text = parts
    try:
        factor = float(factor_text)
    except ValueError:
        raise SystemExit(
            f"--require-speedup {spec!r}: FACTOR must be a number"
        ) from None
    if factor <= 0.0:
        raise SystemExit(f"--require-speedup {spec!r}: FACTOR must be > 0")
    return workload, baseline, factor


def check_speedups(
    fresh: Dict[str, dict], specs: List[str]
) -> Tuple[List[str], List[str]]:
    """(report lines, violations) for ``--require-speedup`` gates.

    Both workloads come from the SAME fresh results file — a fresh-vs-
    fresh ratio on one host, so machine differences against the
    committed baseline can neither mask nor fake a kernel speedup.
    """
    lines: List[str] = []
    violations: List[str] = []
    for spec in specs:
        workload, baseline, factor = parse_speedup_spec(spec)
        missing = [name for name in (workload, baseline) if name not in fresh]
        if missing:
            violations.append(
                f"--require-speedup {spec}: missing workload(s) "
                f"{', '.join(missing)} in fresh run"
            )
            continue
        ratio = (
            fresh[baseline]["median_s_per_trajectory"]
            / fresh[workload]["median_s_per_trajectory"]
        )
        marker = " " if ratio >= factor else "!"
        lines.append(
            f"{marker} speedup {workload} vs {baseline}: {ratio:.1f}x "
            f"(required {factor:g}x)"
        )
        if ratio < factor:
            violations.append(
                f"{workload} is only {ratio:.2f}x faster than {baseline} "
                f"(required {factor:g}x)"
            )
    return lines, violations


def parse_floor_spec(spec: str) -> Tuple[str, float]:
    """Parse ``WORKLOAD:TRAJ_PER_SEC`` into its two parts."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise SystemExit(
            f"--require-floor {spec!r}: expected WORKLOAD:TRAJ_PER_SEC"
        )
    workload, floor_text = parts
    try:
        floor = float(floor_text)
    except ValueError:
        raise SystemExit(
            f"--require-floor {spec!r}: TRAJ_PER_SEC must be a number"
        ) from None
    if floor <= 0.0:
        raise SystemExit(f"--require-floor {spec!r}: TRAJ_PER_SEC must be > 0")
    return workload, floor


def check_floors(
    fresh: Dict[str, dict], specs: List[str]
) -> Tuple[List[str], List[str]]:
    """(report lines, violations) for ``--require-floor`` gates.

    Absolute throughput floors from the fresh results file — the
    acceptance criterion "this workload sustains N trajectories per
    second" checked on the machine that just ran it.
    """
    lines: List[str] = []
    violations: List[str] = []
    for spec in specs:
        workload, floor = parse_floor_spec(spec)
        if workload not in fresh:
            violations.append(
                f"--require-floor {spec}: workload {workload!r} missing "
                "in fresh run"
            )
            continue
        rate = fresh[workload]["trajectories_per_sec"]
        marker = " " if rate >= floor else "!"
        lines.append(
            f"{marker} floor {workload}: {rate:,.0f} traj/s "
            f"(required {floor:,.0f})"
        )
        if rate < floor:
            violations.append(
                f"{workload} sustains only {rate:,.0f} traj/s "
                f"(floor {floor:,.0f})"
            )
    return lines, violations


def check_shm_leak() -> List[str]:
    """Violations if the shared-memory fan-out leaks segments.

    Runs the zero-copy parallel fold twice — once to completion, once
    with seeds that crash every worker — and asserts ``/dev/shm`` holds
    no new ``psm_*`` segments afterwards (the driver must unlink in a
    ``finally`` on both paths).  Skipped (no violation) on hosts
    without POSIX shared memory.
    """
    import glob

    import numpy as np

    from repro.eijoint.model import build_ei_joint_fmt
    from repro.eijoint.strategies import current_policy
    from repro.simulation.executor import FMTSimulator, SimulationConfig
    from repro.simulation.parallel import sample_parallel_batch
    from repro.simulation.shm import shared_memory_available

    if not shared_memory_available():
        print("shm leak check: shared memory unavailable, skipped")
        return []

    def segments() -> set:
        return set(glob.glob("/dev/shm/psm_*"))

    before = segments()
    simulator = FMTSimulator(
        build_ei_joint_fmt(), current_policy(), horizon=10.0
    )
    sample_parallel_batch(
        simulator,
        np.random.SeedSequence(2016).spawn(64),
        processes=2,
        chunk_size=16,
        use_shared_memory=True,
    )
    clean_leak = segments() - before
    try:
        sample_parallel_batch(
            simulator,
            ["not-a-seed"] * 8,
            processes=2,
            chunk_size=2,
            use_shared_memory=True,
        )
    except Exception:
        pass  # the crash is the point; only the cleanup matters
    crash_leak = segments() - before
    violations = []
    if clean_leak:
        violations.append(
            f"shared-memory fold leaked {sorted(clean_leak)} on the "
            "clean path"
        )
    if crash_leak:
        violations.append(
            f"shared-memory fold leaked {sorted(crash_leak)} on the "
            "worker-crash path"
        )
    if not violations:
        print("shm leak check: no segments leaked (clean + crash paths)")
    return violations


def measure_telemetry_overhead(n_runs: int = 300, reps: int = 5) -> float:
    """Fractional cost of full telemetry on the EI-joint workload.

    Interleaved plain/instrumented runs compared on CPU time
    (scheduler preemption must not masquerade as telemetry cost), with
    the per-leg minimum as the noise-robust estimator — mirrors
    tests/test_telemetry.py.
    """
    import io
    import time

    from repro.eijoint.model import build_ei_joint_fmt
    from repro.eijoint.strategies import current_policy
    from repro.observability import (
        Instrumentation,
        JsonlProgressReporter,
        SpanCollector,
        spans,
        use_progress,
    )
    from repro.simulation.montecarlo import MonteCarlo

    tree = build_ei_joint_fmt()
    policy = current_policy()

    def leg(instrumented: bool) -> float:
        if instrumented:
            mc = MonteCarlo(
                tree, policy, horizon=15.0, seed=2016,
                instrumentation=Instrumentation(),
            )
            collector = SpanCollector()
            reporter = JsonlProgressReporter(stream=io.StringIO())
            start = time.process_time()
            with spans.use(collector), use_progress(reporter):
                mc.run(n_runs)
            return time.process_time() - start
        mc = MonteCarlo(tree, policy, horizon=15.0, seed=2016)
        start = time.process_time()
        mc.run(n_runs)
        return time.process_time() - start

    leg(False), leg(True)  # warm caches outside the measurement
    plain, full = [], []
    for _ in range(reps):
        plain.append(leg(False))
        full.append(leg(True))
    return min(full) / min(plain) - 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", metavar="FRESH_JSON",
        help="fresh benchmark JSON to compare (omit to only check overhead)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help="committed baseline JSON (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRACTION",
        help="fail when a workload is this much slower (default 0.25)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None, metavar="FRACTION",
        help="also measure full-telemetry overhead and fail above this",
    )
    parser.add_argument(
        "--require-speedup", action="append", default=[],
        metavar="WORKLOAD:BASELINE:FACTOR",
        help="fail unless WORKLOAD is at least FACTOR times faster than "
        "BASELINE within the fresh results file (repeatable; e.g. "
        "eijoint-unmaintained-vectorized:eijoint-unmaintained:10)",
    )
    parser.add_argument(
        "--require-floor", action="append", default=[],
        metavar="WORKLOAD:TRAJ_PER_SEC",
        help="fail unless WORKLOAD sustains at least this many "
        "trajectories per second in the fresh results file (repeatable; "
        "e.g. eijoint-current-policy-vectorized:25000)",
    )
    parser.add_argument(
        "--check-shm-leak", action="store_true",
        help="run the shared-memory parallel fold (clean + worker-crash "
        "paths) and fail if any /dev/shm segment is left behind",
    )
    args = parser.parse_args(argv)
    if (
        args.fresh is None
        and args.max_overhead is None
        and not args.check_shm_leak
    ):
        parser.error("give FRESH_JSON, --max-overhead, --check-shm-leak, or a combination")
    if args.require_speedup and args.fresh is None:
        parser.error("--require-speedup needs FRESH_JSON")
    if args.require_floor and args.fresh is None:
        parser.error("--require-floor needs FRESH_JSON")

    violations: List[str] = []
    if args.fresh is not None:
        fresh = load_bench(args.fresh)
        baseline = load_bench(args.baseline)
        lines, bench_violations = compare(
            fresh, baseline, args.max_regression
        )
        print(f"fresh: {args.fresh}\nbaseline: {args.baseline}")
        for line in lines:
            print(line)
        violations.extend(bench_violations)
        if args.require_speedup:
            speedup_lines, speedup_violations = check_speedups(
                fresh, args.require_speedup
            )
            for line in speedup_lines:
                print(line)
            violations.extend(speedup_violations)
        if args.require_floor:
            floor_lines, floor_violations = check_floors(
                fresh, args.require_floor
            )
            for line in floor_lines:
                print(line)
            violations.extend(floor_violations)

    if args.check_shm_leak:
        violations.extend(check_shm_leak())

    if args.max_overhead is not None:
        overhead: Optional[float] = None
        for _ in range(3):  # retry: absorb a noisy-machine outlier
            overhead = measure_telemetry_overhead()
            if overhead <= args.max_overhead:
                break
        print(
            f"telemetry overhead: {overhead:+.2%} "
            f"(budget {args.max_overhead:.0%})"
        )
        if overhead > args.max_overhead:
            violations.append(
                f"full telemetry costs {overhead:.1%} throughput "
                f"(budget {args.max_overhead:.0%})"
            )

    if violations:
        print("\nFAIL:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
