"""T2 — regenerate the maintenance-strategy comparison table."""

from conftest import run_once

from repro.experiments import table2_strategies


def test_bench_table2_strategies(benchmark, bench_config):
    result = run_once(benchmark, table2_strategies.run, bench_config)
    strategies = result.column("strategy")
    assert "current-policy" in strategies
    assert "corrective-only" in strategies
