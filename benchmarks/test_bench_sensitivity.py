"""S1 — parameter-sensitivity tornado of the ENF prediction.

The sensitivity ranking backs the paper's emphasis on parameter
accuracy: a handful of mean lifetimes dominate the prediction's
uncertainty.
"""

from conftest import run_once

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark, bench_config):
    result = run_once(benchmark, sensitivity.run, bench_config)
    assert len(result.rows) == 11
    swings = [float(cell) for cell in result.column("swing")]
    # Sorted by descending swing, and the spread is real: the most
    # influential parameter moves the KPI clearly more than the least.
    assert swings == sorted(swings, reverse=True)
    assert swings[0] > 2.0 * swings[-1]
