"""F7 — regenerate the renewal-period sensitivity sweep.

Expected shape (paper-consistent): on top of condition-based quarterly
inspections, periodic full renewal reduces the residual failures from
no-warning modes slightly but always costs more than it saves — the
current policy without scheduled renewal remains cheapest.
"""

from conftest import run_once

from repro.experiments import fig7_renewal


def _estimate(cell: str) -> float:
    return float(cell.split()[0])


def test_bench_fig7_renewal(benchmark, bench_config):
    result = run_once(benchmark, fig7_renewal.run, bench_config)
    totals = [float(cell) for cell in result.column("cost/yr TOTAL")]
    enf = [_estimate(cell) for cell in result.column("ENF per year")]
    # No-renewal (first row) is the cheapest overall.
    assert totals[0] == min(totals)
    # Aggressive renewal (last row, every 5y) does reduce failures...
    assert enf[-1] < enf[0] + 1e-9
    # ...but costs several times more in total.
    assert totals[-1] > 2.0 * totals[0]
