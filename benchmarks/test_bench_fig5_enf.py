"""F5 — regenerate expected-number-of-failures vs inspection frequency.

Expected shape (paper): ENF drops steeply from corrective-only to
yearly inspections, then saturates towards the floor set by the
failure modes that give no advance warning.
"""

from conftest import run_once

from repro.experiments import fig5_enf


def _estimate(cell: str) -> float:
    return float(cell.split()[0])


def test_bench_fig5_enf(benchmark, bench_config):
    result = run_once(benchmark, fig5_enf.run, bench_config)
    enf = [_estimate(cell) for cell in result.column("ENF per year")]
    # Steep initial drop (paper: inspections prevent most failures).
    assert enf[1] < enf[0] / 2.5
    # Diminishing returns: the 1x->12x gain is far smaller than 0->1x.
    assert (enf[1] - enf[-1]) < (enf[0] - enf[1]) / 2
    # Saturation floor: even 12x cannot eliminate no-warning failures.
    assert enf[-1] > 0.0
