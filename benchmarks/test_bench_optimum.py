"""OPT — golden-section search for the cost-optimal inspection frequency.

The paper's conclusion in one number: the searched optimum lies near
the current quarterly policy, and the current policy's cost is within a
few percent of the optimum.
"""

import re

from conftest import run_once

from repro.experiments import optimum


def test_bench_optimum(benchmark, bench_config):
    result = run_once(benchmark, optimum.run, bench_config)
    frequency = float(result.rows[0][1])
    assert 1.0 <= frequency <= 9.0
    note = next(n for n in result.notes if "close to cost-optimal" in n)
    gap = float(re.search(r"within (-?[\d.]+)%", note).group(1))
    assert gap < 15.0
