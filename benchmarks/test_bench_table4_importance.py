"""T4 — regenerate the failure-mode importance table.

Expected shape: the fast-degrading inspectable modes dominate the
unmaintained joint; under the current policy their share collapses and
the no-warning modes dominate the residual failures.
"""

from conftest import run_once

from repro.experiments import table4_importance


def test_bench_table4_importance(benchmark, bench_config):
    result = run_once(benchmark, table4_importance.run, bench_config)
    modes = result.column("failure mode")
    unmaintained = [
        float(c.rstrip("%")) for c in result.column("share unmaintained")
    ]
    maintained = [
        float(c.rstrip("%")) for c in result.column("share current policy")
    ]
    dust = modes.index("ferrous_dust")
    # Dust dominates the unmaintained joint and is suppressed by the
    # current policy.
    assert unmaintained[dust] == max(unmaintained)
    assert maintained[dust] < unmaintained[dust]
    # No-warning modes gain relative share under maintenance.
    no_warning = maintained[modes.index("rail_end_break")] + maintained[
        modes.index("endpost_defect")
    ]
    assert no_warning > 20.0
