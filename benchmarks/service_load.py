"""Service load harness: concurrent clients, write ``BENCH_service.json``.

Boots the analysis service in-process (``repro.serve_app`` on an
ephemeral port), then drives it with many concurrent HTTP clients in
two phases:

* **cached** — every client POSTs the *same* study whose result is
  already resident, so each request is a synchronous StudyKey cache
  hit.  This measures the HTTP + wire + cache-lookup overhead alone.
* **uncached** — each client POSTs a distinct study (unique seed) and
  polls until done, so every request simulates.  This measures
  end-to-end job latency under queue contention, with the submission
  loop retrying on 429 backpressure.

Latency statistics (p50/p99, req/s) for both phases land in
``BENCH_service.json`` at the repository root, ``repro-bench/1``
schema like the engine baseline.

Usage::

    PYTHONPATH=src python benchmarks/service_load.py                # full
    PYTHONPATH=src python benchmarks/service_load.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/service_load.py --clients 200
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_service.json")


def _study_payload(seed: int, n_runs: int) -> bytes:
    from repro.eijoint import build_ei_joint_fmt, current_policy
    from repro.service.wire import encode_wire
    from repro.studies.runner import StudyRequest

    request = StudyRequest(
        tree=build_ei_joint_fmt(),
        strategy=current_policy(),
        horizon=10.0,
        seed=seed,
        n_runs=n_runs,
    )
    # Submit like a client that does not care about engine internals:
    # no kernel field, so the service routes eligible studies to the
    # vectorized kernel (the ``kernel`` key in the response says which
    # one actually ran).
    envelope = encode_wire(request)
    envelope["payload"].pop("kernel", None)
    return json.dumps(envelope).encode("utf-8")


def _post(base: str, payload: bytes):
    request = urllib.request.Request(
        f"{base}/v1/studies", data=payload, method="POST"
    )
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}", timeout=60) as response:
        return response.status, json.loads(response.read())


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _stats(latencies: List[float], wall: float, errors: int) -> Dict:
    return {
        "requests": len(latencies),
        "errors": errors,
        "p50_latency_s": statistics.median(latencies),
        "p99_latency_s": _percentile(latencies, 0.99),
        "max_latency_s": max(latencies),
        "wall_s": wall,
        "requests_per_sec": len(latencies) / wall if wall > 0 else float("inf"),
    }


def _fan_out(clients: int, work) -> "tuple[List[float], float, int]":
    """Run ``work(client_index) -> latency_seconds`` on N threads at once."""
    latencies: List[float] = []
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait()
        try:
            latency = work(index)
        except Exception:
            with lock:
                errors[0] += 1
            return
        with lock:
            latencies.append(latency)

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if not latencies:
        raise SystemExit("every client errored; no latencies to report")
    return latencies, wall, errors[0]


def _cached_phase(base: str, clients: int, n_runs: int) -> Dict:
    payload = _study_payload(seed=7, n_runs=n_runs)
    # Prime: submit once and wait until the result is cached.
    status, body = _post(base, payload)
    if status == 202:
        location = body["location"]
        deadline = time.time() + 120.0
        while time.time() < deadline:
            status, body = _get(base, location)
            if body["status"] in ("done", "failed"):
                break
            time.sleep(0.02)
        assert body["status"] == "done", body
    status, body = _post(base, payload)
    assert status == 200 and body["cached"], (status, body)

    def work(index: int) -> float:
        started = time.perf_counter()
        status, body = _post(base, payload)
        assert status == 200 and body["cached"], (status, body)
        return time.perf_counter() - started

    latencies, wall, errors = _fan_out(clients, work)
    return _stats(latencies, wall, errors)


def _uncached_phase(base: str, clients: int, n_runs: int) -> Dict:
    payloads = [
        _study_payload(seed=1000 + index, n_runs=n_runs)
        for index in range(clients)
    ]

    def work(index: int) -> float:
        started = time.perf_counter()
        while True:  # submit, honoring 429 backpressure
            status, body = _post(base, payloads[index])
            if status == 202:
                break
            if status == 200 and body.get("cached"):
                return time.perf_counter() - started
            assert status == 429, (status, body)
            time.sleep(min(0.1, float(body.get("retry_after", 0.1))))
        location = body["location"]
        while True:
            status, body = _get(base, location)
            if body["status"] == "done":
                return time.perf_counter() - started
            assert body["status"] != "failed", body
            time.sleep(0.01)

    latencies, wall, errors = _fan_out(clients, work)
    return _stats(latencies, wall, errors)


def run(clients: int, n_runs: int, workers: int, quick: bool) -> Dict:
    from repro import serve_app
    from repro._version import __version__

    server = serve_app(port=0, workers=workers, max_pending=max(16, clients // 4))
    server.start()
    try:
        base = server.url
        uncached = _uncached_phase(base, clients, n_runs)
        print(
            f"uncached: {uncached['requests']} ok, "
            f"p50 {uncached['p50_latency_s'] * 1e3:.1f} ms, "
            f"p99 {uncached['p99_latency_s'] * 1e3:.1f} ms, "
            f"{uncached['requests_per_sec']:.1f} req/s"
        )
        cached = _cached_phase(base, clients, n_runs)
        print(
            f"cached:   {cached['requests']} ok, "
            f"p50 {cached['p50_latency_s'] * 1e3:.1f} ms, "
            f"p99 {cached['p99_latency_s'] * 1e3:.1f} ms, "
            f"{cached['requests_per_sec']:.1f} req/s"
        )
    finally:
        server.stop()
    return {
        "schema": "repro-bench/1",
        "suite": "service",
        "version": __version__,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "concurrent_clients": clients,
            "n_runs_per_study": n_runs,
            "workers": workers,
        },
        "workloads": {
            "submit-cached": cached,
            "submit-uncached": uncached,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients",
        type=int,
        default=100,
        help="concurrent HTTP clients per phase (default 100)",
    )
    parser.add_argument(
        "--n-runs",
        type=int,
        default=200,
        help="trajectories per submitted study",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="service worker threads"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing (fewer clients, tiny studies)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    args = parser.parse_args(argv)
    clients = 25 if args.quick else args.clients
    n_runs = 20 if args.quick else args.n_runs
    payload = run(clients, n_runs, args.workers, args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
