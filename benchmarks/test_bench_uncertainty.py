"""U1 — prediction uncertainty by parametric bootstrap of the calibration.

Expected shape: the bootstrap predictions scatter tightly around the
observed failure rate; the 90% prediction band contains it — parameter
uncertainty does not break the paper's validation claim.
"""

from conftest import run_once

from repro.experiments import uncertainty


def test_bench_uncertainty(benchmark, bench_config):
    result = run_once(benchmark, uncertainty.run, bench_config)
    predictions = [
        float(cell) for cell in result.column("predicted ENF/joint-yr")
    ]
    assert len(predictions) == uncertainty.N_BOOTSTRAP
    # Every calibration lands in the right order of magnitude.
    assert all(0.002 < p < 0.05 for p in predictions)
    assert any("lies within" in note for note in result.notes)
