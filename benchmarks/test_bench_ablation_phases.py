"""A2 — ablation: degradation phase count (value of Erlang modelling).

DESIGN.md design-choice ablation: phased degradation is what gives
inspections a detection window.  With a single memoryless phase the
ferrous-dust mode cannot be caught before failure; with more phases
the prevented fraction rises.
"""

from conftest import run_once

from repro.experiments import ablation_phases


def test_bench_ablation_phases(benchmark, bench_config):
    result = run_once(benchmark, ablation_phases.run, bench_config)
    prevented = [float(c.rstrip("%")) for c in result.column("prevented")]
    # Multi-phase variants prevent a clearly larger share than 1-phase.
    assert prevented[-1] > prevented[0] + 5.0
