"""F6 — regenerate the cost U-curve vs inspection frequency.

The paper's central conclusion: total expected cost per year is
U-shaped in the inspection frequency, and the current (quarterly)
policy is at or immediately next to the optimum — more inspections
increase reliability but the added maintenance cost outweighs the
avoided failure cost.
"""

from conftest import run_once

from repro.experiments import fig6_cost


def test_bench_fig6_cost(benchmark, bench_config):
    result = run_once(benchmark, fig6_cost.run, bench_config)
    frequencies = [float(cell) for cell in result.column("inspections/yr")]
    totals = [float(cell) for cell in result.column("TOTAL")]
    failures = [float(cell) for cell in result.column("failures")]
    inspections = [float(cell) for cell in result.column("inspections")]

    # Corrective-only is by far the most expensive.
    assert totals[0] == max(totals)
    # Inspection spend grows monotonically with frequency...
    assert all(b >= a for a, b in zip(inspections, inspections[1:]))
    # ...while failure cost falls.
    assert failures[-1] < failures[0]
    # U-shape with an interior optimum near the current policy (4/yr).
    optimum = frequencies[totals.index(min(totals))]
    assert 1.0 <= optimum <= 8.0
    assert totals[-1] > min(totals)
    # The current policy is within 15% of the optimum.
    current_total = totals[frequencies.index(4.0)]
    assert current_total <= min(totals) * 1.15
