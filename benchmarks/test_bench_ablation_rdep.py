"""A1 — ablation: the bolt->glue rate-dependency factor.

DESIGN.md design-choice ablation: disabling the RDEP (factor 1)
under-predicts glue failures several-fold; the glue-failure rate grows
monotonically with the acceleration factor, while the system-level ENF
moves little (glue is a slow mode) — the reason the dependency needs
the FMT formalism to be seen at all.
"""

from conftest import run_once

from repro.experiments import ablation_rdep


def test_bench_ablation_rdep(benchmark, bench_config):
    result = run_once(benchmark, ablation_rdep.run, bench_config)
    glue = [
        float(cell) for cell in result.column("glue failures /1000 joint-yr")
    ]
    # Disabling the dependency loses most glue failures.
    assert glue[-1] > 3.0 * glue[0]
    # Roughly monotone in the factor (Monte Carlo slack).
    assert all(b >= a * 0.8 for a, b in zip(glue, glue[1:]))
