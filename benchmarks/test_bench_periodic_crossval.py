"""A5 — cross-validation of the simulator's *periodic* inspection path.

Every exact value (piecewise matrix exponentials between deterministic
inspection epochs) must lie inside the simulator's confidence interval,
including the imperfect-detection variant.
"""

from conftest import run_once

from repro.experiments import periodic_crossval
from repro.experiments.common import ExperimentConfig


def test_bench_periodic_crossval(benchmark, bench_config):
    config = ExperimentConfig(
        n_runs=3000, horizon=bench_config.horizon, seed=bench_config.seed
    )
    result = run_once(benchmark, periodic_crossval.run, config)
    assert all(cell == "yes" for cell in result.column("within CI"))
