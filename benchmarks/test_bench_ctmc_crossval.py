"""A3 — cross-validation of the simulator against exact CTMC numerics.

Every KPI of the Markovian submodel must agree between engines: the
exact uniformization value must lie inside the Monte Carlo confidence
interval.
"""

from conftest import run_once

from repro.experiments import ctmc_crossval
from repro.experiments.common import ExperimentConfig


def test_bench_ctmc_crossval(benchmark, bench_config):
    config = ExperimentConfig(
        n_runs=4000, horizon=bench_config.horizon, seed=bench_config.seed
    )
    result = run_once(benchmark, ctmc_crossval.run, config)
    assert all(cell == "yes" for cell in result.column("within CI"))
