"""Memory-ceiling smoke test for the streaming Monte Carlo path.

Runs a 50 000-trajectory EI-joint study with ``keep_trajectories=False``
under :mod:`tracemalloc` and fails if the Python-heap peak exceeds a
fixed budget.  The budget (16 MB) is calibrated so that the columnar
streaming path passes with ~2.5x headroom while the historical
keep-everything object path (~32 MB peak for the same study) fails it —
a regression that silently reintroduces O(n_runs) object retention
trips this check in CI.

Usage::

    PYTHONPATH=src python benchmarks/memory_smoke.py            # 50k runs
    PYTHONPATH=src python benchmarks/memory_smoke.py --runs 5000
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc

#: Python-heap peak budget for the streaming study, in bytes.
PEAK_BUDGET_BYTES = 16 * 1024 * 1024

DEFAULT_RUNS = 50_000
HORIZON = 50.0
SEED = 2016


def measure_peak(n_runs: int) -> int:
    from repro.eijoint import build_ei_joint_fmt, default_cost_model, unmaintained
    from repro.simulation.montecarlo import MonteCarlo

    mc = MonteCarlo(
        build_ei_joint_fmt(),
        unmaintained(),
        horizon=HORIZON,
        cost_model=default_cost_model(),
        seed=SEED,
    )
    tracemalloc.start()
    result = mc.run(n_runs, keep_trajectories=False)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert result.batch is not None and result.batch.n_runs == n_runs
    return peak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument(
        "--budget-bytes", type=int, default=PEAK_BUDGET_BYTES, metavar="N"
    )
    args = parser.parse_args(argv)
    peak = measure_peak(args.runs)
    verdict = "OK" if peak <= args.budget_bytes else "OVER BUDGET"
    print(
        f"streaming study ({args.runs} runs): peak {peak / 1e6:.2f} MB, "
        f"budget {args.budget_bytes / 1e6:.2f} MB — {verdict}"
    )
    return 0 if peak <= args.budget_bytes else 1


if __name__ == "__main__":
    sys.exit(main())
