"""F4 — regenerate the reliability-over-time curves per strategy.

Expected shape (paper): every curve starts at 1 and decays; curves are
ordered by maintenance intensity — the unmaintained joint decays
fastest, frequent inspection keeps reliability highest.
"""

from conftest import run_once

from repro.experiments import fig4_reliability


def test_bench_fig4_reliability(benchmark, bench_config):
    result = run_once(benchmark, fig4_reliability.run, bench_config)
    unmaintained = [float(x) for x in result.column("unmaintained")]
    one_per_year = [float(x) for x in result.column("inspect-1x")]
    current = [float(x) for x in result.column("current-policy(4x)")]
    twelve = [float(x) for x in result.column("inspect-12x")]

    # Start at 1 and never increase.
    for curve in (unmaintained, one_per_year, current, twelve):
        assert curve[0] == 1.0
        assert all(b <= a + 0.02 for a, b in zip(curve, curve[1:]))
    # Ordering by maintenance intensity at the horizon (with slack for
    # Monte Carlo noise between the two frequent-inspection curves).
    assert unmaintained[-1] < one_per_year[-1]
    assert one_per_year[-1] < current[-1] + 0.05
    assert current[-1] <= twelve[-1] + 0.05
