"""Engine benchmark harness: measure the hot path, write ``BENCH_engine.json``.

Runs the trajectory-simulation workloads that dominate every experiment
of the paper's evaluation and records wall-clock statistics to a JSON
baseline at the repository root, so performance PRs have a trajectory
to compare against (see docs/performance.md).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py --out /tmp/bench.json

The numbers are medians over repeated batches (p95 included to expose
variance); ``trajectories_per_sec`` is derived from the median.  The
workloads seed their RNG streams deterministically, so two runs on the
same machine measure the same work.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_engine.json")


def _simulate_workload(strategy_factory, horizon: float = 50.0):
    """A closure simulating one batch of trajectories per call."""
    from repro.eijoint import build_ei_joint_fmt
    from repro.simulation.executor import FMTSimulator

    simulator = FMTSimulator(build_ei_joint_fmt(), strategy_factory(), horizon=horizon)

    def batch(seeds) -> None:
        for seed in seeds:
            simulator.simulate(np.random.default_rng(seed))

    return batch


def _montecarlo_workload(strategy_factory, horizon: float = 50.0):
    """Full MonteCarlo.run() including KPI summarization."""
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
        )
        mc.run(len(seeds))

    return batch


def build_workloads() -> Dict[str, Callable]:
    from repro.eijoint import current_policy, unmaintained

    return {
        "eijoint-current-policy": _simulate_workload(current_policy),
        "eijoint-unmaintained": _simulate_workload(unmaintained),
        "eijoint-montecarlo": _montecarlo_workload(current_policy),
    }


def measure(
    batch: Callable, batch_size: int, repeats: int, warmup: int = 1
) -> Dict[str, float]:
    """Time ``repeats`` batches of ``batch_size`` trajectories each."""
    for _ in range(warmup):
        batch(range(batch_size))
    per_trajectory: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        batch(range(batch_size))
        elapsed = time.perf_counter() - start
        per_trajectory.append(elapsed / batch_size)
    per_trajectory.sort()
    median = statistics.median(per_trajectory)
    p95 = per_trajectory[min(len(per_trajectory) - 1, int(0.95 * len(per_trajectory)))]
    return {
        "batch_size": batch_size,
        "repeats": repeats,
        "median_s_per_trajectory": median,
        "p95_s_per_trajectory": p95,
        "trajectories_per_sec": 1.0 / median if median > 0 else float("inf"),
    }


def run(quick: bool = False) -> Dict[str, object]:
    batch_size = 50 if quick else 200
    repeats = 3 if quick else 9
    results = {}
    for name, batch in build_workloads().items():
        results[name] = measure(batch, batch_size, repeats)
        print(
            f"{name}: median {results[name]['median_s_per_trajectory'] * 1e6:.1f} "
            f"us/trajectory ({results[name]['trajectories_per_sec']:.0f} traj/s)"
        )
    from repro._version import __version__

    return {
        "schema": "repro-bench/1",
        "suite": "engine",
        "version": __version__,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
