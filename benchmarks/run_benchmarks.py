"""Engine benchmark harness: measure the hot path, write ``BENCH_engine.json``.

Runs the trajectory-simulation workloads that dominate every experiment
of the paper's evaluation and records wall-clock statistics to a JSON
baseline at the repository root, so performance PRs have a trajectory
to compare against (see docs/performance.md).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py --out /tmp/bench.json

The numbers are medians over repeated batches (p95 included to expose
variance); ``trajectories_per_sec`` is derived from the median.  The
workloads seed their RNG streams deterministically, so two runs on the
same machine measure the same work.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_engine.json")


def _simulate_workload(strategy_factory, horizon: float = 50.0):
    """A closure simulating one batch of trajectories per call."""
    from repro.eijoint import build_ei_joint_fmt
    from repro.simulation.executor import FMTSimulator

    simulator = FMTSimulator(build_ei_joint_fmt(), strategy_factory(), horizon=horizon)

    def batch(seeds) -> None:
        for seed in seeds:
            simulator.simulate(np.random.default_rng(seed))

    return batch


def _montecarlo_workload(strategy_factory, horizon: float = 50.0):
    """Full MonteCarlo.run() including KPI summarization."""
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
        )
        mc.run(len(seeds))

    return batch


def _vectorized_workload(strategy_factory, horizon: float = 50.0, chunk=None):
    """Full MonteCarlo.run() on the lockstep vectorized kernel.

    End-to-end like :func:`_montecarlo_workload` (model build, kernel
    compile, sampling, KPI summarization all inside the timed batch),
    so the speedup vs the object workloads is what a study actually
    sees, not an isolated kernel number.  ``chunk`` tunes
    ``chunk_trajectories`` (the per-stream lockstep chunk size); the
    headline workload runs one chunk per batch, which is how a
    throughput-sensitive study would configure it.
    """
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        kwargs = {}
        if chunk is not None:
            kwargs["chunk_trajectories"] = chunk
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
            kernel="vectorized",
            **kwargs,
        )
        mc.run(len(seeds))

    return batch


def _vectorized_parallel_workload(
    strategy_factory, horizon: float = 50.0, chunk=None, processes: int = 2
):
    """Vectorized kernel fanned out over the shared-memory worker path.

    Workers run the lockstep kernel on their seed chunks and scatter
    packed KPI columns straight into a shared-memory segment (zero-copy
    fold); the driver gathers once.  End-to-end including pool startup,
    so the number is what ``run_parallel`` actually delivers.
    """
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        kwargs = {}
        if chunk is not None:
            kwargs["chunk_trajectories"] = chunk
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
            kernel="vectorized",
            **kwargs,
        )
        mc.run_parallel(len(seeds), processes=processes)

    return batch


def _compaction_workload(horizon: float = 50.0, chunk=None):
    """Epoch-compaction stress: a densely inspected maintained model.

    Monthly inspection rounds put ~600 epochs on the 50-year calendar;
    epoch skipping (the per-row next-event lower bound) is what keeps
    the kernel from paying a full advance pass per epoch, so this
    workload regresses first if compaction breaks.
    """
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.eijoint.strategies import inspection_policy
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        kwargs = {}
        if chunk is not None:
            kwargs["chunk_trajectories"] = chunk
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            inspection_policy(12.0),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
            kernel="vectorized",
            **kwargs,
        )
        mc.run(len(seeds))

    return batch


def _synthetic_trajectories(n: int, horizon: float = 50.0, seed: int = 2016):
    """Plain Trajectory objects with EI-joint-like KPI statistics.

    The aggregation benchmarks isolate estimator cost from simulation
    cost, so the raw material is drawn directly instead of simulated.
    """
    from repro.maintenance.costs import CostBreakdown
    from repro.simulation.trace import Trajectory

    rng = np.random.default_rng(seed)
    n_failures = rng.poisson(0.8, size=n)
    downtime = rng.exponential(0.05, size=n)
    costs = rng.exponential(100.0, size=(5, n))
    counts = rng.poisson(40, size=(3, n))
    out = []
    for i in range(n):
        trajectory = Trajectory(horizon=horizon, events_recorded=False)
        k = int(n_failures[i])
        if k:
            trajectory.failure_times = np.sort(
                rng.uniform(0.0, horizon, size=k)
            ).tolist()
        trajectory.downtime = float(downtime[i])
        trajectory.costs = CostBreakdown(
            inspections=float(costs[0, i]),
            preventive=float(costs[1, i]),
            corrective=float(costs[2, i]),
            failures=float(costs[3, i]),
            downtime=float(costs[4, i]),
        )
        trajectory.n_inspections = int(counts[0, i])
        trajectory.n_preventive_actions = int(counts[1, i])
        trajectory.n_corrective_replacements = int(counts[2, i])
        out.append(trajectory)
    return out


def _summarize_workloads(n: int) -> Dict[str, Callable]:
    """KPI aggregation over the same material in both representations."""
    from repro.simulation.batch import TrajectoryBatch
    from repro.simulation.metrics import reliability_curve, summarize

    objects = _synthetic_trajectories(n)
    prebuilt = TrajectoryBatch.from_trajectories(objects)
    grid = np.linspace(0.0, 50.0, 101)

    return {
        "summarize-objects": lambda seeds: summarize(objects),
        "summarize-batch": lambda seeds: summarize(prebuilt),
        "reliability-curve-batch": lambda seeds: reliability_curve(
            prebuilt, grid
        ),
    }


def _parallel_workload(strategy_factory, keep: bool, horizon: float = 50.0):
    """End-to-end run_parallel: simulate + IPC + aggregate.

    ``keep=True`` forces the historical object-shipping path;
    ``keep=False`` takes the columnar worker IPC + streaming
    aggregation path.
    """
    from repro.eijoint import build_ei_joint_fmt, default_cost_model
    from repro.simulation.montecarlo import MonteCarlo

    def batch(seeds) -> None:
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=horizon,
            cost_model=default_cost_model(),
            seed=len(seeds),
        )
        mc.run_parallel(len(seeds), keep_trajectories=keep)

    return batch


def build_workloads(quick: bool = False) -> Dict[str, Dict[str, object]]:
    """Workload name -> {batch, batch_size, repeats}."""
    from repro.eijoint import current_policy, unmaintained

    sim_size = 50 if quick else 200
    sim_repeats = 3 if quick else 9
    agg_size = 5_000 if quick else 50_000
    agg_repeats = 3 if quick else 7
    par_size = 2_000 if quick else 50_000
    par_repeats = 2 if quick else 3
    # The vectorized workloads keep full sizing even in quick mode: the
    # lockstep kernel's per-chunk overhead amortizes by batch size, so a
    # smaller quick batch would measure a different workload and trip
    # the quick-vs-full-baseline regression compare in CI.  The kernel
    # is fast enough that full sizing stays CI-friendly anyway.
    vec_size = 20_000
    vec_repeats = 3 if quick else 5

    workloads: Dict[str, Dict[str, object]] = {
        "eijoint-current-policy": {
            "batch": _simulate_workload(current_policy),
            "batch_size": sim_size,
            "repeats": sim_repeats,
        },
        "eijoint-unmaintained": {
            "batch": _simulate_workload(unmaintained),
            "batch_size": sim_size,
            "repeats": sim_repeats,
        },
        "eijoint-montecarlo": {
            "batch": _montecarlo_workload(current_policy),
            "batch_size": sim_size,
            "repeats": sim_repeats,
        },
        # Vectorized-kernel counterparts of the object workloads.  The
        # larger batch size reflects the kernel's lockstep chunking
        # (DEFAULT_CHUNK_TRAJECTORIES = 4096); CI gates a minimum
        # speedup of these over the object workloads via
        # compare_bench.py --require-speedup.
        "eijoint-unmaintained-vectorized": {
            "batch": _vectorized_workload(unmaintained),
            "batch_size": vec_size,
            "repeats": vec_repeats,
        },
        # The headline workload runs the whole batch as one lockstep
        # chunk (chunk_trajectories = batch size): epoch compaction
        # amortizes over rows, so the tuned chunk is where the kernel's
        # advertised throughput lives.  The study-level knob is
        # StudyRequest(chunk_trajectories=...) / --chunk-size.
        "eijoint-current-policy-vectorized": {
            "batch": _vectorized_workload(current_policy, chunk=vec_size),
            "batch_size": vec_size,
            "repeats": vec_repeats,
        },
        # Zero-copy shared-memory fan-out of the same workload: workers
        # scatter packed columns into one segment, the driver gathers
        # once.  Fixed full sizing (like the other vectorized
        # workloads) so quick CI measures the same fan-out.
        "eijoint-current-policy-vectorized-parallel": {
            "batch": _vectorized_parallel_workload(
                current_policy, chunk=vec_size
            ),
            "batch_size": vec_size,
            "repeats": vec_repeats,
        },
        # Maintained-model compaction stress: ~600 inspection epochs.
        "eijoint-monthly-inspect-vectorized": {
            "batch": _compaction_workload(chunk=vec_size),
            "batch_size": vec_size,
            "repeats": vec_repeats,
        },
    }
    for name, fn in _summarize_workloads(agg_size).items():
        workloads[f"{name}-{agg_size // 1000}k"] = {
            "batch": fn,
            "batch_size": agg_size,
            "repeats": agg_repeats,
        }
    for name, keep in (
        ("parallel-objects", True),
        ("parallel-batch", False),
    ):
        workloads[f"{name}-{par_size // 1000}k"] = {
            "batch": _parallel_workload(unmaintained, keep=keep),
            "batch_size": par_size,
            "repeats": par_repeats,
        }
    return workloads


def profile_phases(batch: Callable, batch_size: int) -> Dict[str, float]:
    """Per-phase wall-time totals for one instrumented batch.

    Runs one extra batch under an ambient
    :class:`~repro.observability.Instrumentation` AFTER the timed
    repeats, so the baseline numbers stay un-instrumented; the phase
    breakdown (``sim.simulate.seconds``, ``mc.summarize.seconds``,
    worker chunk timers, ...) comes from the run telemetry's timer
    totals — the same numbers a ``--profile`` CLI run reports.
    """
    from repro.observability import Instrumentation
    from repro.observability import instrumentation as obs

    instrumentation = Instrumentation()
    with obs.use(instrumentation):
        batch(range(batch_size))
    snapshot = instrumentation.registry.to_dict()
    return {
        name: stats["total_seconds"]
        for name, stats in snapshot["timers"].items()
    }


def measure(
    batch: Callable, batch_size: int, repeats: int, warmup: int = 1
) -> Dict[str, float]:
    """Time ``repeats`` batches of ``batch_size`` trajectories each."""
    for _ in range(warmup):
        batch(range(batch_size))
    per_trajectory: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        batch(range(batch_size))
        elapsed = time.perf_counter() - start
        per_trajectory.append(elapsed / batch_size)
    per_trajectory.sort()
    median = statistics.median(per_trajectory)
    p95 = per_trajectory[min(len(per_trajectory) - 1, int(0.95 * len(per_trajectory)))]
    return {
        "batch_size": batch_size,
        "repeats": repeats,
        "median_s_per_trajectory": median,
        "p95_s_per_trajectory": p95,
        "trajectories_per_sec": 1.0 / median if median > 0 else float("inf"),
    }


def run(quick: bool = False) -> Dict[str, object]:
    results = {}
    for name, spec in build_workloads(quick).items():
        results[name] = measure(
            spec["batch"], spec["batch_size"], spec["repeats"]
        )
        results[name]["phase_wall_s"] = profile_phases(
            spec["batch"], spec["batch_size"]
        )
        print(
            f"{name}: median {results[name]['median_s_per_trajectory'] * 1e6:.1f} "
            f"us/trajectory ({results[name]['trajectories_per_sec']:.0f} traj/s)"
        )
    from repro._version import __version__

    return {
        "schema": "repro-bench/1",
        "suite": "engine",
        "version": __version__,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
