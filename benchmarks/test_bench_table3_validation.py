"""T3 — the validation experiment: predicted vs observed failure rate.

The paper's headline validation claim: the FMT model, parameterized
from the incident database plus expert interviews, faithfully predicts
the system-level expected number of failures.  The benchmark re-runs
the whole calibration loop on the synthetic data substrate and requires
the predicted and observed rates to agree (overlapping CIs).
"""

from conftest import run_once

from repro.experiments import table3_validation


def test_bench_table3_validation(benchmark, bench_config):
    result = run_once(benchmark, table3_validation.run, bench_config)
    assert any("AGREE" in note for note in result.notes)
    # All parameters re-estimated within a factor of ~3.
    for true_text, fitted_text in zip(
        result.column("true mean [y]"), result.column("fitted mean [y]")
    ):
        ratio = float(fitted_text) / float(true_text)
        assert 1.0 / 3.0 < ratio < 3.0
