"""A4 — ablation: imperfect inspections (per-visit detection probability).

Expected shape: ENF and total cost grow as detection quality drops,
but gracefully — a missed sign is usually caught at the next visit, so
the paper's cost-optimality conclusion survives realistic inspection
quality.
"""

from conftest import run_once

from repro.experiments import ablation_detection


def _estimate(cell: str) -> float:
    return float(cell.split()[0])


def test_bench_ablation_detection(benchmark, bench_config):
    result = run_once(benchmark, ablation_detection.run, bench_config)
    enf = [_estimate(cell) for cell in result.column("ENF per year")]
    totals = [float(cell) for cell in result.column("cost/yr TOTAL")]
    # Monotone degradation with detection quality.
    assert enf[-1] > enf[0]
    assert totals[-1] > totals[0]
    # Graceful: halving the detection probability less than triples ENF.
    assert enf[-1] < 3.0 * enf[0]
