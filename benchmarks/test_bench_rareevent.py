"""A6 — importance splitting vs crude Monte Carlo (rare events).

Asserts the rare-event subsystem's two headline claims:

* at moderate rarity all three estimators (crude MC, fixed effort,
  RESTART) agree — overlapping confidence intervals;
* at strong rarity (documented mean-preserving granularity
  substitution, see EXPERIMENTS.md) fixed-effort splitting reaches its
  relative CI half-width with >= 10x fewer simulated trajectory
  segments than the crude-MC sample size of equal precision — i.e. at
  least an order of magnitude more variance reduction per unit CPU.

Set ``RAREEVENT_BENCH_QUICK=1`` to run a scaled-down sanity variant
(used by CI); the speedup floor is relaxed there because the quick
intervals are noisy.
"""

import os

from conftest import run_once

from repro.experiments import rareevent
from repro.experiments.common import ExperimentConfig

_QUICK = os.environ.get("RAREEVENT_BENCH_QUICK", "") not in ("", "0")


def test_bench_rareevent(benchmark, bench_config):
    config = ExperimentConfig(
        n_runs=300 if _QUICK else 1200, horizon=1.0, seed=bench_config.seed
    )
    result = run_once(benchmark, rareevent.run, config)
    assert any(
        "agreement" in note and "yes" in note for note in result.notes
    ), result.notes
    # The strong-rarity row: crude-equivalent sample size vs segments.
    speedup_cell = result.column("speedup")[-1]
    assert speedup_cell.endswith("x") and speedup_cell != "n/a"
    speedup = float(speedup_cell.rstrip("x"))
    floor = 2.0 if _QUICK else 10.0
    assert speedup >= floor, (
        f"splitting speedup {speedup:.1f}x below the {floor:g}x floor"
    )
