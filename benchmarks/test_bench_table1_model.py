"""T1 — regenerate the EI-joint failure-mode table (paper's model table)."""

from conftest import run_once

from repro.experiments import table1_model


def test_bench_table1_model(benchmark, bench_config):
    result = run_once(benchmark, table1_model.run, bench_config)
    assert len(result.rows) == 11
    groups = set(result.column("group"))
    assert groups == {"electrical", "mechanical"}
