"""Time and money unit conventions used throughout the library.

The library measures **time in years** and **money in euros** unless a
function documents otherwise.  This module centralises the conversion
constants and provides small helpers so models can be written in whatever
unit is natural for the parameter being described (e.g. "inspection every
3 months", "mean time to failure 40 years") without sprinkling magic
numbers through the code.
"""

from __future__ import annotations

#: Days per (Julian) year; used for day <-> year conversions.
DAYS_PER_YEAR = 365.25

#: Hours per (Julian) year.
HOURS_PER_YEAR = 24.0 * DAYS_PER_YEAR

#: Months per year.
MONTHS_PER_YEAR = 12.0

#: Weeks per year.
WEEKS_PER_YEAR = DAYS_PER_YEAR / 7.0


def years(value: float) -> float:
    """Identity helper to make call sites self-documenting."""
    return float(value)


def months(value: float) -> float:
    """Convert months to years."""
    return float(value) / MONTHS_PER_YEAR


def weeks(value: float) -> float:
    """Convert weeks to years."""
    return float(value) / WEEKS_PER_YEAR


def days(value: float) -> float:
    """Convert days to years."""
    return float(value) / DAYS_PER_YEAR


def hours(value: float) -> float:
    """Convert hours to years."""
    return float(value) / HOURS_PER_YEAR


def per_year(rate: float) -> float:
    """Identity helper for rates expressed per year."""
    return float(rate)


def per_month(rate: float) -> float:
    """Convert a per-month rate to a per-year rate."""
    return float(rate) * MONTHS_PER_YEAR


def format_years(value: float) -> str:
    """Render a duration in years using a human-friendly unit.

    >>> format_years(0.25)
    '3.0 months'
    >>> format_years(2.0)
    '2.00 years'
    """
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {value}")
    if value == 0:
        return "0"
    if value < 1.0 / MONTHS_PER_YEAR:
        return f"{value * DAYS_PER_YEAR:.1f} days"
    if value < 1.0:
        return f"{value * MONTHS_PER_YEAR:.1f} months"
    return f"{value:.2f} years"


def format_money(value: float, currency: str = "EUR") -> str:
    """Render a money amount with thousands separators.

    >>> format_money(12345.6)
    'EUR 12,346'
    """
    return f"{currency} {value:,.0f}"
