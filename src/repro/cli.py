"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # the model inventory
    python -m repro fig6 --runs 5000     # the cost U-curve, more precision
    python -m repro all --quick          # everything, reduced replication
    python -m repro analyze model.fmt    # static analysis of a Galileo file
    python -m repro simulate model.fmt --horizon 50 --runs 2000
    python -m repro render model.fmt --dot > model.dot
    python -m repro trace model.fmt --out trace.jsonl   # JSONL event trace
    python -m repro metrics-serve metrics.json --port 9102   # /metrics

Observability flags (all verbs): ``--log-level debug|info|warning|error``
routes the library's structured logs to stderr; ``--profile`` prints a
metrics/timing report after the run; ``--metrics-out PATH`` dumps the
same registry as JSON; ``--progress`` shows a live rate/ETA/convergence
line on stderr; ``--progress-out PATH`` appends the same events as
JSONL; ``--trace-out PATH`` records the run's span tree (driver and
worker processes) as JSONL.  ``metrics-serve`` exposes a
``--metrics-out`` dump (re-read per scrape) in Prometheus text format.
See docs/observability.md.

Caching flags: every experiment obtains its simulations through a
:class:`~repro.studies.StudyRunner`, which dedupes identical studies
within one invocation.  ``--cache-dir PATH`` additionally persists the
results, so a rerun with the same configuration simulates nothing
(bit-identical output either way); ``--no-cache`` disables the disk
cache for one invocation; ``--processes N`` sizes the shared worker
pool used for large studies.  See docs/api.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.experiments import ExperimentConfig
from repro.experiments.common import timed_run
from repro.experiments.registry import experiment_ids, get_experiment, iter_experiments
from repro.observability import Instrumentation, get_logger, kv, setup_logging, use

__all__ = ["main", "build_parser"]

logger = get_logger(__name__)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="fmt-repro",
        description="Fault-maintenance-tree analysis of the EI-joint "
        "(DSN 2016 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', 'analyze', "
        "'simulate', 'render', 'trace', or 'metrics-serve'",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="model file for the analyze/simulate/render/trace commands; "
        "metrics JSON file for metrics-serve",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="Monte Carlo replications"
    )
    parser.add_argument(
        "--horizon", type=float, default=None, help="simulation horizon, years"
    )
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced replication count (smoke-test mode)",
    )
    parser.add_argument(
        "--absorbing",
        action="store_true",
        help="simulate: treat the first system failure as absorbing "
        "(reliability study) instead of renewing the asset",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=["object", "vectorized"],
        help="simulate: sampling kernel ('object' is the event-loop "
        "reference engine; 'vectorized' is the lockstep numpy kernel, "
        "statistically equivalent but not bit-identical)",
    )
    parser.add_argument(
        "--dot",
        action="store_true",
        help="render: emit Graphviz DOT instead of an ASCII outline",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="trace: write the JSONL event trace here (default: stdout)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="verbosity of the structured logs on stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect simulation metrics/timers and print a profile "
        "report after the run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the collected metrics registry as JSON",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live progress line on stderr: completed/total, rate, ETA, "
        "and CI convergence for sequential runs",
    )
    parser.add_argument(
        "--progress-out",
        default=None,
        metavar="PATH",
        help="append progress/convergence events as JSONL",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span tree (driver + worker chunks) as JSONL",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=9102,
        metavar="N",
        help="metrics-serve: port to bind (0 = ephemeral)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist simulation results here and reuse them across "
        "invocations (results are bit-identical to a fresh run)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation (in-process "
        "deduplication of identical studies still applies)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="worker processes of the shared simulation pool "
        "(default 1 = serial)",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig()
    overrides = {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    if args.quick:
        config = config.quick()
    return config


def _cmd_list() -> int:
    print("available experiments:")
    for key in experiment_ids():
        print(f"  {key}")
    print("  all           (run every experiment)")
    print("  analyze PATH  (static analysis of a Galileo model file)")
    print("  simulate PATH (Monte Carlo simulation of a model file)")
    print("  render PATH   (ASCII or --dot rendering of a model file)")
    print("  trace PATH    (JSONL component-event trace of simulated runs)")
    print("  metrics-serve PATH  (serve a --metrics-out dump on /metrics)")
    return 0


def _cmd_analyze(path: Optional[str]) -> int:
    if path is None:
        print("analyze: missing model file path", file=sys.stderr)
        return 2
    from repro.analysis import minimal_cut_sets, unreliability
    from repro.dsl import load_file

    tree = load_file(path)
    print(tree)
    cut_sets = minimal_cut_sets(tree, treat_pand_as_and=True)
    print(f"{len(cut_sets)} minimal cut sets:")
    for cut in cut_sets:
        print("  {" + ", ".join(sorted(cut)) + "}")
    for t in (1.0, 5.0, 10.0):
        value = unreliability(
            tree,
            t,
            ignore_maintenance=True,
            ignore_dependencies=True,
            treat_pand_as_and=True,
        )
        print(f"unreliability({t:g}y, unmaintained) = {value:.6g}")
    return 0


def _strategy_for_model_run(tree, absorbing: bool):
    from repro.maintenance.strategy import MaintenanceStrategy

    return MaintenanceStrategy(
        name=tree.name,
        inspections=tree.inspections,
        repairs=tree.repairs,
        on_system_failure="none" if absorbing else "replace",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.path is None:
        print("simulate: missing model file path", file=sys.stderr)
        return 2
    from repro.dsl import load_file
    from repro.studies import StudyRequest, get_runner

    tree = load_file(args.path)
    strategy = _strategy_for_model_run(tree, args.absorbing)
    horizon = args.horizon if args.horizon is not None else 50.0
    n_runs = args.runs if args.runs is not None else 2000
    seed = args.seed if args.seed is not None else 0
    kernel = args.kernel if args.kernel is not None else "object"
    summary = get_runner().summary(
        StudyRequest(
            tree=tree, strategy=strategy, horizon=horizon, seed=seed,
            n_runs=n_runs, kernel=kernel,
        )
    )
    print(tree)
    print(f"strategy: {strategy}")
    print(
        f"horizon {horizon:g}y, {n_runs} trajectories, seed {seed}, "
        f"{kernel} kernel"
    )
    print(f"  unreliability : {summary.unreliability}")
    print(f"  failures/yr   : {summary.failures_per_year}")
    print(f"  availability  : {summary.availability}")
    print(f"  inspections/yr performed: {summary.inspections_per_year:.2f}")
    print(f"  preventive actions/yr   : {summary.preventive_actions_per_year:.3f}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    if args.path is None:
        print("render: missing model file path", file=sys.stderr)
        return 2
    from repro.core.visualize import ascii_tree, to_dot
    from repro.dsl import load_file

    tree = load_file(args.path)
    print(to_dot(tree) if args.dot else ascii_tree(tree))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.path is None:
        print("trace: missing model file path", file=sys.stderr)
        return 2
    from repro.dsl import load_file
    from repro.observability.tracing import write_trace, write_trace_file
    from repro.simulation.montecarlo import MonteCarlo

    tree = load_file(args.path)
    strategy = _strategy_for_model_run(tree, args.absorbing)
    horizon = args.horizon if args.horizon is not None else 50.0
    n_runs = args.runs if args.runs is not None else 100
    seed = args.seed if args.seed is not None else 0
    mc = MonteCarlo(
        tree, strategy, horizon=horizon, seed=seed, record_events=True
    )
    trajectories = mc.sample(n_runs)
    if args.out is None:
        lines = write_trace(trajectories, sys.stdout)
    else:
        lines = write_trace_file(trajectories, args.out)
        print(
            f"wrote {lines} JSONL records ({n_runs} trajectories) to {args.out}"
        )
    logger.info(
        kv("trace written", trajectories=n_runs, records=lines, out=args.out or "-")
    )
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    if args.path is None:
        print(
            "metrics-serve: missing metrics JSON path (write one with "
            "--metrics-out)",
            file=sys.stderr,
        )
        return 2
    import json

    from repro.observability.exposition import MetricsServer

    def snapshot():
        # Re-read per scrape so a dashboard can watch a run that is
        # still writing (or a file refreshed between runs).
        with open(args.path, encoding="utf-8") as handle:
            return json.load(handle)

    try:
        snapshot()
    except (OSError, ValueError) as exc:
        print(f"metrics-serve: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    server = MetricsServer(snapshot, port=args.port)
    print(
        f"serving {args.path} on http://{server.host}:{server.port}/metrics "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "analyze":
        return _cmd_analyze(args.path)
    if args.experiment == "simulate":
        return _cmd_simulate(args)
    if args.experiment == "render":
        return _cmd_render(args)
    if args.experiment == "trace":
        return _cmd_trace(args)
    if args.experiment == "metrics-serve":
        return _cmd_metrics_serve(args)
    config = _config_from_args(args)
    if args.experiment == "all":
        for key, runner in iter_experiments():
            print(timed_run(runner, config, experiment_id=key).to_text())
            print()
        return 0
    try:
        runner = get_experiment(args.experiment)
    except KeyError:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    print(timed_run(runner, config, experiment_id=args.experiment).to_text())
    return 0


def _check_writable(path: str, flag: str) -> Optional[str]:
    """Fail fast on an unwritable output path — before the run, not after."""
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        return f"{flag}: cannot write {path}: {exc}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.experiment == "metrics-serve":
        # Serving needs no study runner, telemetry, or writable outputs.
        return _cmd_metrics_serve(args)
    for path, flag in (
        (args.metrics_out, "--metrics-out"),
        (args.out, "--out"),
        (args.progress_out, "--progress-out"),
        (args.trace_out, "--trace-out"),
    ):
        if path is not None:
            problem = _check_writable(path, flag)
            if problem is not None:
                print(problem, file=sys.stderr)
                return 2
    if args.processes is not None and args.processes < 1:
        print("--processes: must be >= 1", file=sys.stderr)
        return 2
    instrumentation = (
        Instrumentation() if (args.profile or args.metrics_out) else None
    )
    from repro.observability import spans as _spans
    from repro.observability.progress import (
        JsonlProgressReporter,
        TerminalProgressReporter,
        tee,
    )
    from repro.observability.progress import use_progress
    from repro.observability.tracing import write_spans
    from repro.studies import StudyRunner, use_runner

    reporters = []
    if args.progress:
        reporters.append(TerminalProgressReporter())
    if args.progress_out is not None:
        reporters.append(JsonlProgressReporter(path=args.progress_out))
    reporter = tee(*reporters) if reporters else None
    collector = _spans.SpanCollector() if args.trace_out is not None else None
    cache_dir = None if args.no_cache else args.cache_dir
    study_runner = StudyRunner(
        cache_dir=cache_dir,
        processes=args.processes if args.processes is not None else 1,
        instrumentation=instrumentation,
    )
    try:
        with use(instrumentation), use_runner(study_runner), use_progress(
            reporter
        ), _spans.use(collector):
            code = _dispatch(args)
    finally:
        study_runner.close()
        if reporter is not None:
            reporter.close()
    if collector is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            lines = write_spans(collector.records, handle)
        print(
            f"trace: {lines} span records written to {args.trace_out}",
            file=sys.stderr,
        )
    if instrumentation is not None:
        if args.profile:
            print()
            print(instrumentation.registry.render_text(title="profile"))
        if args.metrics_out:
            instrumentation.registry.write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
