"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # the model inventory
    python -m repro fig6 --runs 5000     # the cost U-curve, more precision
    python -m repro all --quick          # everything, reduced replication
    python -m repro analyze model.fmt    # static analysis of a Galileo file
    python -m repro simulate model.fmt --horizon 50 --runs 2000
    python -m repro render model.fmt --dot > model.dot
    python -m repro trace model.fmt --out trace.jsonl   # JSONL event trace
    python -m repro metrics-serve metrics.json --port 9102   # /metrics
    python -m repro serve --port 8177    # the analysis HTTP service

Every command is a real argparse subcommand — ``python -m repro
simulate --help`` prints the options of *that* verb.  The historical
form with global options before the command (``python -m repro --quick
fig5``) still works but emits a :class:`DeprecationWarning`; write the
command first.

Observability flags (all verbs): ``--log-level debug|info|warning|error``
routes the library's structured logs to stderr; ``--profile`` prints a
metrics/timing report after the run; ``--metrics-out PATH`` dumps the
same registry as JSON; ``--progress`` shows a live rate/ETA/convergence
line on stderr; ``--progress-out PATH`` appends the same events as
JSONL; ``--trace-out PATH`` records the run's span tree (driver and
worker processes) as JSONL.  ``metrics-serve`` exposes a
``--metrics-out`` dump (re-read per scrape) in Prometheus text format.
See docs/observability.md.

Caching flags: every experiment obtains its simulations through a
:class:`~repro.studies.StudyRunner`, which dedupes identical studies
within one invocation.  ``--cache-dir PATH`` additionally persists the
results, so a rerun with the same configuration simulates nothing
(bit-identical output either way); ``--no-cache`` disables the disk
cache for one invocation; ``--processes N`` sizes the shared worker
pool used for large studies.  ``serve`` shares the same flags: a
service started with ``--cache-dir`` answers previously computed
studies synchronously.  See docs/api.md and docs/service.md.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.experiments import ExperimentConfig
from repro.experiments.common import timed_run
from repro.experiments.registry import experiment_ids, get_experiment, iter_experiments
from repro.observability import Instrumentation, get_logger, kv, setup_logging, use

__all__ = ["main", "build_parser"]

logger = get_logger(__name__)

#: Verbs that are not experiment ids (the registry provides those).
_VERBS = (
    "all",
    "list",
    "analyze",
    "simulate",
    "render",
    "trace",
    "metrics-serve",
    "serve",
)


def _known_commands() -> List[str]:
    return list(experiment_ids()) + list(_VERBS)


def _observability_parent() -> argparse.ArgumentParser:
    """Flags shared by every command (logging, metrics, caching)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="verbosity of the structured logs on stderr",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="collect simulation metrics/timers and print a profile "
        "report after the run",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the collected metrics registry as JSON",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="live progress line on stderr: completed/total, rate, ETA, "
        "and CI convergence for sequential runs",
    )
    group.add_argument(
        "--progress-out",
        default=None,
        metavar="PATH",
        help="append progress/convergence events as JSONL",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span tree (driver + worker chunks) as JSONL",
    )
    cache = parent.add_argument_group("caching")
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist simulation results here and reuse them across "
        "invocations (results are bit-identical to a fresh run)",
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation (in-process "
        "deduplication of identical studies still applies)",
    )
    cache.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="worker processes of the shared simulation pool "
        "(default 1 = serial)",
    )
    return parent


def _replication_parent() -> argparse.ArgumentParser:
    """Flags of every command that simulates."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("replication")
    group.add_argument(
        "--runs", type=int, default=None, help="Monte Carlo replications"
    )
    group.add_argument(
        "--horizon", type=float, default=None, help="simulation horizon, years"
    )
    group.add_argument("--seed", type=int, default=None, help="root RNG seed")
    group.add_argument(
        "--quick",
        action="store_true",
        help="reduced replication count (smoke-test mode)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the test suite).

    Real subparsers: one per experiment id plus the verbs ``all``,
    ``list``, ``analyze``, ``simulate``, ``render``, ``trace``,
    ``metrics-serve`` and ``serve``, each with per-verb ``--help``.
    """
    parser = argparse.ArgumentParser(
        prog="fmt-repro",
        description="Fault-maintenance-tree analysis of the EI-joint "
        "(DSN 2016 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    obs = _observability_parent()
    runs = _replication_parent()
    sub = parser.add_subparsers(dest="command", metavar="command")

    for key in experiment_ids():
        sub.add_parser(
            key,
            parents=[obs, runs],
            help=f"regenerate {key} from the paper",
        )
    sub.add_parser(
        "all", parents=[obs, runs], help="run every experiment in paper order"
    )
    sub.add_parser("list", parents=[obs], help="list the available commands")

    analyze = sub.add_parser(
        "analyze",
        parents=[obs],
        help="static analysis (cut sets, unreliability) of a model file",
    )
    analyze.add_argument(
        "path", nargs="?", default=None, help="Galileo model file"
    )

    simulate = sub.add_parser(
        "simulate",
        parents=[obs, runs],
        help="Monte Carlo simulation of a model file",
    )
    simulate.add_argument(
        "path", nargs="?", default=None, help="Galileo model file"
    )
    simulate.add_argument(
        "--absorbing",
        action="store_true",
        help="treat the first system failure as absorbing (reliability "
        "study) instead of renewing the asset",
    )
    simulate.add_argument(
        "--kernel",
        default=None,
        choices=["object", "vectorized"],
        help="sampling kernel ('object' is the event-loop reference "
        "engine; 'vectorized' is the lockstep numpy kernel, "
        "statistically equivalent but not bit-identical)",
    )
    simulate.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="trajectories simulated per vectorized chunk (default "
        "4096; one RNG stream per chunk, so a non-default size "
        "changes the sampled trajectories and the study cache key)",
    )

    render = sub.add_parser(
        "render",
        parents=[obs],
        help="ASCII or Graphviz rendering of a model file",
    )
    render.add_argument(
        "path", nargs="?", default=None, help="Galileo model file"
    )
    render.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of an ASCII outline",
    )

    trace = sub.add_parser(
        "trace",
        parents=[obs, runs],
        help="JSONL component-event trace of simulated runs",
    )
    trace.add_argument(
        "path", nargs="?", default=None, help="Galileo model file"
    )
    trace.add_argument(
        "--absorbing",
        action="store_true",
        help="treat the first system failure as absorbing",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSONL event trace here (default: stdout)",
    )

    metrics_serve = sub.add_parser(
        "metrics-serve",
        parents=[obs],
        help="serve a --metrics-out dump on /metrics (Prometheus format)",
    )
    metrics_serve.add_argument(
        "path",
        nargs="?",
        default=None,
        help="metrics JSON file (written with --metrics-out)",
    )
    metrics_serve.add_argument(
        "--port",
        type=int,
        default=9102,
        metavar="N",
        help="port to bind (0 = ephemeral)",
    )

    serve = sub.add_parser(
        "serve",
        parents=[obs],
        help="the analysis HTTP service: POST JSON studies, poll results "
        "(docs/service.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8177,
        metavar="N",
        help="port to bind (0 = ephemeral)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads simulating queued studies",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="queued studies accepted before submissions get 429",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig()
    overrides = {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    if args.quick:
        config = config.quick()
    return config


def _cmd_list() -> int:
    print("available experiments:")
    for key in experiment_ids():
        print(f"  {key}")
    print("  all           (run every experiment)")
    print("  analyze PATH  (static analysis of a Galileo model file)")
    print("  simulate PATH (Monte Carlo simulation of a model file)")
    print("  render PATH   (ASCII or --dot rendering of a model file)")
    print("  trace PATH    (JSONL component-event trace of simulated runs)")
    print("  metrics-serve PATH  (serve a --metrics-out dump on /metrics)")
    print("  serve         (analysis HTTP service: POST studies as JSON)")
    return 0


def _cmd_analyze(path: Optional[str]) -> int:
    if path is None:
        print("analyze: missing model file path", file=sys.stderr)
        return 2
    from repro.analysis import minimal_cut_sets, unreliability
    from repro.dsl import load_file

    tree = load_file(path)
    print(tree)
    cut_sets = minimal_cut_sets(tree, treat_pand_as_and=True)
    print(f"{len(cut_sets)} minimal cut sets:")
    for cut in cut_sets:
        print("  {" + ", ".join(sorted(cut)) + "}")
    for t in (1.0, 5.0, 10.0):
        value = unreliability(
            tree,
            t,
            ignore_maintenance=True,
            ignore_dependencies=True,
            treat_pand_as_and=True,
        )
        print(f"unreliability({t:g}y, unmaintained) = {value:.6g}")
    return 0


def _strategy_for_model_run(tree, absorbing: bool):
    from repro.maintenance.strategy import MaintenanceStrategy

    return MaintenanceStrategy(
        name=tree.name,
        inspections=tree.inspections,
        repairs=tree.repairs,
        on_system_failure="none" if absorbing else "replace",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.path is None:
        print("simulate: missing model file path", file=sys.stderr)
        return 2
    from repro.dsl import load_file
    from repro.studies import StudyRequest, get_runner

    tree = load_file(args.path)
    strategy = _strategy_for_model_run(tree, args.absorbing)
    horizon = args.horizon if args.horizon is not None else 50.0
    n_runs = args.runs if args.runs is not None else 2000
    seed = args.seed if args.seed is not None else 0
    kernel = args.kernel if args.kernel is not None else "object"
    request = {
        "tree": tree, "strategy": strategy, "horizon": horizon,
        "seed": seed, "n_runs": n_runs, "kernel": kernel,
    }
    if args.chunk_size is not None:
        request["chunk_trajectories"] = args.chunk_size
    summary = get_runner().summary(StudyRequest(**request))
    print(tree)
    print(f"strategy: {strategy}")
    print(
        f"horizon {horizon:g}y, {n_runs} trajectories, seed {seed}, "
        f"{kernel} kernel"
    )
    print(f"  unreliability : {summary.unreliability}")
    print(f"  failures/yr   : {summary.failures_per_year}")
    print(f"  availability  : {summary.availability}")
    print(f"  inspections/yr performed: {summary.inspections_per_year:.2f}")
    print(f"  preventive actions/yr   : {summary.preventive_actions_per_year:.3f}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    if args.path is None:
        print("render: missing model file path", file=sys.stderr)
        return 2
    from repro.core.visualize import ascii_tree, to_dot
    from repro.dsl import load_file

    tree = load_file(args.path)
    print(to_dot(tree) if args.dot else ascii_tree(tree))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.path is None:
        print("trace: missing model file path", file=sys.stderr)
        return 2
    from repro.dsl import load_file
    from repro.observability.tracing import write_trace, write_trace_file
    from repro.simulation.montecarlo import MonteCarlo

    tree = load_file(args.path)
    strategy = _strategy_for_model_run(tree, args.absorbing)
    horizon = args.horizon if args.horizon is not None else 50.0
    n_runs = args.runs if args.runs is not None else 100
    seed = args.seed if args.seed is not None else 0
    mc = MonteCarlo(
        tree, strategy, horizon=horizon, seed=seed, record_events=True
    )
    trajectories = mc.sample(n_runs)
    if args.out is None:
        lines = write_trace(trajectories, sys.stdout)
    else:
        lines = write_trace_file(trajectories, args.out)
        print(
            f"wrote {lines} JSONL records ({n_runs} trajectories) to {args.out}"
        )
    logger.info(
        kv("trace written", trajectories=n_runs, records=lines, out=args.out or "-")
    )
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    if args.path is None:
        print(
            "metrics-serve: missing metrics JSON path (write one with "
            "--metrics-out)",
            file=sys.stderr,
        )
        return 2
    import json

    from repro.observability.exposition import MetricsServer

    def snapshot():
        # Re-read per scrape so a dashboard can watch a run that is
        # still writing (or a file refreshed between runs).
        with open(args.path, encoding="utf-8") as handle:
            return json.load(handle)

    try:
        snapshot()
    except (OSError, ValueError) as exc:
        print(f"metrics-serve: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    server = MetricsServer(snapshot, port=args.port)
    print(
        f"serving {args.path} on http://{server.host}:{server.port}/metrics "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace, study_runner, instrumentation) -> int:
    from repro.service.app import serve_app

    if args.workers < 1:
        print("serve: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_pending < 1:
        print("serve: --max-pending must be >= 1", file=sys.stderr)
        return 2
    server = serve_app(
        study_runner,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        instrumentation=instrumentation,
    )
    print(
        f"serving studies on {server.url} "
        "(POST /v1/studies; Ctrl-C to stop)",
        file=sys.stderr,
    )
    logger.info(
        kv(
            "service started",
            url=server.url,
            workers=args.workers,
            max_pending=args.max_pending,
        )
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "analyze":
        return _cmd_analyze(args.path)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "render":
        return _cmd_render(args)
    if args.command == "trace":
        return _cmd_trace(args)
    config = _config_from_args(args)
    if args.command == "all":
        for key, runner in iter_experiments():
            print(timed_run(runner, config, experiment_id=key).to_text())
            print()
        return 0
    runner = get_experiment(args.command)
    print(timed_run(runner, config, experiment_id=args.command).to_text())
    return 0


def _check_writable(path: str, flag: str) -> Optional[str]:
    """Fail fast on an unwritable output path — before the run, not after."""
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        return f"{flag}: cannot write {path}: {exc}"
    return None


def _normalize_argv(argv: Sequence[str]) -> List[str]:
    """Back-compat shim for the pre-subparser CLI.

    The historical hand-rolled parser accepted global options *before*
    the command (``repro --quick fig5``); subparsers require the
    command first.  When the first token is an option but a known
    command appears later, the command is rotated to the front and a
    :class:`DeprecationWarning` is emitted.  Command-first invocations
    (every documented form) pass through untouched.
    """
    argv = list(argv)
    if not argv or not argv[0].startswith("-"):
        return argv
    if argv[0] in ("-h", "--help", "--version"):
        return argv
    known = set(_known_commands())
    for index, token in enumerate(argv):
        if token in known:
            warnings.warn(
                "passing options before the command is deprecated; write "
                f"'python -m repro {token} [options]' instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return [token] + argv[:index] + argv[index + 1:]
    return argv


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv = _normalize_argv(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    if not argv:
        parser.print_usage(sys.stderr)
        print("error: missing command; try 'list'", file=sys.stderr)
        return 2
    if not argv[0].startswith("-") and argv[0] not in _known_commands():
        print(
            f"unknown experiment {argv[0]!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    setup_logging(args.log_level)
    if args.command == "metrics-serve":
        # Serving needs no study runner, telemetry, or writable outputs.
        return _cmd_metrics_serve(args)
    for path, flag in (
        (args.metrics_out, "--metrics-out"),
        (getattr(args, "out", None), "--out"),
        (args.progress_out, "--progress-out"),
        (args.trace_out, "--trace-out"),
    ):
        if path is not None:
            problem = _check_writable(path, flag)
            if problem is not None:
                print(problem, file=sys.stderr)
                return 2
    if args.processes is not None and args.processes < 1:
        print("--processes: must be >= 1", file=sys.stderr)
        return 2
    instrumentation = (
        Instrumentation() if (args.profile or args.metrics_out) else None
    )
    from repro.observability import spans as _spans
    from repro.observability.progress import (
        JsonlProgressReporter,
        TerminalProgressReporter,
        tee,
    )
    from repro.observability.progress import use_progress
    from repro.observability.tracing import write_spans
    from repro.studies import StudyRunner, use_runner

    cache_dir = None if args.no_cache else args.cache_dir
    if args.command == "serve":
        # The service owns its lifecycle: it always carries an
        # instrumentation (backing /metrics) and closes the runner when
        # the server stops.
        instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        study_runner = StudyRunner(
            cache_dir=cache_dir,
            processes=args.processes if args.processes is not None else 1,
            instrumentation=instrumentation,
        )
        return _cmd_serve(args, study_runner, instrumentation)
    reporters = []
    if args.progress:
        reporters.append(TerminalProgressReporter())
    if args.progress_out is not None:
        reporters.append(JsonlProgressReporter(path=args.progress_out))
    reporter = tee(*reporters) if reporters else None
    collector = _spans.SpanCollector() if args.trace_out is not None else None
    study_runner = StudyRunner(
        cache_dir=cache_dir,
        processes=args.processes if args.processes is not None else 1,
        instrumentation=instrumentation,
    )
    try:
        with use(instrumentation), use_runner(study_runner), use_progress(
            reporter
        ), _spans.use(collector):
            code = _dispatch(args)
    finally:
        study_runner.close()
        if reporter is not None:
            reporter.close()
    if collector is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            lines = write_spans(collector.records, handle)
        print(
            f"trace: {lines} span records written to {args.trace_out}",
            file=sys.stderr,
        )
    if instrumentation is not None:
        if args.profile:
            print()
            print(instrumentation.registry.render_text(title="profile"))
        if args.metrics_out:
            instrumentation.registry.write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
