"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # the model inventory
    python -m repro fig6 --runs 5000     # the cost U-curve, more precision
    python -m repro all --quick          # everything, reduced replication
    python -m repro analyze model.fmt    # static analysis of a Galileo file
    python -m repro simulate model.fmt --horizon 50 --runs 2000
    python -m repro render model.fmt --dot > model.dot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.experiments import EXPERIMENTS, ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="fmt-repro",
        description="Fault-maintenance-tree analysis of the EI-joint "
        "(DSN 2016 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', 'analyze', "
        "'simulate', or 'render'",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="model file for the analyze/simulate/render commands",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="Monte Carlo replications"
    )
    parser.add_argument(
        "--horizon", type=float, default=None, help="simulation horizon, years"
    )
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced replication count (smoke-test mode)",
    )
    parser.add_argument(
        "--absorbing",
        action="store_true",
        help="simulate: treat the first system failure as absorbing "
        "(reliability study) instead of renewing the asset",
    )
    parser.add_argument(
        "--dot",
        action="store_true",
        help="render: emit Graphviz DOT instead of an ASCII outline",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig()
    overrides = {}
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    if args.quick:
        config = config.quick()
    return config


def _cmd_list() -> int:
    print("available experiments:")
    for key in EXPERIMENTS:
        print(f"  {key}")
    print("  all           (run every experiment)")
    print("  analyze PATH  (static analysis of a Galileo model file)")
    print("  simulate PATH (Monte Carlo simulation of a model file)")
    print("  render PATH   (ASCII or --dot rendering of a model file)")
    return 0


def _cmd_analyze(path: Optional[str]) -> int:
    if path is None:
        print("analyze: missing model file path", file=sys.stderr)
        return 2
    from repro.analysis import minimal_cut_sets, unreliability
    from repro.dsl import load_file

    tree = load_file(path)
    print(tree)
    cut_sets = minimal_cut_sets(tree, treat_pand_as_and=True)
    print(f"{len(cut_sets)} minimal cut sets:")
    for cut in cut_sets:
        print("  {" + ", ".join(sorted(cut)) + "}")
    for t in (1.0, 5.0, 10.0):
        value = unreliability(
            tree,
            t,
            ignore_maintenance=True,
            ignore_dependencies=True,
            treat_pand_as_and=True,
        )
        print(f"unreliability({t:g}y, unmaintained) = {value:.6g}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.path is None:
        print("simulate: missing model file path", file=sys.stderr)
        return 2
    from repro.dsl import load_file
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo

    tree = load_file(args.path)
    strategy = MaintenanceStrategy(
        name=tree.name,
        inspections=tree.inspections,
        repairs=tree.repairs,
        on_system_failure="none" if args.absorbing else "replace",
    )
    horizon = args.horizon if args.horizon is not None else 50.0
    n_runs = args.runs if args.runs is not None else 2000
    seed = args.seed if args.seed is not None else 0
    result = MonteCarlo(tree, strategy, horizon=horizon, seed=seed).run(n_runs)
    summary = result.summary
    print(tree)
    print(f"strategy: {strategy}")
    print(f"horizon {horizon:g}y, {n_runs} trajectories, seed {seed}")
    print(f"  unreliability : {summary.unreliability}")
    print(f"  failures/yr   : {summary.failures_per_year}")
    print(f"  availability  : {summary.availability}")
    print(f"  inspections/yr performed: {summary.inspections_per_year:.2f}")
    print(f"  preventive actions/yr   : {summary.preventive_actions_per_year:.3f}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    if args.path is None:
        print("render: missing model file path", file=sys.stderr)
        return 2
    from repro.core.visualize import ascii_tree, to_dot
    from repro.dsl import load_file

    tree = load_file(args.path)
    print(to_dot(tree) if args.dot else ascii_tree(tree))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "analyze":
        return _cmd_analyze(args.path)
    if args.experiment == "simulate":
        return _cmd_simulate(args)
    if args.experiment == "render":
        return _cmd_render(args)
    config = _config_from_args(args)
    if args.experiment == "all":
        for key, runner in EXPERIMENTS.items():
            print(runner(config).to_text())
            print()
        return 0
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    print(runner(config).to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
