"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the failing subsystem when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """The fault maintenance tree is structurally invalid.

    Raised for problems such as cycles in the tree, duplicate element
    names, gates with too few children, or maintenance modules that
    reference unknown basic events.
    """


class ValidationError(ModelError):
    """A model element has invalid parameters (e.g. a negative rate)."""


class ParseError(ReproError):
    """A textual model description could not be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending statement, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class AnalysisError(ReproError):
    """An analytic computation failed (e.g. singular linear system)."""


class UnsupportedModelError(AnalysisError):
    """The model uses features the requested analysis cannot handle.

    For example, asking for minimal cut sets of a tree containing a
    priority-AND gate, or compiling a tree with deterministic inspection
    intervals to a CTMC without enabling the exponential approximation.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class EstimationError(ReproError):
    """Parameter estimation from data failed (e.g. no uncensored samples)."""
