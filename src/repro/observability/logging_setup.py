"""Structured logging setup for the :mod:`repro` package.

Library modules obtain loggers through :func:`get_logger` (always under
the ``repro.`` namespace) and never configure handlers themselves — a
library must stay silent unless its host application opts in.  The CLI
(and ``python -m repro`` via the ``REPRO_LOG_LEVEL`` environment
variable) opts in by calling :func:`setup_logging`, which installs one
stderr handler on the ``repro`` root logger.

Log lines follow a lightweight structured convention: a free-form
event phrase followed by ``key=value`` pairs built with :func:`kv`, so
they stay grep-able and machine-parseable without a JSON logging
dependency::

    2026-08-05 12:00:00 INFO repro.simulation.parallel fan-out chosen processes=4 runs=2000
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = ["get_logger", "setup_logging", "kv", "LOG_FORMAT", "DATE_FORMAT"]

LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
DATE_FORMAT = "%Y-%m-%d %H:%M:%S"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_configured = False


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("simulation.engine")`` and
    ``get_logger("repro.simulation.engine")`` return the same logger.
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def parse_level(level: Union[str, int, None]) -> Optional[int]:
    """Map a CLI/env level spelling to a ``logging`` level, None passes through."""
    if level is None:
        return None
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        ) from None


def setup_logging(
    level: Union[str, int, None] = None, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install the ``repro`` stderr handler (idempotent) and set the level.

    ``level`` may be a name (``"debug"`` … ``"critical"``), a
    ``logging`` constant, or None to leave the level untouched (the
    first call defaults to WARNING).  Returns the ``repro`` root
    logger.
    """
    global _configured
    logger = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
        logger.setLevel(logging.WARNING)
        _configured = True
    parsed = parse_level(level)
    if parsed is not None:
        logger.setLevel(parsed)
    return logger


def kv(event: str, **fields) -> str:
    """Render ``event key=value ...`` for structured log lines.

    Floats are compacted with ``%g``; everything else is ``str()``-ed.
    """
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)
