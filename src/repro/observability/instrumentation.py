"""Simulation instrumentation: the hook object hot paths talk to.

An :class:`Instrumentation` bundles a
:class:`~repro.observability.metrics.MetricsRegistry` behind the two
operations the simulator needs — count an occurrence, time a block.
It *observes* and never perturbs: no RNG draws, no event-order
changes, so instrumented and uninstrumented runs are bit-identical
(the test suite asserts this on the EI-joint model).

Two ways to attach one:

* explicitly — pass ``instrumentation=`` to
  :class:`~repro.simulation.montecarlo.MonteCarlo` or
  :class:`~repro.simulation.executor.SimulationConfig`;
* ambiently — wrap any code in ``with use(instr): ...`` and every
  simulator created *or run* inside the block that has no explicit
  instrumentation picks it up via :func:`current`.  The CLI uses the
  ambient form so the experiment harness needs no per-experiment
  plumbing.

Metric names emitted by the stack are listed in
``docs/observability.md`` and as the ``EVENTS_*``/``SIM_*`` constants
below.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.observability.metrics import Gauge, MetricsRegistry, Timer

__all__ = ["Instrumentation", "current", "use"]

# Canonical metric names — keep in sync with docs/observability.md.
EVENTS_SCHEDULED = "sim.events.scheduled"
EVENTS_CANCELLED = "sim.events.cancelled"
EVENTS_EXECUTED = "sim.events.executed"
SIM_TRAJECTORIES = "sim.trajectories"
SIM_PHASE_JUMPS = "sim.phase_jumps"
SIM_COMPONENT_FAILURES = "sim.component_failures"
SIM_INSPECTIONS = "sim.inspections"
SIM_DETECTIONS = "sim.detections"
SIM_PREVENTIVE_ACTIONS = "sim.preventive_actions"
SIM_CORRECTIVE_REPLACEMENTS = "sim.corrective_replacements"
SIM_REPAIR_ROUNDS = "sim.repair_rounds"
SIM_RDEP_ACCELERATIONS = "sim.rdep_accelerations"
SIM_SYSTEM_FAILURES = "sim.system_failures"
SIM_SYSTEM_RESTORATIONS = "sim.system_restorations"
TIMER_SIMULATE = "sim.simulate.seconds"
TIMER_SUMMARIZE = "mc.summarize.seconds"
# Worker-pool round-trip (repro.simulation.parallel): the driver folds
# each returning chunk's worker-side registry into the parent one and
# sets per-worker utilization gauges under SIM_WORKER_PREFIX
# ("sim.worker.<n>.chunks" / ".trajectories" / ".busy_seconds").
SIM_WORKERS = "sim.workers"
SIM_WORKER_CHUNKS = "sim.worker_chunks"
SIM_WORKER_PREFIX = "sim.worker"
# Rare-event splitting (repro.rareevent) counters.
RARE_SEGMENTS = "rare.segments"
RARE_CLONES = "rare.clones"
RARE_LEVEL_UP = "rare.level_up"
RARE_LEVEL_DOWN = "rare.level_down"
RARE_PRUNES = "rare.prunes"
# Study runner (repro.studies) counters: cache behaviour of the
# cross-experiment memoization layer.
STUDY_REQUESTS = "study.requests"
STUDY_MEMO_HITS = "study.memo_hits"
STUDY_DISK_HITS = "study.disk_hits"
STUDY_MISSES = "study.misses"
STUDY_FRESH_TRAJECTORIES = "study.fresh_trajectories"
STUDY_DISK_WRITES = "study.disk_writes"
STUDY_DISK_CORRUPT = "study.disk_corrupt"
STUDY_MEMO_EVICTIONS = "study.memo_evictions"


class Instrumentation:
    """Counts and timings collected while simulating.

    Thin convenience facade over a registry; picklable, so it travels
    with a simulator into worker processes.  Parallel runs collect a
    fresh worker-side registry per chunk and fold it back into the
    parent registry with the chunk result (see
    :mod:`repro.simulation.parallel`), so parent-side metrics cover
    worker-side work too.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration on timer ``name``."""
        self.registry.timer(name).observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name``."""
        self.registry.gauge(name).set(value)

    def timer(self, name: str) -> Timer:
        """The underlying timer ``name`` (use ``.time()`` to wrap a block)."""
        return self.registry.timer(name)

    def gauge(self, name: str) -> Gauge:
        """The underlying gauge ``name``."""
        return self.registry.gauge(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instrumentation({self.registry!r})"


_AMBIENT: ContextVar[Optional[Instrumentation]] = ContextVar(
    "repro_instrumentation", default=None
)


def current() -> Optional[Instrumentation]:
    """The ambient instrumentation, or None when none is active."""
    return _AMBIENT.get()


@contextmanager
def use(instrumentation: Optional[Instrumentation]) -> Iterator[Optional[Instrumentation]]:
    """Make ``instrumentation`` ambient inside the block.

    ``use(None)`` is a no-op passthrough, so call sites can write
    ``with use(maybe_instr):`` without branching.
    """
    if instrumentation is None:
        yield None
        return
    token = _AMBIENT.set(instrumentation)
    try:
        yield instrumentation
    finally:
        _AMBIENT.reset(token)
