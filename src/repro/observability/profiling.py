"""Profiling hooks: cProfile wrappers for deep-dive performance work.

The metrics timers answer "where did wall-clock go between phases";
these helpers answer "which functions burned it".  They are opt-in
only — cProfile roughly doubles simulation time — and have no effect
on results (profiling observes the interpreter, not the model).

Typical workflow (see docs/observability.md)::

    from repro.observability.profiling import profiled

    with profiled(limit=15):
        MonteCarlo(tree, strategy, horizon=50.0, seed=0).run(2000)
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import IO, Iterator, Optional

__all__ = ["profiled", "profile_call", "stats_text"]


def stats_text(
    profiler: cProfile.Profile, limit: int = 25, sort: str = "cumulative"
) -> str:
    """Render a profiler's stats table to a string."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    return buffer.getvalue()


@contextmanager
def profiled(
    limit: int = 25,
    sort: str = "cumulative",
    stream: Optional[IO[str]] = None,
    dump_path: Optional[str] = None,
) -> Iterator[cProfile.Profile]:
    """cProfile the enclosed block and print the top ``limit`` entries.

    ``dump_path`` additionally writes the raw profile for ``snakeviz``
    or ``pstats`` post-processing.  The profiler object is yielded so
    callers can inspect it directly.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if dump_path is not None:
            profiler.dump_stats(dump_path)
        out = stream if stream is not None else sys.stderr
        out.write(stats_text(profiler, limit=limit, sort=sort))


def profile_call(func, *args, limit: int = 25, sort: str = "cumulative", **kwargs):
    """Profile one call; returns ``(result, stats_text)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    return result, stats_text(profiler, limit=limit, sort=sort)
