"""JSONL trajectory-trace export.

Serialises simulated :class:`~repro.simulation.trace.Trajectory`
records (simulated with ``record_events=True``) into a line-delimited
JSON stream suitable for ad-hoc analysis with ``jq``/pandas or for
diffing two simulator versions event by event.  The schema is
documented in ``docs/observability.md`` and versioned via
``TRACE_SCHEMA_VERSION``; every line carries a ``record`` discriminator:

* ``header`` — once per stream: schema version, trajectory count;
* ``trajectory`` — per trajectory: index, horizon, KPI scalars;
* ``event`` — per component-level event: time, component, kind,
  phase, corrective flag, owning trajectory index;
* ``span`` — one per completed :class:`~repro.observability.spans.
  Span` when run-telemetry tracing is enabled (``--trace-out``):
  trace/span/parent ids, wall-clock start/end, monotonic duration,
  attributes.  Span lines share the sink so one file holds the whole
  story of a run; :func:`write_spans` appends them.

The CLI verb ``python -m repro trace model.fmt --out trace.jsonl``
drives :func:`write_trace` end to end; experiment verbs write span
records via ``--trace-out``.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterator, Sequence

from repro.simulation.trace import Trajectory

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace",
    "write_trace_file",
    "write_spans",
]

TRACE_SCHEMA_VERSION = 1


def trace_records(trajectories: Sequence[Trajectory]) -> Iterator[Dict]:
    """Yield the JSONL records (as dicts) for a set of trajectories."""
    yield {
        "record": "header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "n_trajectories": len(trajectories),
    }
    for index, trajectory in enumerate(trajectories):
        yield {
            "record": "trajectory",
            "index": index,
            "horizon": trajectory.horizon,
            "n_failures": trajectory.n_failures,
            "failure_times": list(trajectory.failure_times),
            "downtime": trajectory.downtime,
            "n_inspections": trajectory.n_inspections,
            "n_preventive_actions": trajectory.n_preventive_actions,
            "n_corrective_replacements": trajectory.n_corrective_replacements,
            "total_cost": trajectory.costs.total,
        }
        for event in trajectory.events:
            yield {
                "record": "event",
                "trajectory": index,
                "time": event.time,
                "component": event.component,
                "kind": event.kind,
                "corrective": event.corrective,
                "phase": event.phase,
            }


def write_trace(trajectories: Sequence[Trajectory], stream: IO[str]) -> int:
    """Write the JSONL trace to an open text stream; returns line count."""
    count = 0
    for record in trace_records(trajectories):
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def write_trace_file(trajectories: Sequence[Trajectory], path) -> int:
    """Write the JSONL trace to ``path``; returns line count."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_trace(trajectories, handle)


def write_spans(records: Sequence[Dict], stream: IO[str]) -> int:
    """Write completed span records as JSONL; returns the line count.

    ``records`` are :meth:`~repro.observability.spans.Span.to_dict`
    dicts (what a :class:`~repro.observability.spans.SpanCollector`
    holds); they carry their own ``"record": "span"`` discriminator and
    schema version, so they can share a stream with :func:`write_trace`
    output or stand alone.
    """
    count = 0
    for record in records:
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
        count += 1
    return count
