"""Prometheus text exposition and the ``/metrics`` scrape endpoint.

Renders a :class:`~repro.observability.metrics.MetricsRegistry`
snapshot (the :meth:`~repro.observability.metrics.MetricsRegistry.
to_dict` shape) to the Prometheus text exposition format, version
0.0.4 — ``# HELP`` / ``# TYPE`` comment lines plus one sample per
line — and serves it over a zero-dependency stdlib
:mod:`http.server`:

* counters → ``repro_<name>_total`` (type ``counter``);
* gauges → ``repro_<name>`` (type ``gauge``, the ``last`` value) plus
  ``_min`` / ``_max`` companions when the gauge was ever set;
* timers → ``repro_<name>`` (type ``summary``): ``{quantile="0.5"}``,
  ``{quantile="0.95"}``, ``_sum``, ``_count``, and a ``_max`` gauge.

Name mangling is stable: dots and any other non-metric characters
become underscores (``sim.worker.0.chunks`` →
``repro_sim_worker_0_chunks``), so dashboards survive refactors of the
dotted names.  ``python -m repro metrics-serve`` mounts
:class:`MetricsServer` on a port; ROADMAP item 1's analysis service
mounts the same handler on its own app.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "CONTENT_TYPE",
    "mangle_metric_name",
    "render_prometheus",
    "MetricsServer",
]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")

#: HELP strings for the canonical metric families (keep in sync with
#: docs/observability.md; unknown names get a generic line).
_HELP: Dict[str, str] = {
    "sim.events.scheduled": "events pushed onto the simulation calendar",
    "sim.events.cancelled": "events cancelled before execution",
    "sim.events.executed": "event callbacks run",
    "sim.trajectories": "completed simulate() calls",
    "sim.system_failures": "top-event occurrences",
    "sim.simulate.seconds": "wall time per simulated trajectory",
    "mc.summarize.seconds": "KPI aggregation time per run",
    "sim.workers": "distinct worker processes that returned chunks",
    "study.requests": "artifact requests seen by the study runner",
    "study.fresh_trajectories": "trajectories simulated (not cache-served)",
}


def mangle_metric_name(name: str, namespace: str = "repro") -> str:
    """Map a dotted registry name to a valid Prometheus metric name."""
    flat = _INVALID_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_START.match(flat):
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _help_and_type(
    lines: List[str], dotted: str, exposed: str, kind: str
) -> None:
    help_text = _HELP.get(dotted, f"{kind} {dotted}")
    lines.append(f"# HELP {exposed} {help_text}")
    lines.append(f"# TYPE {exposed} {kind}")


def render_prometheus(
    snapshot: Dict[str, Dict], namespace: str = "repro"
) -> str:
    """Render a registry snapshot to Prometheus text exposition.

    ``snapshot`` is the :meth:`MetricsRegistry.to_dict` shape (also
    what ``--metrics-out`` writes), so a dump from a finished run can
    be served without the live registry.  Gauges are accepted in both
    the current ``{"last": ..., "min": ..., "max": ...}`` shape and
    the pre-PR-6 bare-float shape.
    """
    lines: List[str] = []
    for dotted, value in sorted(snapshot.get("counters", {}).items()):
        exposed = mangle_metric_name(dotted, namespace) + "_total"
        _help_and_type(lines, dotted, exposed, "counter")
        lines.append(f"{exposed} {_format_value(value)}")
    for dotted, value in sorted(snapshot.get("gauges", {}).items()):
        exposed = mangle_metric_name(dotted, namespace)
        _help_and_type(lines, dotted, exposed, "gauge")
        if isinstance(value, dict):
            lines.append(f"{exposed} {_format_value(value['last'])}")
            if "min" in value:
                lines.append(f"{exposed}_min {_format_value(value['min'])}")
            if "max" in value:
                lines.append(f"{exposed}_max {_format_value(value['max'])}")
        else:
            lines.append(f"{exposed} {_format_value(value)}")
    for dotted, summary in sorted(snapshot.get("timers", {}).items()):
        exposed = mangle_metric_name(dotted, namespace)
        _help_and_type(lines, dotted, exposed, "summary")
        lines.append(
            f'{exposed}{{quantile="0.5"}} '
            f"{_format_value(summary['p50_seconds'])}"
        )
        lines.append(
            f'{exposed}{{quantile="0.95"}} '
            f"{_format_value(summary['p95_seconds'])}"
        )
        lines.append(f"{exposed}_sum {_format_value(summary['total_seconds'])}")
        lines.append(f"{exposed}_count {_format_value(summary['count'])}")
        lines.append(f"{exposed}_max {_format_value(summary['max_seconds'])}")
    return "\n".join(lines) + "\n"


SnapshotProvider = Callable[[], Dict[str, Dict]]


class MetricsServer:
    """Stdlib HTTP server exposing ``/metrics`` and ``/healthz``.

    ``source`` is either a live registry-like object (anything with a
    ``to_dict()``) or a zero-argument callable returning a snapshot
    dict — the callable form lets the CLI re-read a ``--metrics-out``
    JSON file on every scrape, so a dashboard can watch a run that is
    still writing.

    ``port=0`` binds an ephemeral port (use :attr:`port` after
    construction); :meth:`start` serves from a daemon thread,
    :meth:`serve_forever` blocks (the CLI verb).
    """

    def __init__(
        self,
        source: Union[SnapshotProvider, object],
        host: str = "127.0.0.1",
        port: int = 9102,
        namespace: str = "repro",
    ):
        if callable(source):
            provider: SnapshotProvider = source  # type: ignore[assignment]
        else:
            provider = source.to_dict  # type: ignore[union-attr]
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = render_prometheus(
                            provider(), namespace=namespace
                        ).encode("utf-8")
                    except Exception as exc:  # pragma: no cover - defensive
                        self._reply(500, "text/plain; charset=utf-8",
                                    f"scrape failed: {exc}\n".encode("utf-8"))
                        return
                    self._reply(200, CONTENT_TYPE, body)
                elif path == "/healthz":
                    body = json.dumps({"status": "ok"}).encode("utf-8") + b"\n"
                    self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"try /metrics or /healthz\n")

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                server.requests_served += 1

        self.requests_served = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Serve from a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsServer(http://{self.host}:{self.port})"
