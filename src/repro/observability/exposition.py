"""Prometheus text exposition and the ``/metrics`` scrape endpoint.

Renders a :class:`~repro.observability.metrics.MetricsRegistry`
snapshot (the :meth:`~repro.observability.metrics.MetricsRegistry.
to_dict` shape) to the Prometheus text exposition format, version
0.0.4 — ``# HELP`` / ``# TYPE`` comment lines plus one sample per
line — and serves it over a zero-dependency stdlib
:mod:`http.server`:

* counters → ``repro_<name>_total`` (type ``counter``);
* gauges → ``repro_<name>`` (type ``gauge``, the ``last`` value) plus
  ``_min`` / ``_max`` companions when the gauge was ever set;
* timers → ``repro_<name>`` (type ``summary``): ``{quantile="0.5"}``,
  ``{quantile="0.95"}``, ``_sum``, ``_count``, and a ``_max`` gauge.

Name mangling is stable: dots and any other non-metric characters
become underscores (``sim.worker.0.chunks`` →
``repro_sim_worker_0_chunks``), so dashboards survive refactors of the
dotted names.  ``python -m repro metrics-serve`` mounts
:class:`MetricsServer` on a port; the analysis service
(``python -m repro serve``) renders the same exposition from its own
``/metrics`` route — both run on the one shared server implementation
in :mod:`repro.service.http`.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, List, Union

__all__ = [
    "CONTENT_TYPE",
    "mangle_metric_name",
    "render_prometheus",
    "MetricsApp",
    "MetricsServer",
]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")

#: HELP strings for the canonical metric families (keep in sync with
#: docs/observability.md; unknown names get a generic line).
_HELP: Dict[str, str] = {
    "sim.events.scheduled": "events pushed onto the simulation calendar",
    "sim.events.cancelled": "events cancelled before execution",
    "sim.events.executed": "event callbacks run",
    "sim.trajectories": "completed simulate() calls",
    "sim.system_failures": "top-event occurrences",
    "sim.simulate.seconds": "wall time per simulated trajectory",
    "mc.summarize.seconds": "KPI aggregation time per run",
    "sim.workers": "distinct worker processes that returned chunks",
    "study.requests": "artifact requests seen by the study runner",
    "study.fresh_trajectories": "trajectories simulated (not cache-served)",
}


def mangle_metric_name(name: str, namespace: str = "repro") -> str:
    """Map a dotted registry name to a valid Prometheus metric name."""
    flat = _INVALID_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_START.match(flat):
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _help_and_type(
    lines: List[str], dotted: str, exposed: str, kind: str
) -> None:
    help_text = _HELP.get(dotted, f"{kind} {dotted}")
    lines.append(f"# HELP {exposed} {help_text}")
    lines.append(f"# TYPE {exposed} {kind}")


def render_prometheus(
    snapshot: Dict[str, Dict], namespace: str = "repro"
) -> str:
    """Render a registry snapshot to Prometheus text exposition.

    ``snapshot`` is the :meth:`MetricsRegistry.to_dict` shape (also
    what ``--metrics-out`` writes), so a dump from a finished run can
    be served without the live registry.  Gauges are accepted in both
    the current ``{"last": ..., "min": ..., "max": ...}`` shape and
    the pre-PR-6 bare-float shape.
    """
    lines: List[str] = []
    for dotted, value in sorted(snapshot.get("counters", {}).items()):
        exposed = mangle_metric_name(dotted, namespace) + "_total"
        _help_and_type(lines, dotted, exposed, "counter")
        lines.append(f"{exposed} {_format_value(value)}")
    for dotted, value in sorted(snapshot.get("gauges", {}).items()):
        exposed = mangle_metric_name(dotted, namespace)
        _help_and_type(lines, dotted, exposed, "gauge")
        if isinstance(value, dict):
            lines.append(f"{exposed} {_format_value(value['last'])}")
            if "min" in value:
                lines.append(f"{exposed}_min {_format_value(value['min'])}")
            if "max" in value:
                lines.append(f"{exposed}_max {_format_value(value['max'])}")
        else:
            lines.append(f"{exposed} {_format_value(value)}")
    for dotted, summary in sorted(snapshot.get("timers", {}).items()):
        exposed = mangle_metric_name(dotted, namespace)
        _help_and_type(lines, dotted, exposed, "summary")
        lines.append(
            f'{exposed}{{quantile="0.5"}} '
            f"{_format_value(summary['p50_seconds'])}"
        )
        lines.append(
            f'{exposed}{{quantile="0.95"}} '
            f"{_format_value(summary['p95_seconds'])}"
        )
        lines.append(f"{exposed}_sum {_format_value(summary['total_seconds'])}")
        lines.append(f"{exposed}_count {_format_value(summary['count'])}")
        lines.append(f"{exposed}_max {_format_value(summary['max_seconds'])}")
    return "\n".join(lines) + "\n"


SnapshotProvider = Callable[[], Dict[str, Dict]]


class MetricsApp:
    """The scrape application: ``/metrics`` + ``/healthz``.

    Transport-free (mountable on :class:`repro.service.http.AppServer`
    next to the analysis service, or driven directly in tests).
    ``provider`` is a zero-argument callable returning a registry
    snapshot dict.
    """

    def __init__(self, provider: SnapshotProvider, namespace: str = "repro"):
        self.provider = provider
        self.namespace = namespace

    def handle(self, method: str, path: str, query: Dict, body: bytes):
        from repro.service.http import HttpResponse

        if path == "/metrics" and method == "GET":
            try:
                text = render_prometheus(
                    self.provider(), namespace=self.namespace
                )
            except Exception as exc:  # pragma: no cover - defensive
                return HttpResponse(
                    500,
                    f"scrape failed: {exc}\n".encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
            return HttpResponse(200, text.encode("utf-8"), CONTENT_TYPE)
        if path == "/healthz" and method == "GET":
            body_bytes = json.dumps({"status": "ok"}).encode("utf-8") + b"\n"
            return HttpResponse(200, body_bytes, "application/json")
        return HttpResponse(
            404, b"try /metrics or /healthz\n", "text/plain; charset=utf-8"
        )


class MetricsServer:
    """HTTP server exposing ``/metrics`` and ``/healthz``.

    A :class:`MetricsApp` mounted on the package's one server
    implementation (:class:`repro.service.http.AppServer` — the same
    stack behind ``python -m repro serve``); this class remains as the
    stable convenience entry point of the ``metrics-serve`` verb.

    ``source`` is either a live registry-like object (anything with a
    ``to_dict()``) or a zero-argument callable returning a snapshot
    dict — the callable form lets the CLI re-read a ``--metrics-out``
    JSON file on every scrape, so a dashboard can watch a run that is
    still writing.

    ``port=0`` binds an ephemeral port (use :attr:`port` after
    construction); :meth:`start` serves from a daemon thread,
    :meth:`serve_forever` blocks (the CLI verb).
    """

    def __init__(
        self,
        source: Union[SnapshotProvider, object],
        host: str = "127.0.0.1",
        port: int = 9102,
        namespace: str = "repro",
    ):
        from repro.service.http import AppServer

        if callable(source):
            provider: SnapshotProvider = source  # type: ignore[assignment]
        else:
            provider = source.to_dict  # type: ignore[union-attr]
        self._server = AppServer(
            MetricsApp(provider, namespace=namespace), host=host, port=port
        )

    @property
    def requests_served(self) -> int:
        """Requests handled since the server was created."""
        return self._server.requests_served

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.host

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._server.port

    def start(self) -> "MetricsServer":
        """Serve from a background daemon thread; returns self."""
        self._server.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        self._server.stop()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsServer(http://{self.host}:{self.port})"
