"""Observability for the FMT stack: metrics, logging, tracing, profiling.

The layering is:

* :mod:`repro.observability.metrics` — zero-dependency registry of
  counters, gauges (last/min/max), and timers (reservoir-sampled
  p50/p95 + exact max), rendering to text, JSON, or Prometheus
  exposition;
* :mod:`repro.observability.logging_setup` — structured logging
  convention and the one place handlers are configured;
* :mod:`repro.observability.instrumentation` — the
  :class:`Instrumentation` hook object the simulation stack reports
  into, attached explicitly or ambiently (:func:`use`/:func:`current`);
* :mod:`repro.observability.spans` — hierarchical span tracing across
  the request path, including worker processes
  (:func:`span`/:class:`SpanCollector`, ambient via ``spans.use``);
* :mod:`repro.observability.progress` — live progress/convergence
  reporting at batch boundaries (terminal or JSONL reporters, ambient
  via :func:`use_progress`);
* :mod:`repro.observability.tracing` — JSONL trajectory/span trace
  export;
* :mod:`repro.observability.exposition` — Prometheus text exposition
  (:func:`render_prometheus`) and the stdlib ``/metrics`` endpoint
  (:class:`MetricsServer`, mounted by ``python -m repro
  metrics-serve``);
* :mod:`repro.observability.profiling` — cProfile wrappers for
  function-level deep dives.

Instrumentation is strictly passive: attaching it never changes RNG
draws, event ordering, or results.  Metric names and the trace schema
are documented in ``docs/observability.md``.
"""

from repro.observability.exposition import MetricsServer, render_prometheus
from repro.observability.instrumentation import Instrumentation, current, use
from repro.observability.logging_setup import get_logger, kv, setup_logging
from repro.observability.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    percentile,
)
from repro.observability.profiling import profile_call, profiled
from repro.observability.progress import (
    JsonlProgressReporter,
    ProgressEvent,
    ProgressReporter,
    TerminalProgressReporter,
    current_progress,
    use_progress,
)
from repro.observability.spans import (
    Span,
    SpanCollector,
    SpanContext,
    span,
)
from repro.observability.tracing import (
    TRACE_SCHEMA_VERSION,
    trace_records,
    write_spans,
    write_trace,
    write_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Instrumentation",
    "JsonlProgressReporter",
    "MetricsRegistry",
    "MetricsServer",
    "ProgressEvent",
    "ProgressReporter",
    "Span",
    "SpanCollector",
    "SpanContext",
    "TRACE_SCHEMA_VERSION",
    "TerminalProgressReporter",
    "Timer",
    "current",
    "current_progress",
    "get_logger",
    "kv",
    "percentile",
    "profile_call",
    "profiled",
    "render_prometheus",
    "setup_logging",
    "span",
    "trace_records",
    "use",
    "use_progress",
    "write_spans",
    "write_trace",
    "write_trace_file",
]
