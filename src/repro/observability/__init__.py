"""Observability for the FMT stack: metrics, logging, tracing, profiling.

The layering is:

* :mod:`repro.observability.metrics` — zero-dependency registry of
  counters, gauges, and timers (p50/p95/max), rendering to text or
  JSON;
* :mod:`repro.observability.logging_setup` — structured logging
  convention and the one place handlers are configured;
* :mod:`repro.observability.instrumentation` — the
  :class:`Instrumentation` hook object the simulation stack reports
  into, attached explicitly or ambiently (:func:`use`/:func:`current`);
* :mod:`repro.observability.tracing` — JSONL trajectory-trace export;
* :mod:`repro.observability.profiling` — cProfile wrappers for
  function-level deep dives.

Instrumentation is strictly passive: attaching it never changes RNG
draws, event ordering, or results.  Metric names and the trace schema
are documented in ``docs/observability.md``.
"""

from repro.observability.instrumentation import Instrumentation, current, use
from repro.observability.logging_setup import get_logger, kv, setup_logging
from repro.observability.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    percentile,
)
from repro.observability.profiling import profile_call, profiled
from repro.observability.tracing import (
    TRACE_SCHEMA_VERSION,
    trace_records,
    write_trace,
    write_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Instrumentation",
    "MetricsRegistry",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "current",
    "get_logger",
    "kv",
    "percentile",
    "profile_call",
    "profiled",
    "setup_logging",
    "trace_records",
    "use",
    "write_trace",
    "write_trace_file",
]
