"""Hierarchical spans: trace the request path across the worker pool.

A *span* measures one named operation — a study request, a Monte Carlo
run, a worker chunk — with a monotonic duration, wall-clock start/end,
free-form attributes, and parent/child links forming a trace tree.
The API mirrors :func:`repro.observability.instrumentation.use`:

* explicitly — create a :class:`SpanCollector` and pass
  ``collector=`` to :func:`span`;
* ambiently — wrap code in ``with use(collector): ...`` and every
  :func:`span` block inside picks it up; nested blocks parent
  themselves to the enclosing span automatically.

When no collector is active (the default), :func:`span` yields a
shared no-op span and allocates nothing — the hot path pays one
context-variable read.

Cross-process propagation: :class:`SpanContext` is a tiny picklable
value; serialize it with a worker task (``context.to_dict()``), build
the worker-side span with ``Span.start(name, parent=ctx)``, and ship
``span.end(); span.to_dict()`` back with the chunk result.  The parent
feeds the completed record into its collector via
:meth:`SpanCollector.add_record`, so worker chunks appear as children
of the dispatching span in one connected tree.

Spans are strictly passive: ids come from :func:`os.urandom`, never
from numpy RNG streams, so tracing cannot perturb simulation results
(the bit-identity regression in ``tests/test_observability.py`` runs
with a collector attached).  Records render to the JSONL trace sink
via :func:`repro.observability.tracing.write_spans`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import IO, Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanContext",
    "SpanCollector",
    "current_collector",
    "current_context",
    "span",
    "use",
]

#: Version of the ``{"record": "span", ...}`` JSONL line schema; bump
#: on any breaking change (see docs/observability.md).
SPAN_SCHEMA_VERSION = 1


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: which trace, which node.

    Small, immutable, and picklable — this is what crosses process
    boundaries so worker-side spans can parent themselves correctly.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        """JSON/pickle-ready form for task payloads."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "SpanContext":
        """Rebuild a context shipped via :meth:`to_dict`."""
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])


class Span:
    """One timed operation in a trace tree.

    ``start_time``/``end_time`` are wall-clock (``time.time``) so spans
    from different processes line up on one timeline;
    ``duration_seconds`` comes from ``perf_counter`` so it is monotonic
    and immune to clock steps.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "end_time",
        "duration_seconds",
        "attributes",
        "status",
        "_perf_start",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.status = "ok"
        self.start_time = time.time()
        self.end_time: Optional[float] = None
        self.duration_seconds: Optional[float] = None
        self._perf_start = time.perf_counter()

    @classmethod
    def start(
        cls,
        name: str,
        parent: Optional[Union[SpanContext, Dict[str, str]]] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "Span":
        """Begin a span, optionally as a child of ``parent``.

        ``parent`` accepts a :class:`SpanContext` or its
        :meth:`~SpanContext.to_dict` form (the shape worker tasks
        carry); with no parent a fresh trace is rooted.
        """
        if isinstance(parent, dict):
            parent = SpanContext.from_dict(parent)
        if parent is not None:
            return cls(name, parent.trace_id, _new_span_id(), parent.span_id,
                       attributes)
        return cls(name, _new_trace_id(), _new_span_id(), None, attributes)

    @property
    def context(self) -> SpanContext:
        """This span's propagatable identity."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-serializable values only)."""
        self.attributes[key] = value

    def end(self, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent); returns self for chaining."""
        if self.duration_seconds is None:
            self.duration_seconds = time.perf_counter() - self._perf_start
            self.end_time = self.start_time + self.duration_seconds
        if status is not None:
            self.status = status
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL trace record for this span (ends it if still open)."""
        self.end()
        return {
            "record": "span",
            "schema_version": SPAN_SCHEMA_VERSION,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.duration_seconds is None else (
            f"{self.duration_seconds:.3g}s"
        )
        return f"Span({self.name}, {state})"


class _NullSpan:
    """Shared no-op stand-in yielded when tracing is disabled."""

    __slots__ = ()
    context = None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def end(self, status: Optional[str] = None) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class SpanCollector:
    """Sink accumulating completed span records (as dicts).

    Thread-safe: the driver thread and e.g. a metrics HTTP server may
    touch it concurrently.  Records arrive in completion order — a
    child always precedes its parent, and worker records land when
    their chunk result is folded.
    """

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        """Finish ``span`` and keep its record."""
        self.add_record(span.to_dict())

    def add_record(self, record: Dict[str, Any]) -> None:
        """Keep an already-serialized span record (e.g. from a worker)."""
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the collected records."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write every record as one JSON line; returns the line count."""
        from repro.observability.tracing import write_spans

        return write_spans(self.records, stream)

    def write_jsonl_file(self, path) -> int:
        """Like :meth:`write_jsonl`, to a file path."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanCollector({len(self)} spans)"


_COLLECTOR: ContextVar[Optional[SpanCollector]] = ContextVar(
    "repro_span_collector", default=None
)
_CURRENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_current_span", default=None
)


def current_collector() -> Optional[SpanCollector]:
    """The ambient collector, or None when tracing is disabled."""
    return _COLLECTOR.get()


def current_context() -> Optional[SpanContext]:
    """The context of the innermost open ambient span, if any."""
    return _CURRENT.get()


@contextmanager
def use(collector: Optional[SpanCollector]) -> Iterator[Optional[SpanCollector]]:
    """Make ``collector`` the ambient span sink inside the block.

    ``use(None)`` is a no-op passthrough, mirroring
    :func:`repro.observability.instrumentation.use`.
    """
    if collector is None:
        yield None
        return
    token = _COLLECTOR.set(collector)
    try:
        yield collector
    finally:
        _COLLECTOR.reset(token)


@contextmanager
def span(
    name: str,
    attributes: Optional[Dict[str, Any]] = None,
    collector: Optional[SpanCollector] = None,
) -> Iterator[Union[Span, _NullSpan]]:
    """Trace the enclosed block as one span.

    Parents itself to the innermost enclosing :func:`span` block and
    becomes the ambient parent for blocks nested inside it.  With no
    collector (explicit or ambient) the block runs untraced at
    near-zero cost.  An exception ends the span with ``status="error"``
    and propagates.
    """
    sink = collector if collector is not None else _COLLECTOR.get()
    if sink is None:
        yield NULL_SPAN
        return
    opened = Span.start(name, parent=_CURRENT.get(), attributes=attributes)
    token = _CURRENT.set(opened.context)
    try:
        yield opened
    except BaseException:
        opened.status = "error"
        raise
    finally:
        _CURRENT.reset(token)
        sink.add(opened)
