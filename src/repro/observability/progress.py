"""Live progress and convergence reporting for long Monte Carlo runs.

The simulation drivers (:class:`~repro.simulation.montecarlo.MonteCarlo`
and the rare-event estimator) emit a :class:`ProgressEvent` at batch
boundaries; a :class:`ProgressReporter` turns the stream into something
a human or a machine can watch:

* :class:`TerminalProgressReporter` — a single self-overwriting status
  line on stderr (rate, ETA, trajectories/sec, and — for
  ``run_to_precision`` — the streaming CI half-width vs the target);
* :class:`JsonlProgressReporter` — one JSON object per event, the
  machine-readable feed a service or optimizer can tail.

Reporters attach explicitly (``progress=`` on the driver methods) or
ambiently (``with use_progress(reporter): ...``), mirroring
:func:`repro.observability.instrumentation.use`; the CLI's
``--progress`` / ``--progress-out`` flags use the ambient form.

Reporting is strictly passive — events are derived from already-
computed statistics, never from extra RNG draws — so runs with a
reporter attached are bit-identical to silent runs.
"""

from __future__ import annotations

import json
import math
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, fields
from typing import IO, Iterator, Optional, Protocol, runtime_checkable

__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "TerminalProgressReporter",
    "JsonlProgressReporter",
    "current_progress",
    "use_progress",
]

PROGRESS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ProgressEvent:
    """One snapshot of a running estimation.

    ``total`` is None for open-ended sequential runs; convergence
    fields (``ci_half_width``, ``relative_half_width``, ``target``) are
    populated by ``run_to_precision`` and stay None for fixed-count
    runs.  ``done`` marks the final event of a phase.
    """

    phase: str
    completed: int
    total: Optional[int] = None
    elapsed_seconds: float = 0.0
    rate_per_sec: Optional[float] = None
    eta_seconds: Optional[float] = None
    estimate: Optional[float] = None
    ci_half_width: Optional[float] = None
    relative_half_width: Optional[float] = None
    target: Optional[float] = None
    done: bool = False

    def to_dict(self) -> dict:
        """JSONL-ready record (None and non-finite fields dropped).

        Degenerate confidence intervals surface infinite half-widths;
        ``json.dumps`` would emit the non-standard token ``Infinity``,
        so non-finite floats are dropped like absent fields.
        """
        record = {"record": "progress", "schema_version": PROGRESS_SCHEMA_VERSION}
        # Hand-rolled field walk: dataclasses.asdict() deep-copies via
        # recursion and is slow enough to show up in per-batch reporting.
        for key in _EVENT_FIELDS:
            value = getattr(self, key)
            if value is None:
                continue
            if isinstance(value, float) and not math.isfinite(value):
                continue
            record[key] = value
        return record


_EVENT_FIELDS = tuple(field.name for field in fields(ProgressEvent))


@runtime_checkable
class ProgressReporter(Protocol):
    """Anything that can consume a stream of :class:`ProgressEvent`\\ s."""

    def update(self, event: ProgressEvent) -> None:
        """Consume one event."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release any output resources."""
        ...  # pragma: no cover - protocol


class TerminalProgressReporter:
    """Self-overwriting status line for interactive terminals.

    Events are throttled to at most one repaint per ``min_interval``
    seconds (final events always repaint), so per-batch reporting from
    a tight loop stays cheap.  Output goes to ``stream`` (stderr by
    default, keeping stdout pipeable).

    When the stream is not a terminal (piped stderr, CI logs, a
    StringIO in tests), carriage returns and erase-to-end-of-line
    escapes would show up literally — one unreadable mega-line full of
    ``\\x1b[K`` — so the reporter falls back to plain newline-terminated
    status lines, throttled harder (once per second by default) to keep
    logs from flooding.  An explicit ``min_interval`` overrides the
    throttle in both modes.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        min_interval: Optional[float] = None,
    ):
        self.stream = stream if stream is not None else sys.stderr
        try:
            self.is_tty = bool(self.stream.isatty())
        except (AttributeError, ValueError, OSError):
            self.is_tty = False
        if min_interval is None:
            min_interval = 0.1 if self.is_tty else 1.0
        self.min_interval = min_interval
        self._last_paint = -math.inf  # first event always paints
        self._dirty = False
        self.events_seen = 0

    def update(self, event: ProgressEvent) -> None:
        self.events_seen += 1
        now = time.monotonic()
        if not event.done and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        if self.is_tty:
            self.stream.write("\r" + self.format(event) + "\x1b[K")
            if event.done:
                self.stream.write("\n")
                self._dirty = False
            else:
                self._dirty = True
        else:
            self.stream.write(self.format(event) + "\n")
        self.stream.flush()

    @staticmethod
    def format(event: ProgressEvent) -> str:
        """The status line for one event (exposed for tests)."""
        parts = [f"{event.phase}:"]
        if event.total:
            pct = 100.0 * event.completed / event.total
            parts.append(f"{event.completed}/{event.total} ({pct:.0f}%)")
        else:
            parts.append(f"{event.completed} trajectories")
        if event.rate_per_sec is not None:
            parts.append(f"{event.rate_per_sec:,.0f} traj/s")
        if event.eta_seconds is not None:
            parts.append(f"eta {_format_seconds(event.eta_seconds)}")
        if event.ci_half_width is not None:
            parts.append(f"ci-half-width {event.ci_half_width:.3g}")
        if event.relative_half_width is not None and event.target is not None:
            parts.append(
                f"rel {event.relative_half_width:.3g} -> target {event.target:g}"
            )
        if event.done:
            parts.append("done")
        return " ".join(parts)

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


class JsonlProgressReporter:
    """One JSON object per event, appended to a stream or file.

    The event schema is documented in docs/observability.md; lines are
    self-describing (``"record": "progress"``) so they can share a file
    with span records.
    """

    def __init__(self, stream: Optional[IO[str]] = None, path=None):
        if (stream is None) == (path is None):
            raise ValueError("give exactly one of stream= or path=")
        self._owns_stream = path is not None
        self.stream = (
            open(path, "w", encoding="utf-8") if path is not None else stream
        )
        self.events_seen = 0

    def update(self, event: ProgressEvent) -> None:
        self.events_seen += 1
        self.stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self.stream.write("\n")
        self.stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self.stream.closed:
            self.stream.close()


@dataclass
class _Tee:
    """Fan one event stream out to several reporters (CLI uses this
    when both ``--progress`` and ``--progress-out`` are given)."""

    reporters: list = field(default_factory=list)

    def update(self, event: ProgressEvent) -> None:
        for reporter in self.reporters:
            reporter.update(event)

    def close(self) -> None:
        for reporter in self.reporters:
            reporter.close()


def tee(*reporters: ProgressReporter) -> ProgressReporter:
    """Combine reporters; a single reporter passes through unchanged."""
    live = [r for r in reporters if r is not None]
    if len(live) == 1:
        return live[0]
    return _Tee(list(live))


_AMBIENT: ContextVar[Optional[ProgressReporter]] = ContextVar(
    "repro_progress_reporter", default=None
)


def current_progress() -> Optional[ProgressReporter]:
    """The ambient progress reporter, or None when none is active."""
    return _AMBIENT.get()


@contextmanager
def use_progress(
    reporter: Optional[ProgressReporter],
) -> Iterator[Optional[ProgressReporter]]:
    """Make ``reporter`` ambient inside the block (None = passthrough)."""
    if reporter is None:
        yield None
        return
    token = _AMBIENT.set(reporter)
    try:
        yield reporter
    finally:
        _AMBIENT.reset(token)


def _format_seconds(seconds: float) -> str:
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds / 3600.0:.1f}h"
