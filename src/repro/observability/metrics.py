"""Zero-dependency metrics registry: counters, gauges, timers.

The registry is the storage layer of the observability stack: hot-path
code increments :class:`Counter`\\ s and feeds :class:`Timer`\\ s; the CLI
renders the registry to aligned text (``--profile``) or dumps it as
JSON (``--metrics-out``).  Everything here is pure stdlib and cheap
enough to stay enabled in the simulation hot path — a counter
increment is one attribute add, and timers only pay two
``perf_counter`` calls per observed block.

All instruments are plain picklable objects so a
:class:`~repro.observability.instrumentation.Instrumentation` can ride
along with a simulator into worker processes (each worker then updates
its own copy; see :func:`MetricsRegistry.merge` for recombining).
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ValidationError

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method but needs no numpy —
    the registry must work in contexts where only stdlib is loaded.
    """
    if not samples:
        raise ValidationError("percentile() of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins float value (e.g. a fan-out or queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value:g})"


class Timer:
    """Duration histogram: keeps raw samples, reports p50/p95/max.

    Samples are seconds.  The raw list is bounded by ``max_samples``;
    beyond that only count/total keep growing and quantiles describe
    the first ``max_samples`` observations (good enough for the
    replication workloads this instrument serves, and it keeps memory
    bounded on million-trajectory runs).
    """

    __slots__ = ("name", "count", "total", "max_samples", "_samples")

    def __init__(self, name: str, max_samples: int = 100_000):
        if max_samples < 1:
            raise ValidationError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max_samples = max_samples
        self._samples: List[float] = []

    def observe(self, seconds: float) -> None:
        """Record one duration, in seconds."""
        self.count += 1
        self.total += seconds
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager timing the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        """Mean duration, 0.0 when nothing was observed."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Percentile (``q`` in [0, 100]) of the recorded samples."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    @property
    def max(self) -> float:
        """Largest recorded duration, 0.0 when nothing was observed."""
        return max(self._samples) if self._samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Count/total/mean/p50/p95/max as a JSON-ready dict."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "p50_seconds": self.quantile(50.0),
            "p95_seconds": self.quantile(95.0),
            "max_seconds": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name}: n={self.count}, total={self.total:.3g}s)"


class MetricsRegistry:
    """Named collection of counters, gauges, and timers.

    Instruments are created on first use (``registry.counter("x")``)
    and live for the registry's lifetime; a name is bound to exactly
    one instrument kind (asking for ``counter("x")`` after
    ``timer("x")`` is a caller bug and raises).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument accessors -----------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        instrument = self._timers.get(name)
        if instrument is None:
            self._check_free(name, self._timers)
            instrument = self._timers[name] = Timer(name)
        return instrument

    def _check_free(self, name: str, owner: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._timers):
            if family is not owner and name in family:
                raise ValidationError(
                    f"metric name {name!r} already used by another instrument kind"
                )

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (e.g. from a worker)."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, timer in other._timers.items():
            mine = self.timer(name)
            for sample in timer._samples:
                mine.observe(sample)
            extra = timer.count - len(timer._samples)
            if extra > 0:
                mine.count += extra
                mine.total += timer.total - sum(timer._samples)

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    # -- rendering -----------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Union[int, float, Dict[str, float]]]]:
        """JSON-ready snapshot of everything in the registry."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timers": {
                name: t.summary() for name, t in sorted(self._timers.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` snapshot as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the JSON snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def render_text(self, title: str = "metrics") -> str:
        """Aligned human-readable rendering (the ``--profile`` report)."""
        lines = [f"== {title} =="]
        if self._counters:
            lines.append("counters:")
            width = max(len(name) for name in self._counters)
            for name, counter in sorted(self._counters.items()):
                lines.append(f"  {name.ljust(width)}  {counter.value}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self._gauges)
            for name, gauge in sorted(self._gauges.items()):
                lines.append(f"  {name.ljust(width)}  {gauge.value:g}")
        if self._timers:
            lines.append("timers (seconds):")
            width = max(len(name) for name in self._timers)
            for name, timer in sorted(self._timers.items()):
                lines.append(
                    f"  {name.ljust(width)}  n={timer.count}"
                    f" total={timer.total:.4g} mean={timer.mean:.4g}"
                    f" p50={timer.quantile(50.0):.4g}"
                    f" p95={timer.quantile(95.0):.4g}"
                    f" max={timer.max:.4g}"
                )
        if len(lines) == 1:
            lines.append("(empty)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )
