"""Zero-dependency metrics registry: counters, gauges, timers.

The registry is the storage layer of the observability stack: hot-path
code increments :class:`Counter`\\ s and feeds :class:`Timer`\\ s; the CLI
renders the registry to aligned text (``--profile``) or dumps it as
JSON (``--metrics-out``).  Everything here is pure stdlib and cheap
enough to stay enabled in the simulation hot path — a counter
increment is one attribute add, and timers only pay two
``perf_counter`` calls per observed block.

All instruments are plain picklable objects so a
:class:`~repro.observability.instrumentation.Instrumentation` can ride
along with a simulator into worker processes (each worker then updates
its own copy; see :func:`MetricsRegistry.merge` for recombining).
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ValidationError

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method but needs no numpy —
    the registry must work in contexts where only stdlib is loaded.
    """
    if not samples:
        raise ValidationError("percentile() of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Float value tracking last/min/max across sets.

    ``last`` is the conventional gauge reading (most recent ``set``);
    ``min``/``max`` record the envelope, which is what makes merging
    worker-side gauges lossless — folding registries keeps the extreme
    readings instead of whichever worker's chunk happened to merge
    last (the pre-PR-6 behaviour).
    """

    __slots__ = ("name", "last", "min", "max", "n_sets")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.n_sets = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n_sets += 1

    @property
    def value(self) -> float:
        """The most recent reading (alias of ``last``)."""
        return self.last

    def merge_from(self, other: "Gauge") -> None:
        """Fold another gauge's envelope into this one.

        The other gauge's ``last`` wins (merge order = chunk completion
        order, so the final reading is the most recent one seen);
        min/max combine exactly.  A never-set gauge contributes
        nothing.
        """
        if other.n_sets == 0:
            return
        self.last = other.last
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.n_sets += other.n_sets

    def summary(self) -> Dict[str, float]:
        """``{"last", "min", "max"}`` as a JSON-ready dict.

        A created-but-never-set gauge reports zeros (its historical
        reading) rather than infinities.
        """
        if self.n_sets == 0:
            return {"last": self.last, "min": self.last, "max": self.last}
        return {"last": self.last, "min": self.min, "max": self.max}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.last:g})"


class Timer:
    """Duration histogram: bounded reservoir, reports p50/p95/max.

    Samples are seconds.  The raw list is bounded by ``max_samples``;
    beyond that the kept samples form a uniform random reservoir
    (Vitter's algorithm R) over *everything* observed, so quantiles
    describe the whole run rather than its first ``max_samples``
    observations, while memory stays bounded on million-trajectory
    runs.  The reservoir RNG is seeded from the timer name — fully
    deterministic, independent of numpy streams, identical across
    runs — and ``max`` tracks the true maximum separately so late-run
    stragglers always surface even when the reservoir drops them.
    """

    __slots__ = ("name", "count", "total", "max_samples", "_samples",
                 "_max", "_reservoir_rng")

    def __init__(self, name: str, max_samples: int = 100_000):
        if max_samples < 1:
            raise ValidationError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._max = 0.0
        seed = int.from_bytes(
            hashlib.sha256(name.encode("utf-8")).digest()[:8], "big"
        )
        self._reservoir_rng = random.Random(seed)

    def observe(self, seconds: float) -> None:
        """Record one duration, in seconds."""
        self.count += 1
        self.total += seconds
        if seconds > self._max:
            self._max = seconds
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            slot = self._reservoir_rng.randrange(self.count)
            if slot < self.max_samples:
                self._samples[slot] = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager timing the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        """Mean duration, 0.0 when nothing was observed."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Percentile (``q`` in [0, 100]) of the recorded samples."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    @property
    def max(self) -> float:
        """Largest observed duration, 0.0 when nothing was observed.

        Tracked outside the reservoir, so it is exact over the whole
        run even when the sample that produced it was evicted.
        """
        return self._max

    def summary(self) -> Dict[str, float]:
        """Count/total/mean/p50/p95/max as a JSON-ready dict."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "p50_seconds": self.quantile(50.0),
            "p95_seconds": self.quantile(95.0),
            "max_seconds": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name}: n={self.count}, total={self.total:.3g}s)"


class MetricsRegistry:
    """Named collection of counters, gauges, and timers.

    Instruments are created on first use (``registry.counter("x")``)
    and live for the registry's lifetime; a name is bound to exactly
    one instrument kind (asking for ``counter("x")`` after
    ``timer("x")`` is a caller bug and raises).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument accessors -----------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        instrument = self._timers.get(name)
        if instrument is None:
            self._check_free(name, self._timers)
            instrument = self._timers[name] = Timer(name)
        return instrument

    def _check_free(self, name: str, owner: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._timers):
            if family is not owner and name in family:
                raise ValidationError(
                    f"metric name {name!r} already used by another instrument kind"
                )

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (e.g. from a worker).

        Counters add; gauges fold their last/min/max envelopes
        (:meth:`Gauge.merge_from`); timer samples replay through the
        reservoir, count/total stay exact even past the sample cap, and
        the true maximum is carried over explicitly.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge_from(gauge)
        for name, timer in other._timers.items():
            mine = self.timer(name)
            for sample in timer._samples:
                mine.observe(sample)
            extra = timer.count - len(timer._samples)
            if extra > 0:
                mine.count += extra
                mine.total += timer.total - sum(timer._samples)
            if timer._max > mine._max:
                mine._max = timer._max

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    # -- rendering -----------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Union[int, float, Dict[str, float]]]]:
        """JSON-ready snapshot of everything in the registry."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.summary() for name, g in sorted(self._gauges.items())
            },
            "timers": {
                name: t.summary() for name, t in sorted(self._timers.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` snapshot as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the JSON snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def render_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition (0.0.4) of the registry.

        Counters become ``<ns>_<name>_total``, gauges expose last with
        ``_min``/``_max`` companions, timers render as summaries; see
        :mod:`repro.observability.exposition` for the full mapping.
        """
        from repro.observability.exposition import render_prometheus

        return render_prometheus(self.to_dict(), namespace=namespace)

    def render_text(self, title: str = "metrics") -> str:
        """Aligned human-readable rendering (the ``--profile`` report)."""
        lines = [f"== {title} =="]
        if self._counters:
            lines.append("counters:")
            width = max(len(name) for name in self._counters)
            for name, counter in sorted(self._counters.items()):
                lines.append(f"  {name.ljust(width)}  {counter.value}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self._gauges)
            for name, gauge in sorted(self._gauges.items()):
                line = f"  {name.ljust(width)}  {gauge.last:g}"
                if gauge.n_sets > 1 and gauge.min != gauge.max:
                    line += f" (min {gauge.min:g}, max {gauge.max:g})"
                lines.append(line)
        if self._timers:
            lines.append("timers (seconds):")
            width = max(len(name) for name in self._timers)
            for name, timer in sorted(self._timers.items()):
                lines.append(
                    f"  {name.ljust(width)}  n={timer.count}"
                    f" total={timer.total:.4g} mean={timer.mean:.4g}"
                    f" p50={timer.quantile(50.0):.4g}"
                    f" p95={timer.quantile(95.0):.4g}"
                    f" max={timer.max:.4g}"
                )
        if len(lines) == 1:
            lines.append("(empty)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )
