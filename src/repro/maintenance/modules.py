"""Inspection and repair modules of a fault maintenance tree.

Modules are *schedules over sets of basic events*:

* An :class:`InspectionModule` visits its targets every ``period`` years
  and checks their condition.  A target whose degradation phase is at or
  past its detection threshold gets the module's maintenance action
  (optionally after a planning ``delay``).  A target found failed is
  replaced (corrective maintenance discovered by inspection).
* A :class:`RepairModule` performs *time-based* maintenance: every
  ``period`` years its action is applied to all targets regardless of
  their condition.  With a ``replace`` action this models periodic
  renewal of the asset.

Modules are plain descriptions; their execution lives in
:mod:`repro.simulation.executor`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.maintenance.actions import MaintenanceAction, replace

__all__ = ["InspectionModule", "RepairModule"]

_TIMINGS = ("periodic", "exponential")


def _validate_timing(name: str, timing: str) -> str:
    if timing not in _TIMINGS:
        raise ValidationError(
            f"{name}: timing must be one of {_TIMINGS}, got {timing!r}"
        )
    return timing


def _validate_period(name: str, period: float) -> float:
    period = float(period)
    if not math.isfinite(period) or period <= 0.0:
        raise ValidationError(
            f"{name}: period must be positive and finite, got {period}"
        )
    return period


def _validate_offset(name: str, offset: Optional[float], period: float) -> float:
    if offset is None:
        return period
    offset = float(offset)
    if not math.isfinite(offset) or offset < 0.0:
        raise ValidationError(
            f"{name}: offset must be non-negative and finite, got {offset}"
        )
    return offset


def _validate_targets(name: str, targets: Sequence[str]) -> Tuple[str, ...]:
    result = tuple(targets)
    if not result:
        raise ValidationError(f"{name}: module needs at least one target")
    if len(set(result)) != len(result):
        raise ValidationError(f"{name}: duplicate targets")
    return result


class InspectionModule:
    """Periodic condition-based inspection of a set of basic events.

    Parameters
    ----------
    name:
        Unique module name.
    period:
        Years between inspections.
    targets:
        Names of the inspected basic events.  Every target must have a
        detection threshold (enforced by the tree's validation).
    action:
        Maintenance action applied to a target found degraded.
        Defaults to full replacement.
    delay:
        Years between detecting a degraded component and performing the
        action (work-planning latency).  During the delay the component
        keeps degrading and may still fail.
    offset:
        Time of the first inspection; defaults to ``period`` (the first
        inspection happens one full period after installation).
    detect_failures:
        Whether a target found already failed during an inspection is
        replaced on the spot.  Normally true; disable to model
        inspections that only look for the specific degradation sign.
    timing:
        ``"periodic"`` (default): inspections at fixed intervals, the
        realistic schedule.  ``"exponential"``: exponentially
        distributed inter-inspection times with the same mean — the
        Markovian approximation used by the CTMC compiler, also
        supported by the simulator so the two can be cross-validated on
        identical semantics.
    detection_probability:
        Probability that an inspection notices a target that *is* at or
        past its threshold phase (imperfect inspection).  Misses are
        independent across targets and visits.  Default 1.0 (perfect).
    """

    __slots__ = ("name", "period", "targets", "action", "delay", "offset",
                 "detect_failures", "timing", "detection_probability")

    def __init__(
        self,
        name: str,
        period: float,
        targets: Sequence[str],
        action: Optional[MaintenanceAction] = None,
        delay: float = 0.0,
        offset: Optional[float] = None,
        detect_failures: bool = True,
        timing: str = "periodic",
        detection_probability: float = 1.0,
    ):
        self.name = name
        self.period = _validate_period(name, period)
        self.targets = _validate_targets(name, targets)
        self.action = action if action is not None else replace()
        delay = float(delay)
        if not math.isfinite(delay) or delay < 0.0:
            raise ValidationError(
                f"{name}: delay must be non-negative and finite, got {delay}"
            )
        self.delay = delay
        self.offset = _validate_offset(name, offset, self.period)
        self.detect_failures = bool(detect_failures)
        self.timing = _validate_timing(name, timing)
        detection_probability = float(detection_probability)
        if not 0.0 < detection_probability <= 1.0:
            raise ValidationError(
                f"{name}: detection_probability must be in (0, 1], "
                f"got {detection_probability}"
            )
        self.detection_probability = detection_probability

    @property
    def frequency(self) -> float:
        """Inspections per year."""
        return 1.0 / self.period

    def to_dict(self) -> dict:
        """Serializable description."""
        return {
            "type": "inspection",
            "name": self.name,
            "period": self.period,
            "targets": list(self.targets),
            "action": self.action.to_dict(),
            "delay": self.delay,
            "offset": self.offset,
            "detect_failures": self.detect_failures,
            "timing": self.timing,
            "detection_probability": self.detection_probability,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InspectionModule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            period=data["period"],
            targets=data["targets"],
            action=MaintenanceAction.from_dict(data["action"])
            if "action" in data
            else None,
            delay=data.get("delay", 0.0),
            offset=data.get("offset"),
            detect_failures=data.get("detect_failures", True),
            timing=data.get("timing", "periodic"),
            detection_probability=data.get("detection_probability", 1.0),
        )

    def __repr__(self) -> str:
        return (
            f"InspectionModule({self.name!r}, period={self.period:g}, "
            f"targets={list(self.targets)}, action={self.action.kind})"
        )


class RepairModule:
    """Periodic time-based maintenance of a set of basic events.

    Every ``period`` years (starting at ``offset``) the module applies
    its ``action`` to all targets, whatever their condition.  A
    ``replace`` action makes this a periodic-renewal policy.  ``timing``
    behaves as for :class:`InspectionModule`.
    """

    __slots__ = ("name", "period", "targets", "action", "offset", "timing")

    def __init__(
        self,
        name: str,
        period: float,
        targets: Sequence[str],
        action: Optional[MaintenanceAction] = None,
        offset: Optional[float] = None,
        timing: str = "periodic",
    ):
        self.name = name
        self.period = _validate_period(name, period)
        self.targets = _validate_targets(name, targets)
        self.action = action if action is not None else replace()
        self.offset = _validate_offset(name, offset, self.period)
        self.timing = _validate_timing(name, timing)

    def to_dict(self) -> dict:
        """Serializable description."""
        return {
            "type": "repair",
            "name": self.name,
            "period": self.period,
            "targets": list(self.targets),
            "action": self.action.to_dict(),
            "offset": self.offset,
            "timing": self.timing,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepairModule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            period=data["period"],
            targets=data["targets"],
            action=MaintenanceAction.from_dict(data["action"])
            if "action" in data
            else None,
            offset=data.get("offset"),
            timing=data.get("timing", "periodic"),
        )

    def __repr__(self) -> str:
        return (
            f"RepairModule({self.name!r}, period={self.period:g}, "
            f"targets={list(self.targets)}, action={self.action.kind})"
        )
