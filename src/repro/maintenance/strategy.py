"""Maintenance strategies: the unit the experiments compare and sweep.

A :class:`MaintenanceStrategy` bundles the inspection and repair modules
that should be attached to a model, together with the response to a
system-level failure.  The experiments of the paper compare strategies
such as "no maintenance", "inspections every 3 months", "inspections
plus periodic renewal" — each is one strategy object applied to the
same base tree via :meth:`MaintenanceStrategy.apply`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ValidationError
from repro.maintenance.modules import InspectionModule, RepairModule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tree import FaultMaintenanceTree

__all__ = ["MaintenanceStrategy"]

_FAILURE_RESPONSES = ("replace", "none")


@dataclass(frozen=True)
class MaintenanceStrategy:
    """A named maintenance policy for a fault maintenance tree.

    Parameters
    ----------
    name:
        Strategy name used in tables and plots.
    inspections:
        Inspection modules to attach.
    repairs:
        Repair (time-based maintenance) modules to attach.
    on_system_failure:
        ``"replace"``: a system failure is detected immediately and the
        whole asset is renewed (every basic event restored to pristine)
        after ``system_repair_time`` years of downtime — the realistic
        setting for the EI-joint, whose failure trips train detection
        and is therefore noticed at once.  ``"none"``: the failure is
        absorbing; used for pure reliability studies.
    system_repair_time:
        Downtime of the corrective renewal, in years.
    description:
        Free text shown in the strategy table.
    """

    name: str
    inspections: Tuple[InspectionModule, ...] = ()
    repairs: Tuple[RepairModule, ...] = ()
    on_system_failure: str = "replace"
    system_repair_time: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.on_system_failure not in _FAILURE_RESPONSES:
            raise ValidationError(
                f"{self.name}: on_system_failure must be one of "
                f"{_FAILURE_RESPONSES}, got {self.on_system_failure!r}"
            )
        if (
            not math.isfinite(self.system_repair_time)
            or self.system_repair_time < 0.0
        ):
            raise ValidationError(
                f"{self.name}: system_repair_time must be >= 0, "
                f"got {self.system_repair_time}"
            )
        # Dataclass fields may arrive as lists; normalise to tuples.
        object.__setattr__(self, "inspections", tuple(self.inspections))
        object.__setattr__(self, "repairs", tuple(self.repairs))

    @property
    def inspections_per_year(self) -> float:
        """Total inspection visits per year over all modules."""
        return sum(1.0 / module.period for module in self.inspections)

    @property
    def inspection_rounds_per_year(self) -> float:
        """Physical inspection rounds per year.

        Modules sharing the same (period, offset, timing) model one
        physical visit that checks several target groups; they count as
        a single round.
        """
        schedules = {
            (module.period, module.offset, module.timing)
            for module in self.inspections
        }
        return sum(1.0 / period for period, _, _ in schedules)

    def apply(self, tree: "FaultMaintenanceTree") -> "FaultMaintenanceTree":
        """Attach this strategy's modules to ``tree`` (returns a copy)."""
        return tree.with_maintenance(
            inspections=self.inspections, repairs=self.repairs
        )

    def renamed(self, name: str, description: Optional[str] = None) -> "MaintenanceStrategy":
        """A copy of the strategy under a different display name."""
        return MaintenanceStrategy(
            name=name,
            inspections=self.inspections,
            repairs=self.repairs,
            on_system_failure=self.on_system_failure,
            system_repair_time=self.system_repair_time,
            description=self.description if description is None else description,
        )

    def to_dict(self) -> dict:
        """Serializable description (inverse of :meth:`from_dict`).

        The modules serialize themselves; the round trip preserves the
        strategy's physical content exactly, so a reconstructed
        strategy yields the same study key as the original.
        """
        return {
            "name": self.name,
            "inspections": [module.to_dict() for module in self.inspections],
            "repairs": [module.to_dict() for module in self.repairs],
            "on_system_failure": self.on_system_failure,
            "system_repair_time": self.system_repair_time,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MaintenanceStrategy":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            inspections=tuple(
                InspectionModule.from_dict(spec)
                for spec in data.get("inspections", [])
            ),
            repairs=tuple(
                RepairModule.from_dict(spec)
                for spec in data.get("repairs", [])
            ),
            on_system_failure=data.get("on_system_failure", "replace"),
            system_repair_time=data.get("system_repair_time", 0.0),
            description=data.get("description", ""),
        )

    @classmethod
    def none(cls, name: str = "no-maintenance") -> "MaintenanceStrategy":
        """The do-nothing strategy (corrective renewal on failure only)."""
        return cls(
            name=name,
            description="no inspections, no preventive maintenance; "
            "renew the asset only after a failure",
        )

    @classmethod
    def absorbing(cls, name: str = "unmaintained") -> "MaintenanceStrategy":
        """No maintenance at all; system failure is absorbing.

        This is the configuration for classical (static) fault-tree
        reliability analysis, where the quantity of interest is the
        time to *first* failure.
        """
        return cls(name=name, on_system_failure="none",
                   description="failure is absorbing (reliability study)")

    def __str__(self) -> str:
        parts = [self.name]
        if self.inspections:
            periods = ", ".join(f"{m.period:g}y" for m in self.inspections)
            parts.append(f"inspect every {periods}")
        if self.repairs:
            periods = ", ".join(f"{m.period:g}y" for m in self.repairs)
            parts.append(f"overhaul every {periods}")
        if not self.inspections and not self.repairs:
            parts.append("corrective only" if self.on_system_failure == "replace"
                         else "unmaintained")
        return " | ".join(parts)
