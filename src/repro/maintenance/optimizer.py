"""Search for cost-optimal maintenance policies.

The paper's central question — *is the current policy cost-optimal?* —
is an optimization over the strategy space.  This module provides a
generic, simulation-driven optimizer over a one-dimensional family of
strategies (e.g. inspection frequency, renewal period):

* :func:`evaluate_strategies` — evaluate a candidate list under a
  common seed (common random numbers reduce comparison variance);
* :func:`optimize_frequency` — golden-section search over a continuous
  strategy parameter with re-evaluation noise handling;
* :class:`PolicyEvaluation` — the per-candidate record (cost with CI,
  ENF, reliability).

The optimizer treats the simulator as a black box; any strategy factory
``parameter -> MaintenanceStrategy`` works, so it applies equally to
custom models built with :class:`~repro.core.builder.FMTBuilder`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.tree import FaultMaintenanceTree
from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.stats.confidence import ConfidenceInterval

__all__ = ["PolicyEvaluation", "evaluate_strategies", "optimize_frequency"]

#: Golden ratio constant for the section search.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class PolicyEvaluation:
    """KPIs of one candidate strategy."""

    strategy: MaintenanceStrategy
    parameter: Optional[float]
    cost_per_year: ConfidenceInterval
    failures_per_year: ConfidenceInterval
    reliability: float

    def __str__(self) -> str:
        param = "" if self.parameter is None else f" (x={self.parameter:g})"
        return (
            f"{self.strategy.name}{param}: cost/yr {self.cost_per_year}, "
            f"ENF/yr {self.failures_per_year}"
        )


def evaluate_strategies(
    tree: FaultMaintenanceTree,
    strategies: Sequence[MaintenanceStrategy],
    cost_model: CostModel,
    horizon: float = 50.0,
    n_runs: int = 2000,
    seed: int = 0,
    confidence: float = 0.95,
) -> List[PolicyEvaluation]:
    """Evaluate candidate strategies under common random numbers.

    All candidates share the same root seed, so their trajectories are
    driven by identical random streams where the models coincide —
    differences between candidates are then far less noisy than their
    absolute values.
    """
    from repro.studies import StudyRequest, get_runner

    if not strategies:
        raise ValidationError("no strategies to evaluate")
    evaluations = []
    for strategy in strategies:
        result = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=horizon,
                cost_model=cost_model,
                seed=seed,
                n_runs=n_runs,
                confidence=confidence,
            )
        )
        evaluations.append(
            PolicyEvaluation(
                strategy=strategy,
                parameter=None,
                cost_per_year=result.cost_per_year,
                failures_per_year=result.failures_per_year,
                reliability=result.reliability,
            )
        )
    return evaluations


def optimize_frequency(
    tree: FaultMaintenanceTree,
    strategy_factory: Callable[[float], MaintenanceStrategy],
    cost_model: CostModel,
    lower: float,
    upper: float,
    horizon: float = 50.0,
    n_runs: int = 2000,
    seed: int = 0,
    tolerance: float = 0.25,
    max_evaluations: int = 40,
) -> PolicyEvaluation:
    """Golden-section search for the cost-minimal strategy parameter.

    Minimises the *point estimate* of the annual cost of
    ``strategy_factory(x)`` over ``x in [lower, upper]``.  Common random
    numbers (a shared seed) make the objective a deterministic function
    of ``x``, so the section search is well defined despite the Monte
    Carlo noise; the returned optimum is accurate to ``tolerance`` in
    the parameter, provided the true cost curve is unimodal (which the
    U-shape of maintenance economics gives).

    Returns
    -------
    PolicyEvaluation
        The best evaluated candidate, with its parameter filled in.
    """
    from repro.studies import StudyRequest, get_runner

    if not lower < upper:
        raise ValidationError(f"need lower < upper, got [{lower}, {upper}]")
    if tolerance <= 0.0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")

    runner = get_runner()
    evaluations: dict = {}

    def objective(x: float) -> float:
        if x not in evaluations:
            if len(evaluations) >= max_evaluations:
                raise ValidationError(
                    f"optimizer exceeded {max_evaluations} evaluations"
                )
            result = runner.result(
                StudyRequest(
                    tree=tree,
                    strategy=strategy_factory(x),
                    horizon=horizon,
                    cost_model=cost_model,
                    seed=seed,
                    n_runs=n_runs,
                )
            )
            evaluations[x] = result
        return evaluations[x].cost_per_year.estimate

    a, b = lower, upper
    c = b - _INVPHI * (b - a)
    d = a + _INVPHI * (b - a)
    while (b - a) > tolerance:
        if objective(c) < objective(d):
            b, d = d, c
            c = b - _INVPHI * (b - a)
        else:
            a, c = c, d
            d = a + _INVPHI * (b - a)
    best_x = min(evaluations, key=lambda x: evaluations[x].cost_per_year.estimate)
    best = evaluations[best_x]
    return PolicyEvaluation(
        strategy=strategy_factory(best_x),
        parameter=best_x,
        cost_per_year=best.cost_per_year,
        failures_per_year=best.failures_per_year,
        reliability=best.reliability,
    )
