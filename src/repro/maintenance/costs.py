"""Cost model and cost accounting for maintenance strategies.

The cost KPI of the paper weighs planned maintenance (inspections,
cleaning/repair/replacement actions) against unplanned system failures
(emergency repair plus service-disruption penalties).  The
:class:`CostModel` prices each accountable event; the simulator
accumulates a :class:`CostBreakdown` per trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ValidationError

__all__ = ["CostModel", "CostBreakdown"]

_ACTION_KINDS = ("clean", "repair", "replace")


@dataclass(frozen=True)
class CostModel:
    """Prices for every accountable maintenance/failure event (EUR).

    Parameters
    ----------
    inspection_visit:
        Cost of one execution of one inspection module (crew visit).
    module_visit_costs:
        Per-module overrides of the visit cost, keyed by module name.
        Useful when several inspection modules with different actions
        model a single physical inspection round: price the round on
        one module and zero on the others.
    action_costs:
        Default cost per action kind: ``{"clean": ..., "repair": ...,
        "replace": ...}``.  Missing kinds default to 0.
    event_action_costs:
        Per-event overrides: ``{(event_name, kind): cost}``.
    system_failure:
        Penalty per top-event occurrence (service disruption, fines,
        emergency call-out) — on top of the corrective replacement.
    corrective_factor:
        Multiplier applied to replacement cost when performed
        correctively (unplanned) instead of preventively.
    downtime_per_year:
        Cost rate for system downtime (EUR per year of unavailability).
    discount_rate:
        Continuous discount rate per year for net-present-value
        accounting; 0 (default) means undiscounted totals.  With a
        positive rate every charge at simulation time ``t`` enters the
        books as ``amount * exp(-discount_rate * t)``.
    """

    inspection_visit: float = 0.0
    discount_rate: float = 0.0
    module_visit_costs: Mapping[str, float] = field(default_factory=dict)
    action_costs: Mapping[str, float] = field(default_factory=dict)
    event_action_costs: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    system_failure: float = 0.0
    corrective_factor: float = 1.0
    downtime_per_year: float = 0.0

    def __post_init__(self) -> None:
        for label, value in [
            ("inspection_visit", self.inspection_visit),
            ("system_failure", self.system_failure),
            ("downtime_per_year", self.downtime_per_year),
            ("discount_rate", self.discount_rate),
        ]:
            if not math.isfinite(value) or value < 0.0:
                raise ValidationError(f"{label} must be >= 0, got {value}")
        if not math.isfinite(self.corrective_factor) or self.corrective_factor < 1.0:
            raise ValidationError(
                f"corrective_factor must be >= 1, got {self.corrective_factor}"
            )
        for kind in self.action_costs:
            if kind not in _ACTION_KINDS:
                raise ValidationError(f"unknown action kind {kind!r} in action_costs")
        for (_, kind) in self.event_action_costs:
            if kind not in _ACTION_KINDS:
                raise ValidationError(
                    f"unknown action kind {kind!r} in event_action_costs"
                )
        for module, value in self.module_visit_costs.items():
            if not math.isfinite(value) or value < 0.0:
                raise ValidationError(
                    f"visit cost of module {module!r} must be >= 0, got {value}"
                )

    def visit_cost(self, module_name: str) -> float:
        """Cost of one visit of the named inspection module."""
        return self.module_visit_costs.get(module_name, self.inspection_visit)

    def discount_factor(self, time: float) -> float:
        """Present-value factor for a charge at simulation time ``time``."""
        if self.discount_rate == 0.0:
            return 1.0
        return math.exp(-self.discount_rate * time)

    def discounted_downtime_cost(self, start: float, end: float) -> float:
        """Present value of downtime over ``[start, end]``.

        The downtime cost accrues continuously at ``downtime_per_year``;
        with discounting the integral has the closed form
        ``c * (e^{-r*start} - e^{-r*end}) / r``.
        """
        if end < start:
            raise ValidationError(f"end {end} before start {start}")
        if self.discount_rate == 0.0:
            return self.downtime_per_year * (end - start)
        r = self.discount_rate
        return (
            self.downtime_per_year
            * (math.exp(-r * start) - math.exp(-r * end))
            / r
        )

    def to_dict(self) -> dict:
        """JSON-safe description (inverse of :meth:`from_dict`).

        ``event_action_costs`` is keyed by ``(event, kind)`` tuples,
        which JSON objects cannot express; it serializes as a list of
        ``[event, kind, cost]`` triples instead, sorted so the
        rendering is deterministic.
        """
        return {
            "inspection_visit": self.inspection_visit,
            "discount_rate": self.discount_rate,
            "module_visit_costs": dict(self.module_visit_costs),
            "action_costs": dict(self.action_costs),
            "event_action_costs": [
                [event, kind, cost]
                for (event, kind), cost in sorted(
                    self.event_action_costs.items()
                )
            ],
            "system_failure": self.system_failure,
            "corrective_factor": self.corrective_factor,
            "downtime_per_year": self.downtime_per_year,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostModel":
        """Inverse of :meth:`to_dict`."""
        triples = data.get("event_action_costs", [])
        if isinstance(triples, Mapping):  # tolerate the in-memory shape
            event_action_costs = dict(triples)
        else:
            event_action_costs = {
                (str(event), str(kind)): float(cost)
                for event, kind, cost in triples
            }
        return cls(
            inspection_visit=data.get("inspection_visit", 0.0),
            discount_rate=data.get("discount_rate", 0.0),
            module_visit_costs=dict(data.get("module_visit_costs", {})),
            action_costs=dict(data.get("action_costs", {})),
            event_action_costs=event_action_costs,
            system_failure=data.get("system_failure", 0.0),
            corrective_factor=data.get("corrective_factor", 1.0),
            downtime_per_year=data.get("downtime_per_year", 0.0),
        )

    def action_cost(self, event_name: str, kind: str, corrective: bool = False) -> float:
        """Cost of performing ``kind`` on ``event_name``.

        Per-event overrides take precedence over the per-kind defaults.
        Corrective replacements are scaled by ``corrective_factor``.
        """
        if kind not in _ACTION_KINDS:
            raise ValidationError(f"unknown action kind {kind!r}")
        cost = self.event_action_costs.get(
            (event_name, kind), self.action_costs.get(kind, 0.0)
        )
        if corrective:
            cost *= self.corrective_factor
        return cost


@dataclass
class CostBreakdown:
    """Accumulated costs of one trajectory (or an average of many).

    All amounts are totals over the simulated horizon unless rescaled
    with :meth:`per_year`.
    """

    inspections: float = 0.0
    preventive: float = 0.0
    corrective: float = 0.0
    failures: float = 0.0
    downtime: float = 0.0

    @property
    def total(self) -> float:
        """Grand total over all categories."""
        return (
            self.inspections
            + self.preventive
            + self.corrective
            + self.failures
            + self.downtime
        )

    @property
    def planned(self) -> float:
        """Planned-maintenance spend: inspections + preventive actions."""
        return self.inspections + self.preventive

    @property
    def unplanned(self) -> float:
        """Unplanned spend: corrective actions, failures, downtime."""
        return self.corrective + self.failures + self.downtime

    def add(self, other: "CostBreakdown") -> "CostBreakdown":
        """In-place accumulation; returns self for chaining."""
        self.inspections += other.inspections
        self.preventive += other.preventive
        self.corrective += other.corrective
        self.failures += other.failures
        self.downtime += other.downtime
        return self

    def scaled(self, factor: float) -> "CostBreakdown":
        """A new breakdown with every category multiplied by ``factor``."""
        return CostBreakdown(
            inspections=self.inspections * factor,
            preventive=self.preventive * factor,
            corrective=self.corrective * factor,
            failures=self.failures * factor,
            downtime=self.downtime * factor,
        )

    def per_year(self, horizon: float) -> "CostBreakdown":
        """Average annual breakdown over a horizon of ``horizon`` years."""
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be positive, got {horizon}")
        return self.scaled(1.0 / horizon)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view including the total."""
        return {
            "inspections": self.inspections,
            "preventive": self.preventive,
            "corrective": self.corrective,
            "failures": self.failures,
            "downtime": self.downtime,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "CostBreakdown":
        """Inverse of :meth:`as_dict` (the derived total is ignored)."""
        return cls(
            inspections=data.get("inspections", 0.0),
            preventive=data.get("preventive", 0.0),
            corrective=data.get("corrective", 0.0),
            failures=data.get("failures", 0.0),
            downtime=data.get("downtime", 0.0),
        )
