"""Maintenance actions: what a crew does to a degraded component.

Actions are expressed in terms of the degradation-phase model of
extended basic events: an action moves the component back some number
of phases (partial restoration) or all the way to pristine (renewal).
The distinction between *clean*, *repair* and *replace* matters for the
cost model — each action kind is priced separately per component — and
for reporting; their phase semantics are configurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError

__all__ = ["MaintenanceAction", "clean", "repair", "replace"]

_KINDS = ("clean", "repair", "replace")


@dataclass(frozen=True)
class MaintenanceAction:
    """A restoration applied to an extended basic event.

    Parameters
    ----------
    kind:
        ``"clean"``, ``"repair"`` or ``"replace"``; used as the key into
        the cost model and in incident records.
    restore_phases:
        How many degradation phases the action undoes.  ``None`` means
        full restoration to phase 0 (as-good-as-new).  A finite value
        models imperfect maintenance: e.g. cleaning a polluted joint
        removes the pollution built up so far (back a few phases) but
        does not undo structural wear.
    duration:
        Time the action takes, in years (downtime for availability
        KPIs).  Defaults to instantaneous.
    """

    kind: str
    restore_phases: Optional[int] = None
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValidationError(
                f"unknown action kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.restore_phases is not None and self.restore_phases < 1:
            raise ValidationError(
                f"restore_phases must be >= 1 or None, got {self.restore_phases}"
            )
        if not math.isfinite(self.duration) or self.duration < 0.0:
            raise ValidationError(
                f"duration must be non-negative and finite, got {self.duration}"
            )

    @property
    def is_full_restoration(self) -> bool:
        """Whether the action returns the component to phase 0."""
        return self.restore_phases is None

    def resulting_phase(self, current_phase: int) -> int:
        """Phase the component occupies after applying this action."""
        if current_phase < 0:
            raise ValidationError(f"current_phase must be >= 0, got {current_phase}")
        if self.restore_phases is None:
            return 0
        return max(0, current_phase - self.restore_phases)

    def to_dict(self) -> dict:
        """Serializable description."""
        return {
            "kind": self.kind,
            "restore_phases": self.restore_phases,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MaintenanceAction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            restore_phases=data.get("restore_phases"),
            duration=data.get("duration", 0.0),
        )


def clean(restore_phases: Optional[int] = None, duration: float = 0.0) -> MaintenanceAction:
    """A cleaning action (default: full restoration of the cleaned mode)."""
    return MaintenanceAction("clean", restore_phases, duration)


def repair(restore_phases: Optional[int] = None, duration: float = 0.0) -> MaintenanceAction:
    """A repair action (e.g. grinding off metal overflow)."""
    return MaintenanceAction("repair", restore_phases, duration)


def replace(duration: float = 0.0) -> MaintenanceAction:
    """A replacement: always a full restoration to as-good-as-new."""
    return MaintenanceAction("replace", None, duration)
