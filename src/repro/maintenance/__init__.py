"""Maintenance modelling: actions, inspection/repair modules, costs.

This package provides the *maintenance* half of the FMT formalism:

* :class:`~repro.maintenance.actions.MaintenanceAction` — what is done
  to a component (clean / repair / replace), expressed as a phase
  restoration;
* :class:`~repro.maintenance.modules.InspectionModule` — periodic
  condition inspections that detect degraded components (at or past
  their threshold phase) and schedule an action for them;
* :class:`~repro.maintenance.modules.RepairModule` — periodic
  time-based overhaul/renewal that restores components regardless of
  condition;
* :class:`~repro.maintenance.costs.CostModel` and
  :class:`~repro.maintenance.costs.CostBreakdown` — the money side of
  the KPIs;
* :class:`~repro.maintenance.strategy.MaintenanceStrategy` — a named
  bundle of modules plus the system-failure response, the unit the
  experiments sweep over.
"""

from repro.maintenance.actions import (
    MaintenanceAction,
    clean,
    repair,
    replace,
)
from repro.maintenance.costs import CostBreakdown, CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.optimizer import (
    PolicyEvaluation,
    evaluate_strategies,
    optimize_frequency,
)
from repro.maintenance.strategy import MaintenanceStrategy

__all__ = [
    "CostBreakdown",
    "CostModel",
    "InspectionModule",
    "MaintenanceAction",
    "MaintenanceStrategy",
    "PolicyEvaluation",
    "RepairModule",
    "clean",
    "evaluate_strategies",
    "optimize_frequency",
    "repair",
    "replace",
]
