"""Structure-derived importance functions for importance splitting.

Importance splitting needs a scalar function of the simulator state
that grows as the system approaches the rare event (the top-event
failure).  Following Budde et al., *Rare Event Simulation for
non-Markovian repairable Fault Trees* (arXiv:1910.11672), a good
importance function can be derived automatically from the tree
structure:

* a basic event's local importance is its normalised degradation depth
  ``phase / phases`` in ``[0, 1]`` (a failed event is exactly 1);
* gates compose their children's importances — ``max`` for OR (any
  child suffices), the arithmetic mean for AND-like gates (all
  children must progress), and the mean of the ``k`` largest child
  values for a VOT(k/n) gate.

With the default (unit) weights the top value is **1.0 exactly when
the static structure function of the tree fails**, so thresholds
strictly inside ``(0, 1)`` partition the state space into levels that
the splitting algorithms in :mod:`repro.rareevent.splitting` cross on
the way to a failure.

Per-event ``weights`` let the user reshape the function without
writing one from scratch: the value of event ``e`` becomes
``min(1, weights[e] * phase / phases)`` while it is alive (a failed
event always maps to 1.0, keeping the failure ⇒ importance-1 property).
Weights below 1 damp modes whose degradation carries little information
about imminent system failure — e.g. well-inspected modes that
maintenance almost always catches in time.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.events import BasicEvent
from repro.core.gates import Gate, OrGate, VotingGate
from repro.core.tree import FaultMaintenanceTree
from repro.errors import ValidationError

__all__ = [
    "StructureImportance",
    "candidate_thresholds",
    "select_thresholds",
]


class StructureImportance:
    """Importance function derived from the tree structure.

    Instances are callables mapping a phase assignment (the simulator's
    live ``phases`` dict — basic-event name to current phase) to a
    value in ``[0, 1]``.

    Parameters
    ----------
    tree:
        The fault maintenance tree the simulator runs.
    weights:
        Optional per-basic-event multipliers (> 0) on the normalised
        degradation depth; see the module docstring.
    """

    #: Largest value the function can take (failure of the top event).
    max_value = 1.0

    def __init__(
        self,
        tree: FaultMaintenanceTree,
        weights: Optional[Mapping[str, float]] = None,
    ):
        self._tree = tree
        self._top = tree.top
        events = tree.basic_events
        weights = dict(weights) if weights else {}
        unknown = sorted(set(weights) - set(events))
        if unknown:
            raise ValidationError(
                f"importance weights name unknown basic events: {unknown}"
            )
        for name, weight in weights.items():
            if not weight > 0.0:
                raise ValidationError(
                    f"importance weight for {name!r} must be > 0, got {weight}"
                )
        self._weights: Dict[str, float] = {
            name: float(weights.get(name, 1.0)) for name in events
        }
        self._phases: Dict[str, int] = {
            name: event.phases for name, event in events.items()
        }

    @property
    def weights(self) -> Dict[str, float]:
        """The effective per-event weights (copy)."""
        return dict(self._weights)

    def __call__(self, phases: Mapping[str, int]) -> float:
        """Importance of the state described by ``phases``."""
        return self._value(self._top, phases, {})

    def of(self, simulator) -> float:
        """Importance of an :class:`FMTSimulator`'s live state."""
        return self(simulator.phases)

    def _value(
        self,
        element,
        phases: Mapping[str, int],
        memo: Dict[str, float],
    ) -> float:
        name = element.name
        cached = memo.get(name)
        if cached is not None:
            return cached
        if isinstance(element, BasicEvent):
            total = self._phases[name]
            phase = phases[name]
            if phase >= total:
                value = 1.0  # failed: unconditionally maximal
            else:
                value = min(1.0, self._weights[name] * phase / total)
        else:
            assert isinstance(element, Gate)
            children = [
                self._value(child, phases, memo) for child in element.children
            ]
            if isinstance(element, OrGate):
                value = max(children)
            elif isinstance(element, VotingGate):
                top_k = sorted(children, reverse=True)[: element.k]
                value = sum(top_k) / element.k
            else:
                # AND / PAND / INHIBIT: every child must fail, so track
                # the joint progress.  (PAND ordering is ignored by the
                # importance function — an over-approximation is fine,
                # the estimator itself stays exact.)
                value = sum(children) / len(children)
        memo[name] = value
        return value


def candidate_thresholds(
    tree: FaultMaintenanceTree,
    weights: Optional[Mapping[str, float]] = None,
) -> Tuple[float, ...]:
    """All importance values a *single* basic event can produce.

    For OR-dominated trees (like the EI-joint, an OR over failure
    modes) the top importance is the maximum over per-event values, so
    these are exactly the values the function steps through on the
    most likely paths to failure — the natural places to put level
    thresholds.  Values outside the open interval ``(0, 1)`` are
    dropped (level 0 is the starting state; 1 is the failure itself,
    detected directly by the simulator).
    """
    weights = dict(weights) if weights else {}
    values = set()
    for name, event in tree.basic_events.items():
        weight = float(weights.get(name, 1.0))
        for phase in range(1, event.phases):
            value = min(1.0, weight * phase / event.phases)
            if 0.0 < value < 1.0:
                values.add(round(value, 12))
    return tuple(sorted(values))


def select_thresholds(
    candidates: Sequence[float], n_levels: int
) -> Tuple[float, ...]:
    """Pick up to ``n_levels`` thresholds, evenly spread over ``candidates``.

    The highest candidate is always kept (the last intermediate level
    before failure is the one that matters most for variance).
    """
    if n_levels < 1:
        raise ValidationError(f"n_levels must be >= 1, got {n_levels}")
    ordered = tuple(sorted(set(candidates)))
    if len(ordered) <= n_levels:
        return ordered
    picks = {
        round((index + 1) * len(ordered) / n_levels) - 1
        for index in range(n_levels)
    }
    picks.add(len(ordered) - 1)
    return tuple(ordered[i] for i in sorted(picks))
