"""Importance-splitting drivers: fixed effort and RESTART.

Both algorithms estimate the probability that the system fails within
the horizon by decomposing the rare path to failure into a sequence of
*levels* — up-crossings of an importance function — and multiplying
(or weight-accounting) the much larger conditional probabilities of
climbing one level at a time.  They drive an
:class:`~repro.simulation.executor.FMTSimulator` stepwise and clone
trajectories with its :meth:`snapshot`/:meth:`restore` capability;
restored clones are decorrelated by redrawing the (memoryless)
pending degradation jumps from a fresh RNG stream.

* :class:`FixedEffortSplitting` runs a fixed number of trajectory
  segments per level; the estimate is the product of the per-level
  success fractions.  Effort per level is deterministic, which makes
  run time predictable.
* :class:`RestartSplitting` follows the classic RESTART scheme: each
  up-crossing splits the trajectory into ``splits`` copies carrying
  ``1/splits`` of the weight; copies that fall back below their
  creation level are pruned.  Each root trajectory yields one i.i.d.
  weight observation, so a plain t-interval over roots applies.

Randomness bookkeeping: every trajectory segment draws from its own
child stream of the :class:`numpy.random.SeedSequence` given to the
driver, spawned in a deterministic order — results are a pure function
of the seed, exactly like crude Monte Carlo.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError, ValidationError
from repro.observability import instrumentation as _obs
from repro.simulation.executor import FMTSimulator, SimulatorSnapshot

__all__ = ["FixedEffortSplitting", "RestartSplitting", "SplittingRun", "RestartRoot"]

ImportanceFn = Callable[[Mapping[str, int]], float]


@dataclass(frozen=True)
class SplittingRun:
    """Outcome of one complete fixed-effort replication."""

    #: Product of the per-stage success fractions — an estimate of the
    #: unreliability (0.0 when any stage died out).
    estimate: float
    #: Success fraction per stage (stage k climbs from level k).
    stage_probabilities: Tuple[float, ...]
    #: Trajectory segments simulated per stage.
    stage_trials: Tuple[int, ...]
    #: Total trajectory segments simulated (cost proxy).
    n_segments: int


@dataclass(frozen=True)
class RestartRoot:
    """Outcome of one RESTART root trajectory (one i.i.d. observation)."""

    #: Total weight that reached the rare event (unbiased for the
    #: unreliability; 0.0 for most roots).
    weight: float
    #: Trajectory segments simulated for this root, clones included.
    n_segments: int


def _check_thresholds(thresholds: Sequence[float]) -> Tuple[float, ...]:
    ordered = tuple(float(t) for t in thresholds)
    if not ordered:
        raise ValidationError("at least one importance threshold is required")
    if any(not 0.0 < t < 1.0 for t in ordered):
        raise ValidationError(
            f"thresholds must lie strictly inside (0, 1): {ordered}"
        )
    if any(b <= a for a, b in zip(ordered, ordered[1:])):
        raise ValidationError(f"thresholds must be strictly increasing: {ordered}")
    return ordered


class _SplittingBase:
    """Shared plumbing of the two drivers."""

    def __init__(
        self,
        simulator: FMTSimulator,
        importance: ImportanceFn,
        thresholds: Sequence[float],
        max_segments: int = 1_000_000,
    ):
        if max_segments < 1:
            raise ValidationError(f"max_segments must be >= 1, got {max_segments}")
        self.simulator = simulator
        self.importance = importance
        self.thresholds = _check_thresholds(thresholds)
        self.max_segments = max_segments
        self._seed_sequence: Optional[np.random.SeedSequence] = None
        self._instr = None
        self._segments = 0

    @property
    def n_levels(self) -> int:
        """Number of intermediate levels (= number of thresholds)."""
        return len(self.thresholds)

    def _start(self, seed_sequence: np.random.SeedSequence) -> None:
        self._seed_sequence = seed_sequence
        instr = self.simulator.config.instrumentation
        self._instr = instr if instr is not None else _obs.current()
        self._segments = 0

    def _next_rng(self) -> np.random.Generator:
        assert self._seed_sequence is not None
        return np.random.default_rng(self._seed_sequence.spawn(1)[0])

    def _count(self, name: str, amount: int = 1) -> None:
        if self._instr is not None:
            self._instr.count(name, amount)

    def _new_segment(self) -> None:
        self._segments += 1
        self._count(_obs.RARE_SEGMENTS)
        if self._segments > self.max_segments:
            raise EstimationError(
                f"splitting exceeded max_segments={self.max_segments}; "
                "the level thresholds are probably too dense for this "
                "model (see docs/rare_events.md on level selection)"
            )

    def _level(self, value: float) -> int:
        """Number of thresholds at or below ``value`` (current level)."""
        return bisect_right(self.thresholds, value)


class FixedEffortSplitting(_SplittingBase):
    """Fixed-effort splitting: ``effort`` trajectory segments per level.

    Stage ``k`` starts ``effort`` segments from entry states recorded
    at level ``k`` (fresh starts for ``k = 0``) and runs each until it
    either crosses threshold ``k+1`` (recording the entry snapshot for
    the next stage) or terminates — end of horizon, or an absorbing
    system failure.  The final stage's target is the system failure
    itself.  The estimate is the product of the per-stage success
    fractions.
    """

    def __init__(
        self,
        simulator: FMTSimulator,
        importance: ImportanceFn,
        thresholds: Sequence[float],
        effort: int = 100,
        max_segments: int = 1_000_000,
    ):
        super().__init__(simulator, importance, thresholds, max_segments)
        if effort < 2:
            raise ValidationError(f"effort must be >= 2, got {effort}")
        self.effort = effort

    def run(self, seed_sequence: np.random.SeedSequence) -> SplittingRun:
        """One complete fixed-effort replication."""
        self._start(seed_sequence)
        sim = self.simulator
        pool: List[Optional[SimulatorSnapshot]] = [None]  # None = fresh start
        probabilities: List[float] = []
        trials: List[int] = []
        n_stages = self.n_levels + 1
        for stage in range(n_stages):
            # Target: cross threshold ``stage`` (0-based into the
            # thresholds tuple); for the last stage, reach the failure.
            target = (
                self.thresholds[stage] if stage < self.n_levels else None
            )
            next_pool: List[Optional[SimulatorSnapshot]] = []
            successes = 0
            for _ in range(self.effort):
                rng = self._next_rng()
                self._new_segment()
                if stage == 0:
                    sim.begin(rng)
                else:
                    entry = pool[int(rng.integers(len(pool)))]
                    assert entry is not None
                    sim.restore(entry, rng)
                    sim.resample_transitions()
                    self._count(_obs.RARE_CLONES)
                reached = self._run_segment(sim, target)
                if reached:
                    successes += 1
                    self._count(_obs.RARE_LEVEL_UP)
                    if target is not None:
                        next_pool.append(sim.snapshot())
            probabilities.append(successes / self.effort)
            trials.append(self.effort)
            if successes == 0:
                break  # the chain died out: estimate is 0 for this run
            pool = next_pool if target is not None else pool
        estimate = 1.0
        for p in probabilities:
            estimate *= p
        if len(probabilities) < n_stages:
            estimate = 0.0
        return SplittingRun(
            estimate=estimate,
            stage_probabilities=tuple(probabilities),
            stage_trials=tuple(trials),
            n_segments=self._segments,
        )

    def _run_segment(
        self, sim: FMTSimulator, target: Optional[float]
    ) -> bool:
        """Advance until the target is reached or the run terminates."""
        while True:
            if sim.system_failed:
                return True  # failure implies importance 1 >= any target
            if target is not None and self.importance(sim.phases) >= target:
                return True
            if not sim.step():
                return False


class RestartSplitting(_SplittingBase):
    """RESTART splitting with weight accounting.

    Each root trajectory starts at weight 1.  On every up-crossing
    into a new level the trajectory is replaced by ``splits`` copies
    carrying ``weight / splits`` each (one continues in place, the
    rest restart from a snapshot with fresh randomness).  A copy that
    falls back below the level it was created at is pruned.  Weight
    reaching the system failure accumulates into the root's
    observation; the weights of distinct roots are i.i.d. with mean
    equal to the unreliability, which is what makes the scheme
    unbiased and gives it a plain t-interval.
    """

    def __init__(
        self,
        simulator: FMTSimulator,
        importance: ImportanceFn,
        thresholds: Sequence[float],
        splits: int = 4,
        max_segments: int = 1_000_000,
    ):
        super().__init__(simulator, importance, thresholds, max_segments)
        if splits < 2:
            raise ValidationError(f"splits must be >= 2, got {splits}")
        self.splits = splits

    def run_root(self, seed_sequence: np.random.SeedSequence) -> RestartRoot:
        """Run one root trajectory and all clones it spawns."""
        self._start(seed_sequence)
        sim = self.simulator
        # Work list of clones waiting to run: (snapshot, weight,
        # creation_level).  Depth-first keeps the list small.
        backlog: List[Tuple[SimulatorSnapshot, float, int]] = []
        total_weight = 0.0

        self._new_segment()
        sim.begin(self._next_rng())
        total_weight += self._run_trajectory(sim, weight=1.0, creation_level=0,
                                             backlog=backlog)
        while backlog:
            snapshot, weight, creation_level = backlog.pop()
            self._new_segment()
            self._count(_obs.RARE_CLONES)
            sim.restore(snapshot, self._next_rng())
            sim.resample_transitions()
            total_weight += self._run_trajectory(
                sim, weight, creation_level, backlog
            )
        return RestartRoot(weight=total_weight, n_segments=self._segments)

    def _run_trajectory(
        self,
        sim: FMTSimulator,
        weight: float,
        creation_level: int,
        backlog: List[Tuple[SimulatorSnapshot, float, int]],
    ) -> float:
        """Run one clone to completion; returns the weight it scored."""
        level = self._level(self.importance(sim.phases))
        while True:
            if sim.system_failed:
                return weight
            if not sim.step():
                return 0.0
            new_level = self._level(self.importance(sim.phases))
            if new_level < level:
                self._count(_obs.RARE_LEVEL_DOWN)
                if new_level < creation_level:
                    self._count(_obs.RARE_PRUNES)
                    return 0.0
                level = new_level
                continue
            # Split once per level climbed, so a multi-level jump
            # branches ``splits`` ways at each level, like a slow climb.
            while new_level > level:
                level += 1
                self._count(_obs.RARE_LEVEL_UP)
                weight /= self.splits
                snapshot = sim.snapshot()
                for _ in range(self.splits - 1):
                    backlog.append((snapshot, weight, level))
