"""Rare-event unreliability estimation: configuration, driver, CIs.

:class:`RareEventEstimator` wires an importance function and a
splitting driver to an :class:`~repro.simulation.executor.FMTSimulator`
and aggregates the replicated observations into a
:class:`~repro.stats.confidence.ConfidenceInterval` — the same type
every other estimator in this library reports, so results drop into
the existing experiment tables unchanged.

Replication structure:

* fixed effort — ``n_replications`` independent complete replications;
  the estimate is their mean with a Student-t interval (a delta-method
  log-normal interval when only one replication is run);
* RESTART — ``n_roots`` independent root trajectories; their weights
  are i.i.d. with mean equal to the unreliability, so a t-interval
  over roots applies directly.

When *every* observation is zero both methods fall back to a Wilson
interval on zero successes (``[0, upper]``), mirroring the crude-MC
zero-failure fallback in :func:`repro.simulation.metrics.summarize` —
a zero-width interval at 0 would claim certainty the data cannot
support.

Parallelism ships whole replications (fixed effort) or root batches
(RESTART) to worker processes; each unit consumes only its own
pre-spawned seed, so serial and parallel runs are bit-identical.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import stats as sps

from repro.errors import EstimationError, SimulationError, ValidationError
from repro.observability.logging_setup import get_logger, kv
from repro.observability.progress import ProgressEvent, current_progress
from repro.rareevent.importance import (
    StructureImportance,
    candidate_thresholds,
    select_thresholds,
)
from repro.rareevent.splitting import (
    FixedEffortSplitting,
    RestartRoot,
    RestartSplitting,
    SplittingRun,
)
from repro.simulation.executor import FMTSimulator
from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    wilson_interval,
)

__all__ = [
    "RareEventConfig",
    "RareEventResult",
    "RareEventEstimator",
    "crude_equivalent_runs",
]

logger = get_logger(__name__)


def crude_equivalent_runs(interval: ConfidenceInterval) -> Optional[int]:
    """Crude-MC trajectories needed to match ``interval``'s precision.

    A binomial proportion ``p`` estimated from ``n`` crude trajectories
    has a confidence interval of half-width ``z * sqrt(p (1 - p) / n)``;
    inverting at the interval's point estimate and relative half-width
    gives the crude sample size a splitting run effectively replaced.
    Returns None when the interval is degenerate (zero estimate or zero
    width), where the comparison is meaningless.
    """
    p = interval.estimate
    if p <= 0.0 or p >= 1.0 or interval.half_width <= 0.0:
        return None
    z = float(sps.norm.ppf(0.5 + 0.5 * interval.confidence))
    relative = interval.half_width / p
    return int(math.ceil(z * z * (1.0 - p) / (p * relative * relative)))

_METHODS = ("fixed_effort", "restart")


@dataclass(frozen=True)
class RareEventConfig:
    """Knobs of the importance-splitting estimator.

    Parameters
    ----------
    method:
        ``"fixed_effort"`` (default) or ``"restart"``.
    n_levels:
        Number of intermediate importance levels to aim for when
        ``thresholds`` is not given; the actual thresholds are chosen
        from the values the tree's importance function can reach (see
        :func:`repro.rareevent.importance.candidate_thresholds`).
    thresholds:
        Explicit, strictly increasing importance thresholds in
        ``(0, 1)``; overrides ``n_levels``.
    effort:
        Fixed effort: trajectory segments per level per replication.
    n_replications:
        Fixed effort: independent replications (>= 2 gives a t-CI).
    splits:
        RESTART: split factor at each level up-crossing.
    n_roots:
        RESTART: number of independent root trajectories.
    importance_weights:
        Optional per-basic-event weights reshaping the derived
        importance function (see :mod:`repro.rareevent.importance`).
    max_segments:
        Safety cap on trajectory segments per replication/root.
    """

    method: str = "fixed_effort"
    n_levels: int = 5
    thresholds: Optional[Tuple[float, ...]] = None
    effort: int = 100
    n_replications: int = 8
    splits: int = 4
    n_roots: int = 400
    importance_weights: Optional[Mapping[str, float]] = field(default=None)
    max_segments: int = 1_000_000

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValidationError(
                f"method must be one of {_METHODS}, got {self.method!r}"
            )
        if self.n_levels < 1:
            raise ValidationError(f"n_levels must be >= 1, got {self.n_levels}")
        if self.effort < 2:
            raise ValidationError(f"effort must be >= 2, got {self.effort}")
        if self.n_replications < 1:
            raise ValidationError(
                f"n_replications must be >= 1, got {self.n_replications}"
            )
        if self.splits < 2:
            raise ValidationError(f"splits must be >= 2, got {self.splits}")
        if self.n_roots < 2:
            raise ValidationError(f"n_roots must be >= 2, got {self.n_roots}")
        if self.thresholds is not None:
            object.__setattr__(
                self, "thresholds", tuple(float(t) for t in self.thresholds)
            )
        if self.importance_weights is not None:
            object.__setattr__(
                self, "importance_weights", dict(self.importance_weights)
            )

    @property
    def n_units(self) -> int:
        """Independent seed-consuming units this configuration runs."""
        return (
            self.n_replications if self.method == "fixed_effort" else self.n_roots
        )


@dataclass(frozen=True)
class RareEventResult:
    """Outcome of a rare-event estimation run."""

    #: P(system failure within the horizon), with CI.
    unreliability: ConfidenceInterval
    #: ``"fixed_effort"`` or ``"restart"``.
    method: str
    #: The importance thresholds actually used.
    thresholds: Tuple[float, ...]
    #: Trajectory segments simulated in total (clones included) — the
    #: cost figure to compare against crude-MC trajectory counts.
    n_trajectories: int
    #: Independent units (replications or roots).
    n_units: int
    #: Simulation horizon, years.
    horizon: float
    #: Fixed effort only: pooled per-stage success fractions.
    stage_probabilities: Optional[Tuple[float, ...]] = None


# ----------------------------------------------------------------------
# Worker-process plumbing (mirrors repro.simulation.parallel)
# ----------------------------------------------------------------------
_WORKER_ESTIMATOR: Optional["RareEventEstimator"] = None


def _init_worker(simulator: FMTSimulator, config: RareEventConfig) -> None:
    global _WORKER_ESTIMATOR
    _WORKER_ESTIMATOR = RareEventEstimator(simulator, config)


def _worker_units(
    seeds: Sequence[np.random.SeedSequence],
) -> List[Union[SplittingRun, RestartRoot]]:
    assert _WORKER_ESTIMATOR is not None
    return _WORKER_ESTIMATOR._run_units(seeds)


class RareEventEstimator:
    """Importance-splitting unreliability estimator for one simulator.

    Parameters
    ----------
    simulator:
        The configured :class:`FMTSimulator` (tree, strategy, horizon).
        The estimator drives it stepwise; any strategy works, including
        renewing ones — the estimated quantity is always the
        probability of *at least one* system failure in the horizon.
    config:
        The splitting configuration.
    """

    def __init__(self, simulator: FMTSimulator, config: RareEventConfig):
        self.simulator = simulator
        self.config = config
        self.importance = StructureImportance(
            simulator.tree, config.importance_weights
        )
        if config.thresholds is not None:
            self.thresholds = config.thresholds
        else:
            candidates = candidate_thresholds(
                simulator.tree, config.importance_weights
            )
            if not candidates:
                raise EstimationError(
                    "the importance function has no intermediate levels "
                    "(all basic events are single-phase); importance "
                    "splitting cannot help here — use crude Monte Carlo "
                    "(see docs/rare_events.md, 'when crude MC is fine')"
                )
            self.thresholds = select_thresholds(candidates, config.n_levels)

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------
    def _driver(self):
        if self.config.method == "fixed_effort":
            return FixedEffortSplitting(
                self.simulator,
                self.importance,
                self.thresholds,
                effort=self.config.effort,
                max_segments=self.config.max_segments,
            )
        return RestartSplitting(
            self.simulator,
            self.importance,
            self.thresholds,
            splits=self.config.splits,
            max_segments=self.config.max_segments,
        )

    def _run_units(
        self, seeds: Sequence[np.random.SeedSequence]
    ) -> List[Union[SplittingRun, RestartRoot]]:
        driver = self._driver()
        run_one = (
            driver.run
            if self.config.method == "fixed_effort"
            else driver.run_root
        )
        reporter = current_progress()
        if reporter is None:
            units = [run_one(seed) for seed in seeds]
            # Splitting drives the simulator step-by-step, so the final
            # segment's batched event tallies need an explicit fold.
            self.simulator.flush_instrumentation()
            return units
        # Watched run: same seed order, one convergence-free progress
        # event per unit (units are few and heavy, unlike trajectories).
        units: List[Union[SplittingRun, RestartRoot]] = []
        start = time.perf_counter()
        for index, seed in enumerate(seeds, start=1):
            units.append(run_one(seed))
            elapsed = time.perf_counter() - start
            rate = index / elapsed if elapsed > 0 else None
            reporter.update(
                ProgressEvent(
                    phase="rare.units",
                    completed=index,
                    total=len(seeds),
                    elapsed_seconds=elapsed,
                    rate_per_sec=rate,
                    eta_seconds=(
                        (len(seeds) - index) / rate if rate else None
                    ),
                    done=index >= len(seeds),
                )
            )
        self.simulator.flush_instrumentation()
        return units

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        unit_seeds: Sequence[np.random.SeedSequence],
        confidence: float = 0.95,
        processes: int = 1,
    ) -> RareEventResult:
        """Run every unit and aggregate into a :class:`RareEventResult`.

        ``unit_seeds`` must hold exactly ``config.n_units`` seed
        sequences (one per replication or root).  ``processes > 1``
        fans units out to worker processes; the result is bit-identical
        to the serial run because each unit consumes only its own seed.
        """
        expected = self.config.n_units
        if len(unit_seeds) != expected:
            raise ValidationError(
                f"expected {expected} unit seeds for method "
                f"{self.config.method!r}, got {len(unit_seeds)}"
            )
        if processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        if processes == 1:
            units = self._run_units(unit_seeds)
        else:
            units = self._run_units_parallel(unit_seeds, processes)
        if self.config.method == "fixed_effort":
            return self._combine_fixed_effort(units, confidence)
        return self._combine_restart(units, confidence)

    def _run_units_parallel(
        self, unit_seeds: Sequence[np.random.SeedSequence], processes: int
    ) -> List[Union[SplittingRun, RestartRoot]]:
        chunk_size = max(1, len(unit_seeds) // (processes * 4))
        chunks = [
            unit_seeds[start:start + chunk_size]
            for start in range(0, len(unit_seeds), chunk_size)
        ]
        logger.debug(
            kv(
                "rareevent parallel dispatch",
                units=len(unit_seeds),
                processes=processes,
                chunks=len(chunks),
            )
        )
        results: List[Union[SplittingRun, RestartRoot]] = []
        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(self.simulator, self.config),
        ) as pool:
            try:
                for batch in pool.map(_worker_units, chunks):
                    results.extend(batch)
            except BrokenProcessPool as exc:
                raise SimulationError(
                    "a rare-event worker process terminated abruptly "
                    f"(completed {len(results)}/{len(unit_seeds)} units); "
                    "rerun with processes=1 to reproduce in-process"
                ) from exc
        return results

    def _combine_fixed_effort(
        self, units: Sequence[SplittingRun], confidence: float
    ) -> RareEventResult:
        estimates = np.fromiter(
            (unit.estimate for unit in units), dtype=np.float64, count=len(units)
        )
        n_segments = sum(unit.n_segments for unit in units)
        interval = self._fixed_effort_interval(units, estimates, confidence)
        return RareEventResult(
            unreliability=interval,
            method="fixed_effort",
            thresholds=self.thresholds,
            n_trajectories=n_segments,
            n_units=len(units),
            horizon=self.simulator.config.horizon,
            stage_probabilities=self._pooled_stage_probabilities(units),
        )

    def _fixed_effort_interval(
        self,
        units: Sequence[SplittingRun],
        estimates: np.ndarray,
        confidence: float,
    ) -> ConfidenceInterval:
        if not np.any(estimates):
            # Zero everywhere: a Wilson zero-success fallback on the
            # first-stage trials gives an honest (conservative) upper
            # bound — p <= P(reach level 1) by construction.
            trials = sum(unit.stage_trials[0] for unit in units)
            upper = wilson_interval(0, trials, confidence).upper
            return ConfidenceInterval(0.0, 0.0, upper, confidence)
        if len(units) >= 2:
            interval = mean_confidence_interval(estimates, confidence)
            return ConfidenceInterval(
                interval.estimate,
                max(0.0, interval.lower),
                interval.upper,
                confidence,
            )
        # Single replication: delta-method log-normal interval from the
        # per-stage binomial variances.
        unit = units[0]
        variance_log = sum(
            (1.0 - p) / (p * n)
            for p, n in zip(unit.stage_probabilities, unit.stage_trials)
            if p > 0.0
        )
        z = float(sps.norm.ppf(0.5 + 0.5 * confidence))
        spread = math.exp(z * math.sqrt(variance_log))
        estimate = unit.estimate
        return ConfidenceInterval(
            estimate, estimate / spread, estimate * spread, confidence
        )

    @staticmethod
    def _pooled_stage_probabilities(
        units: Sequence[SplittingRun],
    ) -> Tuple[float, ...]:
        n_stages = max(len(unit.stage_probabilities) for unit in units)
        pooled = []
        for stage in range(n_stages):
            successes = 0.0
            trials = 0
            for unit in units:
                if stage < len(unit.stage_probabilities):
                    successes += (
                        unit.stage_probabilities[stage] * unit.stage_trials[stage]
                    )
                    trials += unit.stage_trials[stage]
            pooled.append(successes / trials if trials else 0.0)
        return tuple(pooled)

    def _combine_restart(
        self, units: Sequence[RestartRoot], confidence: float
    ) -> RareEventResult:
        weights = np.fromiter(
            (unit.weight for unit in units), dtype=np.float64, count=len(units)
        )
        n_segments = sum(unit.n_segments for unit in units)
        if not np.any(weights):
            upper = wilson_interval(0, len(weights), confidence).upper
            interval = ConfidenceInterval(0.0, 0.0, upper, confidence)
        else:
            raw = mean_confidence_interval(weights, confidence)
            interval = ConfidenceInterval(
                raw.estimate, max(0.0, raw.lower), raw.upper, confidence
            )
        return RareEventResult(
            unreliability=interval,
            method="restart",
            thresholds=self.thresholds,
            n_trajectories=n_segments,
            n_units=len(units),
            horizon=self.simulator.config.horizon,
        )
