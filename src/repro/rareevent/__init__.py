"""Rare-event simulation: importance splitting for small unreliabilities.

Crude Monte Carlo needs on the order of ``1/p`` trajectories to see a
single failure of probability ``p``; once frequent inspection pushes
the EI-joint's unreliability into the ``1e-4`` regime and below, that
is millions of simulated railway-years per data point.  This package
implements importance splitting — RESTART and fixed-effort — on top of
the event engine's snapshot/restore capability, with importance
functions derived automatically from the tree structure (Budde et al.,
arXiv:1910.11672).

Entry points:

* :meth:`repro.simulation.montecarlo.MonteCarlo.run_rare_event` — the
  integrated driver (seed management, parallel fan-out);
* :class:`RareEventEstimator` — direct use on a configured simulator;
* :class:`StructureImportance` — the derived importance function,
  reusable for custom drivers.

See ``docs/rare_events.md`` for the theory, the level-selection knobs,
and the cases where crude Monte Carlo remains the better tool.
"""

from repro.rareevent.estimator import (
    RareEventConfig,
    RareEventEstimator,
    RareEventResult,
    crude_equivalent_runs,
)
from repro.rareevent.importance import (
    StructureImportance,
    candidate_thresholds,
    select_thresholds,
)
from repro.rareevent.splitting import (
    FixedEffortSplitting,
    RestartRoot,
    RestartSplitting,
    SplittingRun,
)

__all__ = [
    "RareEventConfig",
    "RareEventEstimator",
    "RareEventResult",
    "crude_equivalent_runs",
    "StructureImportance",
    "candidate_thresholds",
    "select_thresholds",
    "FixedEffortSplitting",
    "RestartSplitting",
    "SplittingRun",
    "RestartRoot",
]
