"""Fault maintenance trees for reliability-centered maintenance.

A production-quality reproduction of the system behind *"Reliability-
Centered Maintenance of the Electrically Insulated Railway Joint via
Fault Tree Analysis"* (Ruijters, Guck, van Noort, Stoelinga; DSN 2016).

The package provides:

* the **fault maintenance tree** formalism (:mod:`repro.core`,
  :mod:`repro.maintenance`): fault trees with phased-degradation basic
  events, rate-dependency acceleration, periodic inspections and
  repairs;
* a **discrete-event Monte Carlo engine** (:mod:`repro.simulation`)
  estimating reliability, expected number of failures, availability and
  cost with confidence intervals;
* **exact analyses** for static trees (:mod:`repro.analysis`: minimal
  cut sets, BDDs, importance measures) and for Markovian submodels
  (:mod:`repro.ctmc`: uniformization);
* a **Galileo-style text format** (:mod:`repro.dsl`);
* a **data substrate** (:mod:`repro.data`) generating synthetic
  incident-registration databases and fitting model parameters to them;
* the **EI-joint case study** (:mod:`repro.eijoint`) and the
  **experiment harness** (:mod:`repro.experiments`) that regenerates
  every table and figure of the evaluation;
* an **observability layer** (:mod:`repro.observability`): metrics
  registry, structured logging, passive simulation instrumentation,
  JSONL trace export, and profiling hooks;
* a **rare-event subsystem** (:mod:`repro.rareevent`): importance
  splitting (RESTART / fixed effort) over simulator snapshots;
* a memoizing **study runner** (:mod:`repro.studies`): content-addressed
  caching of Monte Carlo studies across experiments and processes;
* an **analysis service** (:mod:`repro.service`): a stdlib-only HTTP
  API over the study runner (``POST /v1/studies``) with a versioned
  JSON wire schema (:func:`encode_wire` / :func:`decode_wire`) —
  ``python -m repro serve``, reference in docs/service.md.

Quickstart
----------
>>> import repro
>>> model = repro.eijoint.build_ei_joint_fmt()
>>> strategy = repro.eijoint.current_policy()
>>> result = repro.MonteCarlo(model, strategy, horizon=10.0, seed=7).run(200)
>>> 0.0 <= result.unreliability.estimate <= 1.0
True
"""

from repro._version import __version__
from repro import analysis, core, ctmc, data, dsl, eijoint, maintenance
from repro import observability, rareevent, simulation, stats, studies, units
from repro.observability import Instrumentation, MetricsRegistry
from repro.rareevent import RareEventConfig, RareEventResult
from repro.studies import StudyRequest, StudyRunner, get_runner, use_runner
from repro.core import (
    AndGate,
    BasicEvent,
    FMTBuilder,
    FaultMaintenanceTree,
    FaultTree,
    InhibitGate,
    OrGate,
    PandGate,
    RateDependency,
    VotingGate,
)
from repro.errors import (
    AnalysisError,
    EstimationError,
    ModelError,
    ParseError,
    ReproError,
    SimulationError,
    UnsupportedModelError,
    ValidationError,
)
from repro.maintenance import (
    CostBreakdown,
    CostModel,
    InspectionModule,
    MaintenanceAction,
    MaintenanceStrategy,
    RepairModule,
    clean,
    repair,
    replace,
)
from repro.simulation import (
    MonteCarlo,
    MonteCarloResult,
    SimulationConfig,
    TrajectoryAccumulator,
    TrajectoryBatch,
)

# Imported last: repro.service.app reaches back into repro.studies and
# repro.observability, which the lines above have already initialised.
from repro import service
from repro.service.app import StudyService, serve_app
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    decode_wire,
    encode_wire,
)

__all__ = [
    "AnalysisError",
    "AndGate",
    "BasicEvent",
    "CostBreakdown",
    "CostModel",
    "EstimationError",
    "FMTBuilder",
    "FaultMaintenanceTree",
    "FaultTree",
    "InhibitGate",
    "InspectionModule",
    "Instrumentation",
    "MaintenanceAction",
    "MaintenanceStrategy",
    "MetricsRegistry",
    "ModelError",
    "MonteCarlo",
    "MonteCarloResult",
    "OrGate",
    "PandGate",
    "ParseError",
    "RareEventConfig",
    "RareEventResult",
    "RateDependency",
    "RepairModule",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "StudyRequest",
    "StudyRunner",
    "StudyService",
    "TrajectoryAccumulator",
    "TrajectoryBatch",
    "UnsupportedModelError",
    "ValidationError",
    "VotingGate",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "analysis",
    "clean",
    "core",
    "ctmc",
    "data",
    "decode_wire",
    "dsl",
    "eijoint",
    "encode_wire",
    "get_runner",
    "maintenance",
    "observability",
    "rareevent",
    "repair",
    "replace",
    "serve_app",
    "service",
    "simulation",
    "stats",
    "studies",
    "units",
    "use_runner",
    "__version__",
]
