"""A5 — cross-validation on *deterministic* inspection timing.

A3 validates the simulator against the CTMC compiler, but only on the
exponential-timing approximation.  The EI-joint's real schedule is
periodic, and periodic timing follows a different code path in the
executor (fixed ticks rather than resampled exponentials).  This
experiment validates that path against the exact single-component
periodic-inspection model (piecewise matrix exponentials with a Van
Loan flux integral; see :mod:`repro.analysis.periodic`), including an
imperfect-detection variant.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.periodic import PeriodicInspectionModel
from repro.core.builder import FMTBuilder
from repro.core.events import BasicEvent
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.studies import StudyRequest, get_runner

__all__ = ["run"]

_HORIZON = 8.0

#: Confidence of the comparison intervals (several simultaneous checks).
_CONFIDENCE = 0.99


def _setup(detection_probability: float):
    event = BasicEvent.erlang("w", phases=4, mean=4.0, threshold=2)
    module = InspectionModule(
        "i",
        period=0.75,
        targets=["w"],
        action=clean(),
        detection_probability=detection_probability,
    )
    builder = FMTBuilder("periodic_single")
    builder.add_event(event)
    builder.or_gate("top", ["w"])
    return event, module, builder.build("top")


@register("periodic-crossval")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare exact periodic analysis and simulation on both KPIs."""
    cfg = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        experiment_id="A5",
        title="Simulator vs exact analysis under periodic inspections",
        headers=["KPI", "exact", "simulated", "within CI"],
    )

    for label, probability in (("", 1.0), (" (detect 60%)", 0.6)):
        event, module, tree = _setup(probability)
        absorbing = MaintenanceStrategy(
            "absorbing", inspections=(module,), on_system_failure="none"
        )
        exact_model = PeriodicInspectionModel(event, module)
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=absorbing,
                horizon=_HORIZON,
                seed=cfg.seed,
                n_runs=2 * cfg.n_runs,
                confidence=_CONFIDENCE,
            )
        )
        exact = exact_model.unreliability(_HORIZON)
        result.add_row(
            f"unreliability({_HORIZON:g}y){label}",
            f"{exact:.4f}",
            format_ci(sim.unreliability),
            "yes" if sim.unreliability.contains(exact) else "NO",
        )

    event, module, tree = _setup(1.0)
    renewing = MaintenanceStrategy(
        "renewing",
        inspections=(module,),
        on_system_failure="replace",
        system_repair_time=0.0,
    )
    exact_enf = PeriodicInspectionModel(
        event, module, renew_on_failure=True
    ).expected_failures(_HORIZON)
    sim_enf = get_runner().result(
        StudyRequest(
            tree=tree,
            strategy=renewing,
            horizon=_HORIZON,
            seed=cfg.seed + 13,
            n_runs=4 * cfg.n_runs,
            confidence=_CONFIDENCE,
        )
    )
    interval = sim_enf.summary.expected_failures
    result.add_row(
        f"E[failures in {_HORIZON:g}y]",
        f"{exact_enf:.4f}",
        format_ci(interval),
        "yes" if interval.contains(exact_enf) else "NO",
    )
    result.notes.append(
        "exact values from piecewise matrix exponentials between "
        "deterministic inspection epochs (Van Loan flux integral); this "
        "validates the executor's periodic-timing path, complementary "
        "to A3's exponential-timing CTMC check"
    )
    return result
