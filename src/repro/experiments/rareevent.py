"""A6 — rare-event estimation: importance splitting vs crude Monte Carlo.

At the tightest inspection frequency of the fig6 grid (12 rounds/yr)
the EI-joint's one-year unreliability drops to the ``1e-4`` regime and
below — exactly where crude Monte Carlo stops being practical (one
observed failure per ~2500 simulated railway-years).  This experiment
exercises the :mod:`repro.rareevent` subsystem at two rarity regimes:

* **moderate rarity** (default parameters, ``p ~ 4e-4``): crude MC is
  still feasible, so fixed-effort splitting, RESTART, and crude MC are
  run side by side and must agree (overlapping confidence intervals);
* **strong rarity** (``p ~ 1e-6``): a documented mean-preserving
  granularity substitution (see notes and EXPERIMENTS.md) makes the
  dominant failure path a multi-phase race that inspections cannot
  interrupt; fixed-effort splitting resolves it with orders of
  magnitude fewer trajectory segments than the crude-MC sample size
  its confidence interval is equivalent to.

The "crude-equivalent" column is the number of crude trajectories that
would produce the same relative CI half-width
(:func:`repro.rareevent.estimator.crude_equivalent_runs`); "speedup" is
that number divided by the trajectory segments the splitting run
actually simulated.
"""

from __future__ import annotations

from typing import Optional

from scipy import stats as sps

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.rareevent import RareEventConfig, crude_equivalent_runs
from repro.studies import StudyRequest, get_runner

__all__ = [
    "run",
    "refined_parameters",
    "RARE_THRESHOLDS",
    "DAMPED_WEIGHTS",
    "INSPECTIONS_PER_YEAR",
    "HORIZON",
]

#: The tightest inspection frequency of the fig6 grid.
INSPECTIONS_PER_YEAR = 12.0

#: Mission time for both comparisons, years.
HORIZON = 1.0

#: Importance thresholds for the strong-rarity scenario: the phase
#: values of the dominant (no-warning, 3-phase) endpost defect.
RARE_THRESHOLDS = (1.0 / 3.0, 2.0 / 3.0)

#: Importance weights for the strong-rarity scenario: inspectable modes
#: are damped so intermediate degradation that inspections will almost
#: surely catch does not pollute the splitting levels; their outright
#: failures still map to importance 1 regardless of weight.
DAMPED_WEIGHTS = {
    "pollution_conductive": 0.3,
    "ferrous_dust": 0.3,
    "metal_overflow": 0.3,
    "fishplate_crack": 0.3,
    "glue_failure": 0.3,
    "bolt_1": 0.3,
    "bolt_2": 0.3,
    "bolt_3": 0.3,
    "bolt_4": 0.3,
}


def refined_parameters():
    """Mean-preserving Erlang granularity refinement of the EI-joint.

    Every substituted mode keeps its mean lifetime and its detection
    threshold as a fraction of the phase count; only the number of
    Erlang stages grows, which *reduces* each mode's lifetime variance
    and thereby pushes the maintained one-year unreliability into the
    genuine rare-event regime (``~1e-6``).  The dominant remaining
    failure path is the no-warning endpost defect (3 phases, mean
    150 y) — a pure phase race that no inspection can interrupt, which
    is what makes it hard for crude MC and ideal for splitting.
    """
    return (
        default_parameters()
        .with_mode("rail_end_break", phases=4)
        .with_mode("endpost_defect", phases=3)
        .with_mode("pollution_conductive", phases=6, threshold=4)
        .with_mode("ferrous_dust", phases=8, threshold=4)
        .with_mode("metal_overflow", phases=10, threshold=6)
        .with_mode("fishplate_crack", phases=6, threshold=6)
    )


def _speedup_cells(result) -> tuple:
    """(crude-equivalent, speedup) cells for a splitting result row."""
    equivalent = crude_equivalent_runs(result.unreliability)
    if equivalent is None:
        return "n/a", "n/a"
    return f"{equivalent:,}", f"{equivalent / result.n_trajectories:.1f}x"


@register("rareevent")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare splitting against crude MC at two rarity regimes."""
    cfg = config if config is not None else ExperimentConfig()
    scale = cfg.n_runs  # replication knob; default 2000

    result = ExperimentResult(
        experiment_id="A6",
        title="Importance splitting vs crude Monte Carlo "
        f"({INSPECTIONS_PER_YEAR:g} inspections/yr, {HORIZON:g} y mission)",
        headers=[
            "scenario",
            "method",
            "unreliability (95% CI)",
            "segments",
            "crude-equivalent",
            "speedup",
        ],
    )

    # ------------------------------------------------------------------
    # Moderate rarity: all three estimators on the unmodified model.
    # ------------------------------------------------------------------
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    strategy = inspection_policy(INSPECTIONS_PER_YEAR, parameters=params)

    runner = get_runner()
    crude_n = 25 * scale
    crude = runner.result(
        StudyRequest(
            tree=tree,
            strategy=strategy,
            horizon=HORIZON,
            seed=cfg.seed,
            n_runs=crude_n,
            confidence=cfg.confidence,
        )
    )
    result.add_row(
        "moderate", "crude MC", format_ci(crude.unreliability, 3),
        f"{crude_n:,}", f"{crude_n:,}", "1.0x",
    )

    fixed = runner.rare_event(
        StudyRequest(
            tree=tree,
            strategy=strategy,
            horizon=HORIZON,
            seed=cfg.seed + 1,
            confidence=cfg.confidence,
        ),
        RareEventConfig(
            method="fixed_effort",
            thresholds=(0.5, 2.0 / 3.0),
            effort=max(50, scale // 2),
            n_replications=4,
        ),
    )
    result.add_row(
        "moderate", "fixed effort", format_ci(fixed.unreliability, 3),
        f"{fixed.n_trajectories:,}", *_speedup_cells(fixed),
    )

    restart = runner.rare_event(
        StudyRequest(
            tree=tree,
            strategy=strategy,
            horizon=HORIZON,
            seed=cfg.seed + 2,
            confidence=cfg.confidence,
        ),
        RareEventConfig(
            method="restart",
            thresholds=(1.0 / 3.0, 0.5, 2.0 / 3.0),
            splits=6,
            n_roots=max(200, 2 * scale),
        ),
    )
    result.add_row(
        "moderate", "RESTART", format_ci(restart.unreliability, 3),
        f"{restart.n_trajectories:,}", *_speedup_cells(restart),
    )

    agree = all(
        _overlaps(crude.unreliability, other.unreliability)
        for other in (fixed, restart)
    )
    result.notes.append(
        "moderate-rarity agreement (CI overlap with crude MC): "
        + ("yes" if agree else "NO")
    )

    # ------------------------------------------------------------------
    # Strong rarity: splitting where crude MC has left the building.
    # ------------------------------------------------------------------
    rare_params = refined_parameters()
    rare_tree = build_ei_joint_fmt(rare_params)
    rare_strategy = inspection_policy(INSPECTIONS_PER_YEAR, parameters=rare_params)

    rare = runner.rare_event(
        StudyRequest(
            tree=rare_tree,
            strategy=rare_strategy,
            horizon=HORIZON,
            seed=cfg.seed + 3,
            confidence=cfg.confidence,
        ),
        RareEventConfig(
            method="fixed_effort",
            thresholds=RARE_THRESHOLDS,
            importance_weights=DAMPED_WEIGHTS,
            effort=max(100, (3 * scale) // 4),
            n_replications=5,
        ),
    )
    result.add_row(
        "rare (refined)", "fixed effort", format_ci(rare.unreliability, 3),
        f"{rare.n_trajectories:,}", *_speedup_cells(rare),
    )

    # Semi-analytic anchor: the dominant mode alone is an Erlang race
    # that inspections cannot see, so its exact one-year failure
    # probability lower-bounds the system unreliability.
    anchor = float(sps.gamma.cdf(HORIZON, a=3, scale=150.0 / 3.0))
    result.notes.append(
        f"semi-analytic anchor: P(endpost Erlang-3, mean 150 y, fails in "
        f"{HORIZON:g} y) = {anchor:.3g} <= system unreliability"
    )
    result.notes.append(
        "strong-rarity substitution (mean-preserving Erlang refinement): "
        "rail_end_break 1->4 phases, endpost_defect 2->3, "
        "pollution_conductive 3->6 (threshold 2->4), ferrous_dust 4->8 "
        "(threshold 2->4), metal_overflow 5->10 (threshold 3->6), "
        "fishplate_crack 3->6 (threshold 3->6); see EXPERIMENTS.md"
    )
    result.notes.append(
        "splitting: importance derived from the tree structure "
        "(Budde et al., arXiv:1910.11672), inspectable modes damped to 0.3"
    )
    return result


def _overlaps(a, b) -> bool:
    return a.lower <= b.upper and b.lower <= a.upper
