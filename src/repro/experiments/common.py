"""Shared plumbing of the experiment harness.

Experiments return :class:`ExperimentResult` — a titled table of rows
plus free-form notes — which renders to aligned monospace text.  The
benchmarks and the CLI only differ in the
:class:`ExperimentConfig` they pass (replication counts, horizon).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.errors import ValidationError
from repro.observability import instrumentation as _obs
from repro.observability.logging_setup import get_logger, kv
from repro.stats.confidence import ConfidenceInterval

__all__ = ["ExperimentConfig", "ExperimentResult", "format_ci", "timed_run"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``quick()`` returns a configuration scaled down for smoke tests and
    benchmark runs; headline numbers in EXPERIMENTS.md use the default.
    """

    n_runs: int = 2000
    horizon: float = 50.0
    seed: int = 2016
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.horizon <= 0.0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")

    def quick(self) -> "ExperimentConfig":
        """A cheap variant for smoke tests (same seed, never more runs).

        Scales the replication count down 20x with a floor of 100, but
        never *above* the configured count: a config that already asks
        for fewer than 100 runs stays put (``max(100, ...)`` alone
        would silently make "quick" slower than the real run).
        """
        return replace(
            self, n_runs=min(self.n_runs, max(100, self.n_runs // 20))
        )


@dataclass
class ExperimentResult:
    """A rendered experiment: table + notes.

    ``rows`` hold already-formatted strings so rendering is trivial and
    the benchmarks can assert on exact cell contents.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append a row; cells are str()-ed."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValidationError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, header: str) -> List[str]:
        """All cells of one column (for assertions in tests/benches)."""
        try:
            index = self.headers.index(header)
        except ValueError as exc:
            raise ValidationError(f"no column {header!r}") from exc
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(self.headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def timed_run(
    runner: Callable[[ExperimentConfig], ExperimentResult],
    config: ExperimentConfig,
    experiment_id: Optional[str] = None,
    instrumentation: Optional["_obs.Instrumentation"] = None,
) -> ExperimentResult:
    """Run one experiment with wall-clock timing.

    The elapsed time always goes to the log (INFO); when an
    instrumentation is active — passed explicitly or ambient via
    :func:`repro.observability.use` — it is also recorded on the
    ``experiment.<id>.seconds`` timer and appended to the result's
    notes, which is how ``--profile`` surfaces per-experiment timings.
    Output is otherwise identical to calling ``runner(config)``.
    """
    start = time.perf_counter()
    result = runner(config)
    elapsed = time.perf_counter() - start
    key = experiment_id if experiment_id is not None else result.experiment_id
    logger.info(kv("experiment done", experiment=key, seconds=elapsed))
    instr = instrumentation if instrumentation is not None else _obs.current()
    if instr is not None:
        instr.observe(f"experiment.{key}.seconds", elapsed)
        result.notes.append(f"wall time: {elapsed:.3f} s")
    return result


def format_ci(interval: ConfidenceInterval, digits: int = 4) -> str:
    """Compact ``estimate ±half-width`` rendering of an interval.

    Degenerate intervals (a single replication yields infinite t-bounds)
    render their half-width as ``n/a`` rather than ``±inf``.
    """
    half = interval.half_width
    half_text = (
        f"{half:.{max(2, digits - 1)}g}" if math.isfinite(half) else "n/a"
    )
    return f"{interval.estimate:.{digits}g} ±{half_text}"
