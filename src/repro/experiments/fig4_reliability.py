"""F4 — system reliability over time per maintenance strategy.

Regenerates the reliability-curve figure: the probability that the
joint has not yet caused a service-affecting failure, as a function of
time, for representative strategies.  More frequent inspection shifts
the whole curve up; the unmaintained joint decays fastest.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint import strategies as s
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "CURVE_STRATEGIES"]

#: Strategy constructors plotted in the figure, in legend order.
CURVE_STRATEGIES = (
    ("unmaintained", s.unmaintained),
    ("corrective-only", s.no_maintenance),
    ("inspect-1x", lambda: s.inspection_policy(1)),
    ("current-policy(4x)", s.current_policy),
    ("inspect-12x", lambda: s.inspection_policy(12)),
)


@register("fig4")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Estimate survival curves on a common time grid."""
    cfg = config if config is not None else ExperimentConfig()
    runner = get_runner()
    tree = build_ei_joint_fmt()
    grid = [float(t) for t in np.linspace(0.0, cfg.horizon, 11)]

    curves: List[List[float]] = []
    for _, make_strategy in CURVE_STRATEGIES:
        request = StudyRequest(
            tree=tree,
            strategy=make_strategy(),
            horizon=cfg.horizon,
            seed=cfg.seed,
            n_runs=cfg.n_runs,
            confidence=cfg.confidence,
        )
        _, intervals = runner.reliability_curve(request, grid)
        curves.append([interval.estimate for interval in intervals])

    result = ExperimentResult(
        experiment_id="F4",
        title="System reliability R(t) per maintenance strategy",
        headers=["t [y]"] + [name for name, _ in CURVE_STRATEGIES],
    )
    for i, t in enumerate(grid):
        result.add_row(
            f"{t:g}", *(f"{curve[i]:.3f}" for curve in curves)
        )
    result.notes.append(
        f"{cfg.n_runs} trajectories per strategy, horizon {cfg.horizon:g}y; "
        "R(t) = P(no system failure up to t)"
    )
    return result
