"""F5 — expected number of failures vs inspection frequency.

Regenerates the figure behind the paper's reliability claim: the
expected number of system failures per joint-year drops steeply from
corrective-only to yearly inspection and then saturates — the residual
floor is set by the failure modes that give no advance warning.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy, no_maintenance
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "FREQUENCIES"]

#: Inspection frequencies (rounds per year) swept in the figure.
FREQUENCIES: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)


@register("fig5")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the inspection frequency and estimate ENF per year."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)

    result = ExperimentResult(
        experiment_id="F5",
        title="Expected number of system failures per joint-year vs "
        "inspection frequency",
        headers=["inspections/yr", "ENF per year", "unreliability(horizon)"],
    )
    for frequency in FREQUENCIES:
        strategy = (
            no_maintenance(parameters)
            if frequency == 0
            else inspection_policy(frequency, parameters=parameters)
        )
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=cfg.horizon,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        result.add_row(
            f"{frequency:g}",
            format_ci(sim.failures_per_year),
            f"{sim.unreliability.estimate:.3f}",
        )
    floor = sum(
        1.0 / mode.mean_lifetime
        for mode in parameters.modes
        if not mode.inspectable
    )
    result.notes.append(
        f"non-inspectable failure modes set an ENF floor of about "
        f"{floor:.4f}/yr (no inspection frequency can go below it)"
    )
    return result
