"""A2 — ablation: degradation phase count of an inspectable mode.

Phased (Erlang) degradation is what makes periodic inspection useful:
the threshold phase gives a window between "detectably degraded" and
"failed".  This ablation re-models the dominant inspectable mode
(ferrous dust) with 1, 2, 4 and 8 phases of identical *mean* lifetime
and a mid-life detection threshold, and measures how much of the
failure rate inspections can still remove.  With a single (memoryless)
phase there is no advance warning at all and the mode's failures go
unprevented.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy, no_maintenance
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "PHASE_COUNTS"]

#: Phase counts swept for the ferrous_dust mode (same mean lifetime).
PHASE_COUNTS: Sequence[int] = (1, 2, 4, 8)

_MODE = "ferrous_dust"


@register("ablation-phases")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the phase count of the ferrous-dust degradation model."""
    cfg = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        experiment_id="A2",
        title=f"Ablation: phase count of {_MODE} (same mean lifetime)",
        headers=[
            "phases",
            "threshold",
            "ENF/yr (corrective-only)",
            "ENF/yr (current policy)",
            "prevented",
        ],
    )
    for phases in PHASE_COUNTS:
        if phases == 1:
            # A one-phase mode is memoryless: there is no pre-failure
            # degradation for an inspection to see.
            threshold = None
        else:
            threshold = max(1, phases // 2)
        parameters = default_parameters().with_mode(
            _MODE, phases=phases, threshold=threshold
        )
        tree = build_ei_joint_fmt(parameters)
        runner = get_runner()
        corrective = runner.result(
            StudyRequest(
                tree=tree,
                strategy=no_maintenance(parameters),
                horizon=cfg.horizon,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        current = runner.result(
            StudyRequest(
                tree=tree,
                strategy=inspection_policy(4, parameters=parameters),
                horizon=cfg.horizon,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        without = corrective.failures_per_year.estimate
        with_insp = current.failures_per_year.estimate
        prevented = (without - with_insp) / without * 100.0 if without > 0 else 0.0
        result.add_row(
            phases,
            threshold if threshold is not None else "-",
            format_ci(corrective.failures_per_year),
            format_ci(current.failures_per_year),
            f"{prevented:.0f}%",
        )
    result.notes.append(
        "more phases = more deterministic degradation = wider detection "
        "window; with 1 phase the mode cannot be caught by inspection"
    )
    return result
