"""T3 — validation: predicted vs observed expected number of failures.

This reproduces the paper's calibration loop end-to-end on the
synthetic data substrate (the real incident databases are proprietary,
see DESIGN.md):

1. A fleet of joints is simulated under the *ground-truth* model and
   the current maintenance policy, producing an incident-registration
   database with the industry schema.
2. Parameters are re-estimated **without looking at the ground truth**
   (see :mod:`repro.eijoint.calibration`): rare non-inspectable modes
   from the database's failure records (censored Erlang MLE),
   inspectable degradation modes from simulated expert interviews.
3. The re-fitted model predicts the system-level expected number of
   failures per joint-year, which is compared against the rate observed
   in the database — the paper's headline validation ("the model
   faithfully predicts the expected number of failures at system
   level").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.estimation import estimate_failure_rate
from repro.data.incidents import generate_incident_database
from repro.eijoint.calibration import refit_parameters
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run"]

#: Observation window of the synthetic incident database, years.
_WINDOW = 10.0


@register("table3")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the calibration loop and tabulate fit + validation."""
    cfg = config if config is not None else ExperimentConfig()
    truth = default_parameters()
    tree_truth = build_ei_joint_fmt(truth)
    strategy = current_policy(truth)

    n_joints = max(200, cfg.n_runs)
    database = generate_incident_database(
        tree_truth, strategy, n_joints=n_joints, window=_WINDOW, seed=cfg.seed
    )
    observed = estimate_failure_rate(
        database, kind="system_failure", confidence=cfg.confidence
    )

    result = ExperimentResult(
        experiment_id="T3",
        title="Validation: parameter re-estimation and predicted vs "
        "observed failure rate",
        headers=[
            "failure mode",
            "source",
            "true mean [y]",
            "fitted mean [y]",
            "true phases",
            "fitted phases",
        ],
    )

    rng = np.random.default_rng(cfg.seed + 1)
    fitted, records = refit_parameters(database, truth, rng)
    for record in records:
        result.add_row(
            record.name,
            record.source,
            f"{record.true_mean:g}",
            f"{record.fitted_mean:.3g}",
            record.true_phases,
            record.fitted_phases,
        )

    runner = get_runner()
    tree_fitted = build_ei_joint_fmt(fitted)
    predicted = runner.result(
        StudyRequest(
            tree=tree_fitted,
            strategy=current_policy(fitted),
            horizon=_WINDOW,
            seed=cfg.seed + 2,
            n_runs=2 * n_joints,
            confidence=cfg.confidence,
        )
    ).failures_per_year
    truth_enf = runner.result(
        StudyRequest(
            tree=tree_truth,
            strategy=strategy,
            horizon=_WINDOW,
            seed=cfg.seed + 3,
            n_runs=2 * n_joints,
            confidence=cfg.confidence,
        )
    ).failures_per_year

    result.notes.append(
        f"observed system failures: {database.count('system_failure')} over "
        f"{database.joint_years:g} joint-years -> "
        f"rate {format_ci(observed)} per joint-year"
    )
    result.notes.append(
        f"fitted-model prediction: {format_ci(predicted)} per joint-year"
    )
    result.notes.append(
        f"ground-truth-model prediction: {format_ci(truth_enf)} per joint-year"
    )
    overlap = predicted.lower <= observed.upper and observed.lower <= predicted.upper
    result.notes.append(
        "validation: prediction and observation "
        + ("AGREE (confidence intervals overlap)" if overlap else "DISAGREE")
    )
    return result
