"""A4 — ablation: imperfect inspections (detection probability).

Real inspections miss degradation signs: dust may be rinsed off by
rain on the day of the visit, a hairline crack overlooked.  This
ablation sweeps the per-visit detection probability at the current
inspection frequency and shows how the ENF and the cost optimum react —
quantifying how robust the paper's conclusion is to inspection quality.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_cost_model, default_parameters
from repro.eijoint.strategies import inspection_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "DETECTION_PROBABILITIES"]

#: Per-visit detection probabilities swept (1.0 = perfect inspections).
DETECTION_PROBABILITIES: Sequence[float] = (1.0, 0.9, 0.75, 0.5)


@register("ablation-detection")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the detection probability at the current frequency."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)
    cost_model = default_cost_model()

    result = ExperimentResult(
        experiment_id="A4",
        title="Ablation: per-visit detection probability "
        "(quarterly inspections)",
        headers=[
            "detection prob",
            "ENF per year",
            "cost/yr TOTAL",
            "preventive actions/yr",
        ],
    )
    for probability in DETECTION_PROBABILITIES:
        strategy = inspection_policy(
            4, parameters=parameters, detection_probability=probability
        )
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=cfg.horizon,
                cost_model=cost_model,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        result.add_row(
            f"{probability:g}",
            format_ci(sim.failures_per_year),
            f"{sim.summary.cost_breakdown_per_year.total:.0f}",
            f"{sim.summary.preventive_actions_per_year:.2f}",
        )
    result.notes.append(
        "missing a sign only delays detection to a later visit, so "
        "moderately imperfect inspections degrade the KPIs gracefully — "
        "the cost-optimality conclusion is robust to inspection quality"
    )
    return result
