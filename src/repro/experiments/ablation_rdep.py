"""A1 — ablation: the rate-dependency (RDEP) acceleration factor.

DESIGN.md calls out the bolt-to-glue rate dependency as a modelling
choice to ablate: without it (factor 1), broken bolts and glue
degradation are independent and glue failures are under-predicted.
The sweep varies the acceleration factor under the corrective-only
strategy (where broken bolts survive longest) and reports both the
glue-failure occurrence rate — the direct target of the dependency —
and the system-level ENF.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import no_maintenance
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "FACTORS"]

#: RDEP acceleration factors swept (1 = dependency disabled).
FACTORS: Sequence[float] = (1.0, 3.0, 6.0, 10.0)

_GLUE = "glue_failure"


def _count_glue_failures(trajectories) -> int:
    return sum(
        1
        for trajectory in trajectories
        for event in trajectory.events
        if event.kind == "failure" and event.component == _GLUE
    )


@register("ablation-rdep")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the bolt->glue acceleration factor."""
    cfg = config if config is not None else ExperimentConfig()
    result = ExperimentResult(
        experiment_id="A1",
        title="Ablation: bolt->glue RDEP acceleration factor "
        "(corrective-only strategy)",
        headers=[
            "factor",
            "glue failures /1000 joint-yr",
            "system ENF/yr",
        ],
    )
    for factor in FACTORS:
        parameters = dataclasses.replace(
            default_parameters(), bolt_glue_acceleration=factor
        )
        tree = build_ei_joint_fmt(parameters)
        runner = get_runner()
        request = StudyRequest(
            tree=tree,
            strategy=no_maintenance(parameters),
            horizon=cfg.horizon,
            seed=cfg.seed,
            n_runs=cfg.n_runs,
            confidence=cfg.confidence,
            record_events=True,
        )
        glue_failures = runner.statistic(
            request, "glue_failure_count", _count_glue_failures
        )
        joint_years = cfg.n_runs * cfg.horizon
        summary = runner.summary(request)
        result.add_row(
            f"{factor:g}",
            f"{1000.0 * glue_failures / joint_years:.2f}",
            format_ci(summary.failures_per_year),
        )
    result.notes.append(
        "factor 1 disables the dependency; the default model uses 3. "
        "The dependency multiplies the glue-failure rate several-fold, "
        "but glue is a slow mode, so the system-level ENF moves little — "
        "exactly why the dependency is easy to miss without the FMT."
    )
    return result
