"""F6 — expected annual cost vs inspection frequency (the U-curve).

Regenerates the paper's headline cost figure: total expected cost per
joint-year as a function of inspection frequency, split into planned
(inspections + preventive actions) and unplanned (corrective work,
failures, downtime) components.  The total is U-shaped: the current
quarterly policy sits at (or immediately next to) the optimum, and
additional inspections increase reliability but cost more than the
avoided failures — the paper's central conclusion.
"""

from __future__ import annotations

from typing import Optional

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_cost_model, default_parameters
from repro.eijoint.strategies import (
    CURRENT_INSPECTIONS_PER_YEAR,
    inspection_policy,
    no_maintenance,
)
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register
from repro.experiments.fig5_enf import FREQUENCIES
from repro.studies import StudyRequest, get_runner

__all__ = ["run"]


@register("fig6")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep inspection frequency and tabulate the cost breakdown."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)
    cost_model = default_cost_model()

    result = ExperimentResult(
        experiment_id="F6",
        title="Expected annual cost per joint vs inspection frequency (EUR)",
        headers=[
            "inspections/yr",
            "inspections",
            "preventive",
            "corrective",
            "failures",
            "downtime",
            "TOTAL",
        ],
    )
    totals = {}
    for frequency in FREQUENCIES:
        strategy = (
            no_maintenance(parameters)
            if frequency == 0
            else inspection_policy(frequency, parameters=parameters)
        )
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=cfg.horizon,
                cost_model=cost_model,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        breakdown = sim.summary.cost_breakdown_per_year
        totals[frequency] = breakdown.total
        result.add_row(
            f"{frequency:g}",
            f"{breakdown.inspections:.0f}",
            f"{breakdown.preventive:.0f}",
            f"{breakdown.corrective:.0f}",
            f"{breakdown.failures:.0f}",
            f"{breakdown.downtime:.0f}",
            f"{breakdown.total:.0f}",
        )
    optimum = min(totals, key=totals.get)
    current = CURRENT_INSPECTIONS_PER_YEAR
    gap = (
        (totals[current] - totals[optimum]) / totals[optimum] * 100.0
        if totals[optimum] > 0
        else 0.0
    )
    result.notes.append(
        f"cost-optimal frequency on this grid: {optimum:g}/yr; current "
        f"policy ({current:g}/yr) is within {gap:.1f}% of the optimum"
    )
    result.notes.append(
        "paper's conclusion reproduced: increasing inspections beyond the "
        "current policy raises total cost — added maintenance outweighs "
        "avoided failures"
    )
    return result
