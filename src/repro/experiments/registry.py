"""Registry of the paper's experiments.

Experiment modules self-register their ``run`` function at import time::

    from repro.experiments.registry import register

    @register("fig4")
    def run(config=None) -> ExperimentResult:
        ...

and consumers — the CLI, the test suite, benchmark harnesses — resolve
experiments by id through :func:`get_experiment` / :func:`iter_experiments`
instead of hard-coding module lists.  Importing :mod:`repro.experiments`
imports every experiment module in the paper's evaluation order, which
is therefore also the registry's iteration order.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.experiments.common import ExperimentConfig, ExperimentResult

__all__ = ["register", "get_experiment", "iter_experiments", "experiment_ids"]

#: Experiment id -> run function, in registration (paper) order.
_REGISTRY: Dict[str, Callable[..., "ExperimentResult"]] = {}


def register(
    name: str,
) -> Callable[[Callable[..., "ExperimentResult"]], Callable[..., "ExperimentResult"]]:
    """Class a ``run(config) -> ExperimentResult`` function under ``name``.

    Returns the function unchanged.  Registering the same id twice is a
    programming error (two modules claiming one table/figure) and
    raises :class:`~repro.errors.ValidationError` immediately.
    """
    if not name:
        raise ValidationError("experiment id must be a non-empty string")

    def decorator(
        func: Callable[..., "ExperimentResult"],
    ) -> Callable[..., "ExperimentResult"]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not func:
            raise ValidationError(
                f"experiment {name!r} is already registered "
                f"(by {existing.__module__})"
            )
        _REGISTRY[name] = func
        return func

    return decorator


def get_experiment(name: str) -> Callable[..., "ExperimentResult"]:
    """The run function registered under ``name``.

    Raises :class:`KeyError` with the known ids when the experiment
    does not exist — the CLI turns this into its usage error.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "(none registered)"
        raise KeyError(
            f"unknown experiment {name!r}; known experiments: {known}"
        ) from None


def iter_experiments() -> Iterator[Tuple[str, Callable[..., "ExperimentResult"]]]:
    """Yield ``(id, run)`` pairs in registration (paper) order."""
    return iter(tuple(_REGISTRY.items()))


def experiment_ids() -> Tuple[str, ...]:
    """All registered experiment ids, in registration (paper) order."""
    return tuple(_REGISTRY)
