"""T4 — failure-mode importance: which modes drive joint failures.

Combines two views the paper uses to justify where inspection effort
goes:

* **static importance measures** (Birnbaum, Fussell-Vesely) of each
  failure mode on the independent (RDEP-stripped) tree at mid-life;
* **simulated failure shares** under (a) no maintenance and (b) the
  current policy — showing how condition-based maintenance flips the
  ranking: the fast-degrading but inspectable modes dominate the
  unmaintained joint, while the no-warning modes dominate the residual
  failures of the maintained joint.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.analysis.importance import importance_table
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy, no_maintenance
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run"]

_IMPORTANCE_TIME = 5.0


def _count_failure_shares(trajectories) -> Counter:
    """Component failures that coincide with a system failure."""
    shares: Counter = Counter()
    for trajectory in trajectories:
        system_times = set(trajectory.failure_times)
        for event in trajectory.events:
            if event.kind == "failure" and event.time in system_times:
                shares[event.component] += 1
    return shares


def _failure_shares(tree, strategy, cfg) -> Counter:
    request = StudyRequest(
        tree=tree,
        strategy=strategy,
        horizon=cfg.horizon,
        seed=cfg.seed,
        n_runs=max(200, cfg.n_runs // 4),
        confidence=cfg.confidence,
        record_events=True,
    )
    return get_runner().statistic(
        request, "failure_shares", _count_failure_shares
    )


@register("table4")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Tabulate importance measures and simulated failure shares."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)

    static = importance_table(
        tree.without_dependencies(), _IMPORTANCE_TIME
    )
    unmaintained_shares = _failure_shares(tree, no_maintenance(parameters), cfg)
    maintained_shares = _failure_shares(tree, current_policy(parameters), cfg)
    total_unmaintained = sum(unmaintained_shares.values()) or 1
    total_maintained = sum(maintained_shares.values()) or 1

    result = ExperimentResult(
        experiment_id="T4",
        title="Failure-mode importance and simulated failure shares",
        headers=[
            "failure mode",
            f"Birnbaum({_IMPORTANCE_TIME:g}y)",
            f"FV({_IMPORTANCE_TIME:g}y)",
            "share unmaintained",
            "share current policy",
        ],
    )
    ranked = sorted(
        parameters.modes,
        key=lambda mode: static[mode.name].fussell_vesely,
        reverse=True,
    )
    for mode in ranked:
        measures = static[mode.name]
        result.add_row(
            mode.name,
            f"{measures.birnbaum:.4f}",
            f"{measures.fussell_vesely:.3f}",
            f"{unmaintained_shares.get(mode.name, 0) / total_unmaintained:.1%}",
            f"{maintained_shares.get(mode.name, 0) / total_maintained:.1%}",
        )
    result.notes.append(
        "static measures computed on the RDEP-stripped tree (independence "
        "required); shares count component failures coinciding with a "
        "system failure"
    )
    result.notes.append(
        "the current policy suppresses the inspectable modes, so the "
        "no-warning modes (endpost defect, rail break) dominate the "
        "residual failures"
    )
    return result
