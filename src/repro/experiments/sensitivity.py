"""S1 — parameter sensitivity (tornado) of the failure-rate prediction.

The paper: "the faithfulness of quantitative analyses heavily depend on
the accuracy of the parameter values in the models."  This experiment
quantifies which parameters matter: each failure mode's mean lifetime
is perturbed ×1.5 both ways and the induced swing of the ENF under the
current policy is measured.  The ranking justifies where data
collection and expert-interview effort should go — the modes that
dominate the maintained joint's residual risk (the no-warning modes)
and the fast inspectable modes.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.sensitivity import kpi_enf, tornado
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register

__all__ = ["run"]

_FACTOR = 1.5


@register("sensitivity")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Tornado of ENF/yr w.r.t. each mode's mean lifetime."""
    cfg = config if config is not None else ExperimentConfig()
    baseline_parameters = default_parameters()

    def model_factory(name: str, multiplier: float):
        mode = baseline_parameters.by_name[name]
        parameters = baseline_parameters.with_mode(
            name, mean_lifetime=mode.mean_lifetime * multiplier
        )
        return build_ei_joint_fmt(parameters)

    entries = tornado(
        model_factory,
        parameters=[mode.name for mode in baseline_parameters.modes],
        strategy=current_policy(baseline_parameters),
        kpi=kpi_enf,
        factor=_FACTOR,
        horizon=cfg.horizon,
        n_runs=cfg.n_runs,
        seed=cfg.seed,
    )

    result = ExperimentResult(
        experiment_id="S1",
        title=f"Sensitivity of ENF/yr to mean lifetimes (x{_FACTOR:g} both "
        "ways), current policy",
        headers=[
            "failure mode",
            "ENF/yr @ /1.5",
            "ENF/yr baseline",
            "ENF/yr @ x1.5",
            "swing",
        ],
    )
    for entry in entries:
        result.add_row(
            entry.parameter,
            f"{entry.low_value:.5f}",
            f"{entry.baseline:.5f}",
            f"{entry.high_value:.5f}",
            f"{entry.swing:.5f}",
        )
    result.notes.append(
        "swing = |ENF(mean/1.5) - ENF(mean*1.5)|; common random numbers "
        "across perturbations"
    )
    result.notes.append(
        "the top entries identify the parameters whose accuracy drives "
        "the model's predictive quality — where the paper's data "
        "collection and interviews had to focus"
    )
    return result
