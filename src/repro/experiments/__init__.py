"""Experiment harness: one module per table/figure of the evaluation.

Every experiment module exposes ``run(config) -> ExperimentResult`` and
registers it in :mod:`repro.experiments.registry` at import time; the
CLI (``python -m repro <experiment>``) and the benchmark suite
(``benchmarks/``) resolve experiments through the registry.  The
mapping from experiment id to the paper's tables/figures is documented
in DESIGN.md and the measured-vs-expected record in EXPERIMENTS.md.

The modules are imported here in the paper's evaluation order, which
fixes the registry's iteration order.
"""

import warnings

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    experiment_ids,
    get_experiment,
    iter_experiments,
    register,
)

# Imported for their registration side effect, in paper order.
from repro.experiments import table1_model  # noqa: F401  (table1)
from repro.experiments import table2_strategies  # noqa: F401  (table2)
from repro.experiments import table3_validation  # noqa: F401  (table3)
from repro.experiments import table4_importance  # noqa: F401  (table4)
from repro.experiments import fig4_reliability  # noqa: F401  (fig4)
from repro.experiments import fig5_enf  # noqa: F401  (fig5)
from repro.experiments import fig6_cost  # noqa: F401  (fig6)
from repro.experiments import fig7_renewal  # noqa: F401  (fig7)
from repro.experiments import fig8_fleet  # noqa: F401  (fig8)
from repro.experiments import optimum  # noqa: F401
from repro.experiments import sensitivity  # noqa: F401
from repro.experiments import uncertainty  # noqa: F401
from repro.experiments import ablation_rdep  # noqa: F401  (ablation-rdep)
from repro.experiments import ablation_phases  # noqa: F401  (ablation-phases)
from repro.experiments import ablation_detection  # noqa: F401  (ablation-detection)
from repro.experiments import ctmc_crossval  # noqa: F401  (ctmc-crossval)
from repro.experiments import periodic_crossval  # noqa: F401  (periodic-crossval)
from repro.experiments import rareevent  # noqa: F401

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "register",
    "get_experiment",
    "iter_experiments",
    "experiment_ids",
    "EXPERIMENTS",
]


def __getattr__(name: str):
    if name == "EXPERIMENTS":
        # Deprecated hard-coded registry dict (pre-registry API); the
        # snapshot below is equivalent but no longer the source of truth.
        warnings.warn(
            "repro.experiments.EXPERIMENTS is deprecated; use "
            "repro.experiments.registry (get_experiment / iter_experiments)",
            DeprecationWarning,
            stacklevel=2,
        )
        return dict(iter_experiments())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
