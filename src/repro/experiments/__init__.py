"""Experiment harness: one module per table/figure of the evaluation.

Every experiment module exposes ``run(config) -> ExperimentResult``;
the CLI (``python -m repro <experiment>``) and the benchmark suite
(``benchmarks/``) are thin wrappers around these functions.  The
mapping from experiment id to the paper's tables/figures is documented
in DESIGN.md and the measured-vs-expected record in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments import (
    ablation_detection,
    ablation_phases,
    ablation_rdep,
    ctmc_crossval,
    fig4_reliability,
    fig5_enf,
    fig6_cost,
    fig7_renewal,
    fig8_fleet,
    optimum,
    periodic_crossval,
    rareevent,
    sensitivity,
    table1_model,
    table2_strategies,
    table3_validation,
    table4_importance,
    uncertainty,
)

#: Registry used by the CLI; ordered as in the paper's evaluation.
EXPERIMENTS = {
    "table1": table1_model.run,
    "table2": table2_strategies.run,
    "table3": table3_validation.run,
    "table4": table4_importance.run,
    "fig4": fig4_reliability.run,
    "fig5": fig5_enf.run,
    "fig6": fig6_cost.run,
    "fig7": fig7_renewal.run,
    "fig8": fig8_fleet.run,
    "optimum": optimum.run,
    "sensitivity": sensitivity.run,
    "uncertainty": uncertainty.run,
    "ablation-rdep": ablation_rdep.run,
    "ablation-phases": ablation_phases.run,
    "ablation-detection": ablation_detection.run,
    "ctmc-crossval": ctmc_crossval.run,
    "periodic-crossval": periodic_crossval.run,
    "rareevent": rareevent.run,
}

__all__ = ["EXPERIMENTS", "ExperimentConfig", "ExperimentResult"]
