"""A3 — cross-validation: Monte Carlo simulator vs exact CTMC numerics.

On the Markovian fragment (exponentially timed inspections, zero
planning delay) an FMT is a CTMC, so unreliability and the expected
number of failures have exact solutions.  This experiment builds a
reduced EI-joint submodel — dust degradation, a 2-of-2 bolt gate, and
the bolt->dust rate dependency — and compares the simulator against the
compiled chain on both KPIs.  Agreement within the Monte Carlo
confidence interval validates the simulator's core semantics (phase
jumps, RDEP rescaling, module execution, failure response).
"""

from __future__ import annotations

from typing import Optional

from repro.core.builder import FMTBuilder
from repro.ctmc.compiler import compile_fmt
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "build_submodel"]

_HORIZON = 10.0

#: Confidence level of the comparison intervals.  The experiment checks
#: four KPIs simultaneously against their exact values; at 95% the
#: joint pass probability would be only ~0.81 even for a perfect
#: simulator, so the cross-validation uses 99% intervals.
_CONFIDENCE = 0.99


def build_submodel():
    """A reduced EI-joint: dust OR 2-of-2 bolts, with RDEP and inspection."""
    builder = FMTBuilder("ei_joint_submodel")
    builder.degraded_event("dust", phases=3, mean=6.0, threshold=2)
    builder.basic_event("bolt_a", mean=12.0)
    builder.basic_event("bolt_b", mean=12.0)
    builder.voting_gate("bolts", 2, ["bolt_a", "bolt_b"])
    builder.or_gate("top", ["dust", "bolts"])
    builder.rdep("flex", trigger="bolt_a", targets=["dust"], factor=4.0)
    return builder.build("top")


@register("ctmc-crossval")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Compare CTMC and simulation on unreliability and ENF."""
    cfg = config if config is not None else ExperimentConfig()
    tree = build_submodel()
    inspection = InspectionModule(
        "insp",
        period=1.0,
        targets=["dust"],
        action=clean(),
        timing="exponential",
    )

    result = ExperimentResult(
        experiment_id="A3",
        title="Simulator vs exact CTMC on the Markovian submodel",
        headers=["KPI", "exact (CTMC)", "simulated", "within CI"],
    )

    # Unreliability: absorbing failure.
    absorbing = MaintenanceStrategy(
        "absorbing", inspections=(inspection,), on_system_failure="none"
    )
    compiled = compile_fmt(tree, absorbing, mode="unreliability")
    runner = get_runner()
    sim = runner.result(
        StudyRequest(
            tree=tree,
            strategy=absorbing,
            horizon=_HORIZON,
            seed=cfg.seed,
            n_runs=cfg.n_runs,
            confidence=_CONFIDENCE,
        )
    )
    for t in (2.0, 5.0, _HORIZON):
        exact = compiled.unreliability(t)
        if t == _HORIZON:
            interval = sim.unreliability
        else:
            curve = runner.result(
                StudyRequest(
                    tree=tree,
                    strategy=absorbing,
                    horizon=t,
                    seed=cfg.seed + int(t),
                    n_runs=cfg.n_runs,
                    confidence=_CONFIDENCE,
                )
            )
            interval = curve.unreliability
        result.add_row(
            f"unreliability({t:g}y)",
            f"{exact:.4f}",
            format_ci(interval),
            "yes" if interval.contains(exact) else "NO",
        )

    # Expected failures: instantaneous corrective renewal.
    renewing = MaintenanceStrategy(
        "renewing",
        inspections=(inspection,),
        on_system_failure="replace",
        system_repair_time=0.0,
    )
    compiled_avail = compile_fmt(tree, renewing, mode="availability")
    exact_enf = compiled_avail.expected_failures(_HORIZON)
    # The ENF estimator has the widest variance of the compared KPIs;
    # quadruple the replication count so the comparison is sharp.
    sim_enf = runner.result(
        StudyRequest(
            tree=tree,
            strategy=renewing,
            horizon=_HORIZON,
            seed=cfg.seed + 1013,
            n_runs=4 * cfg.n_runs,
            confidence=_CONFIDENCE,
        )
    )
    interval = sim_enf.summary.expected_failures
    result.add_row(
        f"E[failures in {_HORIZON:g}y]",
        f"{exact_enf:.4f}",
        format_ci(interval),
        "yes" if interval.contains(exact_enf) else "NO",
    )
    result.notes.append(
        f"CTMC state space: {compiled.n_states} states (unreliability), "
        f"{compiled_avail.n_states} states (availability); modules use "
        "exponential timing so both engines analyse identical semantics"
    )
    return result
