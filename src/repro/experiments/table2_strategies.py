"""T2 — the maintenance strategies compared in the evaluation.

Regenerates the strategy table: name, inspection frequency, renewal
period, failure response, and description.  Structural only.
"""

from __future__ import annotations

from typing import Optional

from repro.eijoint import strategies as s
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register

__all__ = ["run", "evaluated_strategies"]


def evaluated_strategies():
    """The named strategies of the evaluation, in table order."""
    return [
        s.unmaintained(),
        s.no_maintenance(),
        s.inspection_policy(1),
        s.inspection_policy(2),
        s.current_policy(),
        s.inspection_policy(8),
        s.inspection_policy(12),
        s.inspection_policy(4, renewal_years=25),
        s.renewal_only(10),
    ]


@register("table2")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Tabulate the evaluated maintenance strategies."""
    result = ExperimentResult(
        experiment_id="T2",
        title="Maintenance strategies under comparison",
        headers=[
            "strategy",
            "inspections/yr",
            "renewal",
            "on failure",
            "description",
        ],
    )
    for strategy in evaluated_strategies():
        renewal = "-"
        if strategy.repairs:
            renewal = ", ".join(f"{m.period:g}y" for m in strategy.repairs)
        result.add_row(
            strategy.name,
            f"{strategy.inspection_rounds_per_year:g}",
            renewal,
            strategy.on_system_failure,
            strategy.description,
        )
    result.notes.append(
        "current-policy = quarterly inspection rounds with condition-based "
        "clean/repair/replace; corrective renewal after failure"
    )
    return result
