"""T1 — the EI-joint failure-mode inventory (paper's model table).

Regenerates the table of basic events: failure mode, group, degradation
phases, mean lifetime, detection threshold, and the maintenance remedy.
Purely structural (no simulation), so it also serves as a quick sanity
check that the model assembles.
"""

from __future__ import annotations

from typing import Optional

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.registry import register

__all__ = ["run"]


@register("table1")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Build the model and tabulate its failure modes."""
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)
    result = ExperimentResult(
        experiment_id="T1",
        title="EI-joint fault maintenance tree: failure modes",
        headers=[
            "failure mode",
            "group",
            "phases",
            "mean life [y]",
            "threshold",
            "remedy",
            "description",
        ],
    )
    for mode in parameters.modes:
        result.add_row(
            mode.name,
            mode.group,
            mode.phases,
            f"{mode.mean_lifetime:g}",
            mode.threshold if mode.threshold is not None else "-",
            mode.action if mode.inspectable else "(corrective)",
            mode.description,
        )
    result.notes.append(
        f"tree: {len(tree.basic_events)} basic events, "
        f"{len(tree.gates)} gates, {len(tree.dependencies)} rate "
        f"dependencies; top = {tree.top.name!r}"
    )
    result.notes.append(
        f"bolt gate: {parameters.bolts_needed_to_fail} of "
        f"{len(parameters.bolt_names)} bolts broken fails the joint; each "
        f"broken bolt accelerates glue degradation x"
        f"{parameters.bolt_glue_acceleration:g} (RDEP)"
    )
    return result
