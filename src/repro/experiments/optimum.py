"""OPT — cost-optimal inspection frequency via golden-section search.

Operationalizes the paper's conclusion ("the current maintenance policy
is close to cost-optimal"): instead of reading the optimum off the F6
grid, a golden-section search over the continuous inspection frequency
finds the minimiser of the expected annual cost, and the result is
compared against the current quarterly policy.
"""

from __future__ import annotations

from typing import Optional

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_cost_model, default_parameters
from repro.eijoint.strategies import (
    CURRENT_INSPECTIONS_PER_YEAR,
    current_policy,
    inspection_policy,
)
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.maintenance.optimizer import optimize_frequency
from repro.studies import StudyRequest, get_runner

__all__ = ["run"]


@register("optimum")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Search the frequency axis and compare with the current policy."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)
    cost_model = default_cost_model()

    best = optimize_frequency(
        tree,
        lambda f: inspection_policy(f, parameters=parameters),
        cost_model,
        lower=0.5,
        upper=12.0,
        horizon=cfg.horizon,
        n_runs=cfg.n_runs,
        seed=cfg.seed,
        tolerance=0.25,
    )
    current = get_runner().result(
        StudyRequest(
            tree=tree,
            strategy=current_policy(parameters),
            horizon=cfg.horizon,
            cost_model=cost_model,
            seed=cfg.seed,
            n_runs=cfg.n_runs,
            confidence=cfg.confidence,
        )
    )

    result = ExperimentResult(
        experiment_id="OPT",
        title="Cost-optimal inspection frequency (golden-section search)",
        headers=["policy", "inspections/yr", "cost/yr [EUR]", "ENF/yr"],
    )
    result.add_row(
        "optimum found",
        f"{best.parameter:.2f}",
        format_ci(best.cost_per_year),
        format_ci(best.failures_per_year),
    )
    result.add_row(
        "current policy",
        f"{CURRENT_INSPECTIONS_PER_YEAR:g}",
        format_ci(current.cost_per_year),
        format_ci(current.failures_per_year),
    )
    gap = (
        (current.cost_per_year.estimate - best.cost_per_year.estimate)
        / best.cost_per_year.estimate
        * 100.0
    )
    result.notes.append(
        f"the current policy is within {gap:.1f}% of the searched optimum "
        "— 'close to cost-optimal', as the paper concludes"
    )
    return result
