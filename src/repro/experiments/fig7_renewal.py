"""F7 — sensitivity to periodic renewal on top of the current policy.

Regenerates the renewal-period sweep: keeping quarterly inspections,
the joint is additionally renewed every R years.  Renewal suppresses
the no-warning failure modes that inspections cannot catch, but a full
renewal is expensive; the sweep shows where (if anywhere) time-based
renewal pays on top of condition-based maintenance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_cost_model, default_parameters
from repro.eijoint.strategies import (
    CURRENT_INSPECTIONS_PER_YEAR,
    inspection_policy,
)
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "RENEWAL_PERIODS"]

#: Renewal periods (years) swept; None = no periodic renewal (current).
RENEWAL_PERIODS: Sequence[Optional[float]] = (None, 50.0, 35.0, 25.0, 15.0, 10.0, 5.0)


@register("fig7")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Sweep the renewal period at the current inspection frequency."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    tree = build_ei_joint_fmt(parameters)
    cost_model = default_cost_model()

    result = ExperimentResult(
        experiment_id="F7",
        title="Adding periodic renewal to the current policy",
        headers=[
            "renewal period [y]",
            "ENF per year",
            "cost/yr planned",
            "cost/yr unplanned",
            "cost/yr TOTAL",
        ],
    )
    for renewal in RENEWAL_PERIODS:
        strategy = inspection_policy(
            CURRENT_INSPECTIONS_PER_YEAR,
            renewal_years=renewal,
            parameters=parameters,
        )
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=cfg.horizon,
                cost_model=cost_model,
                seed=cfg.seed,
                n_runs=cfg.n_runs,
                confidence=cfg.confidence,
            )
        )
        breakdown = sim.summary.cost_breakdown_per_year
        result.add_row(
            "none" if renewal is None else f"{renewal:g}",
            format_ci(sim.failures_per_year),
            f"{breakdown.planned:.0f}",
            f"{breakdown.unplanned:.0f}",
            f"{breakdown.total:.0f}",
        )
    result.notes.append(
        "renewal reduces failures from no-warning modes but each renewal "
        "replaces every component; the cost column shows whether that "
        "trade pays at any period"
    )
    return result
