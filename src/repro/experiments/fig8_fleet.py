"""F8 — fleet-level failure counts across traffic classes.

The abstract motivates the study with the EI-joint being "a relative
frequent cause for train disruptions" — a *fleet-level* statement.
This experiment aggregates the per-joint model over a heterogeneous
fleet (traffic classes scale the usage-driven degradation) and reports
the expected number of service-affecting failures per year for a
50,000-joint network under the current policy, split by class.
"""

from __future__ import annotations

from typing import Optional

from repro.eijoint.fleet import (
    DEFAULT_TRAFFIC_MIX,
    fleet_failures_per_year,
)
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register

__all__ = ["run", "FLEET_SIZE"]

#: Joints in the modeled network (order of the Dutch network's count).
FLEET_SIZE = 50_000


@register("fig8")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Aggregate per-class ENF into the fleet-level failure count."""
    cfg = config if config is not None else ExperimentConfig()
    parameters = default_parameters()
    per_class, fleet_total = fleet_failures_per_year(
        strategy_factory=lambda params: current_policy(params),
        mix=DEFAULT_TRAFFIC_MIX,
        parameters=parameters,
        fleet_size=FLEET_SIZE,
        horizon=cfg.horizon,
        n_runs=cfg.n_runs,
        seed=cfg.seed,
    )
    result = ExperimentResult(
        experiment_id="F8",
        title=f"Fleet of {FLEET_SIZE:,} joints under the current policy",
        headers=[
            "traffic class",
            "share",
            "intensity",
            "ENF per joint-year",
            "failures/yr in class",
        ],
    )
    for entry in per_class:
        cls = entry.traffic_class
        class_failures = (
            entry.failures_per_joint_year.estimate * cls.fraction * FLEET_SIZE
        )
        result.add_row(
            cls.name,
            f"{cls.fraction:.0%}",
            f"x{cls.intensity:g}",
            format_ci(entry.failures_per_joint_year),
            f"{class_failures:.0f}",
        )
    result.notes.append(
        f"expected service-affecting EI-joint failures: "
        f"{fleet_total:.0f} per year network-wide — the order of "
        "magnitude that makes the joint 'a relative frequent cause for "
        "train disruptions'"
    )
    return result
