"""U1 — prediction uncertainty from parameter uncertainty.

T3 produces one prediction from one calibration; the paper's caveat —
"the faithfulness of quantitative analyses heavily depend on the
accuracy of the parameter values" — asks how much that prediction
would move under a different draw of expert answers.  This experiment
propagates the elicitation uncertainty by parametric bootstrap: the
calibration (fresh expert noise, same database) and the prediction are
repeated B times, giving an empirical distribution of the predicted
failure rate that can be compared against the observed rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.estimation import estimate_failure_rate
from repro.data.incidents import generate_incident_database
from repro.eijoint.calibration import refit_parameters
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, format_ci
from repro.experiments.registry import register
from repro.studies import StudyRequest, get_runner

__all__ = ["run", "N_BOOTSTRAP"]

#: Bootstrap replicates of the calibration.
N_BOOTSTRAP = 10

_WINDOW = 10.0


@register("uncertainty")
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Bootstrap the calibration and tabulate the prediction spread."""
    cfg = config if config is not None else ExperimentConfig()
    truth = default_parameters()
    tree_truth = build_ei_joint_fmt(truth)
    strategy = current_policy(truth)

    n_joints = max(200, cfg.n_runs // 2)
    database = generate_incident_database(
        tree_truth, strategy, n_joints=n_joints, window=_WINDOW, seed=cfg.seed
    )
    observed = estimate_failure_rate(
        database, kind="system_failure", confidence=cfg.confidence
    )

    result = ExperimentResult(
        experiment_id="U1",
        title="Prediction uncertainty under resampled expert elicitation",
        headers=["replicate", "predicted ENF/joint-yr", "rel. to observed"],
    )
    predictions = []
    for replicate in range(N_BOOTSTRAP):
        rng = np.random.default_rng(cfg.seed + 100 + replicate)
        fitted, _ = refit_parameters(database, truth, rng)
        prediction = get_runner().result(
            StudyRequest(
                tree=build_ei_joint_fmt(fitted),
                strategy=current_policy(fitted),
                horizon=_WINDOW,
                seed=cfg.seed + 200 + replicate,
                n_runs=n_joints,
                confidence=cfg.confidence,
            )
        ).failures_per_year
        predictions.append(prediction.estimate)
        ratio = (
            prediction.estimate / observed.estimate
            if observed.estimate > 0
            else float("nan")
        )
        result.add_row(
            replicate, f"{prediction.estimate:.5f}", f"{ratio:.2f}x"
        )

    spread = np.asarray(predictions)
    low, high = np.quantile(spread, [0.05, 0.95])
    result.notes.append(
        f"observed rate: {format_ci(observed)} per joint-year"
    )
    result.notes.append(
        f"bootstrap prediction: mean {spread.mean():.5f}, "
        f"90% band [{low:.5f}, {high:.5f}] over {N_BOOTSTRAP} calibrations"
    )
    covered = low <= observed.estimate <= high or (
        observed.lower <= spread.mean() <= observed.upper
    )
    result.notes.append(
        "the observed rate "
        + ("lies within" if covered else "lies OUTSIDE")
        + " the prediction band: parameter uncertainty does not break "
        "the validation"
    )
    return result
