"""Assembly of the EI-joint fault maintenance tree.

Tree shape (reconstructed from the paper's description)::

    ei_joint_failure (OR)
    ├── electrical_failure (OR)
    │   ├── ferrous_dust            EBE, cleanable
    │   ├── metal_overflow          EBE, grindable
    │   ├── pollution_conductive    EBE, cleanable
    │   └── endpost_defect          EBE, no warning
    └── mechanical_failure (OR)
        ├── glue_failure            EBE, RDEP-accelerated by broken bolts
        ├── bolt_failure (VOT 2/4)
        │   ├── bolt_1 .. bolt_4    EBE, loosen-then-break
        ├── fishplate_crack         EBE
        └── rail_end_break          EBE, no warning

Each broken bolt accelerates the glue degradation (the joint flexes),
expressed as one RDEP per bolt targeting ``glue_failure``; the factors
compose multiplicatively, so two broken bolts square the acceleration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.builder import FMTBuilder
from repro.core.tree import FaultMaintenanceTree
from repro.eijoint.parameters import (
    ELECTRICAL,
    MECHANICAL,
    EIJointParameters,
    default_parameters,
)

__all__ = ["build_ei_joint_fmt", "inspectable_modes"]

TOP = "ei_joint_failure"
ELECTRICAL_GATE = "electrical_failure"
MECHANICAL_GATE = "mechanical_failure"
BOLT_GATE = "bolt_failure"


def build_ei_joint_fmt(
    parameters: Optional[EIJointParameters] = None,
) -> FaultMaintenanceTree:
    """Build the EI-joint FMT (structure + dependencies, no maintenance).

    Maintenance modules are attached separately via a
    :class:`~repro.maintenance.strategy.MaintenanceStrategy` from
    :mod:`repro.eijoint.strategies`, so one model instance serves every
    strategy in an experiment sweep.
    """
    parameters = parameters if parameters is not None else default_parameters()
    builder = FMTBuilder("ei_joint")

    for mode in parameters.modes:
        builder.degraded_event(
            mode.name,
            phases=mode.phases,
            mean=mode.mean_lifetime,
            threshold=mode.threshold,
            description=mode.description,
        )

    bolt_names = list(parameters.bolt_names)
    electrical = [
        mode.name for mode in parameters.modes if mode.group == ELECTRICAL
    ]
    mechanical_leaves = [
        mode.name
        for mode in parameters.modes
        if mode.group == MECHANICAL and mode.name not in bolt_names
    ]

    builder.voting_gate(BOLT_GATE, parameters.bolts_needed_to_fail, bolt_names)
    builder.or_gate(ELECTRICAL_GATE, electrical)
    builder.or_gate(MECHANICAL_GATE, mechanical_leaves + [BOLT_GATE])
    builder.or_gate(TOP, [ELECTRICAL_GATE, MECHANICAL_GATE])

    if parameters.bolt_glue_acceleration > 1.0:
        for bolt in bolt_names:
            builder.rdep(
                f"rdep_{bolt}_glue",
                trigger=bolt,
                targets=["glue_failure"],
                factor=parameters.bolt_glue_acceleration,
            )
    return builder.build(TOP)


def inspectable_modes(
    parameters: Optional[EIJointParameters] = None,
) -> List[str]:
    """Names of the failure modes periodic inspection can detect."""
    parameters = parameters if parameters is not None else default_parameters()
    return [mode.name for mode in parameters.modes if mode.inspectable]
