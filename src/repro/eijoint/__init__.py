"""The electrically insulated railway joint (EI-joint) case study.

The EI-joint electrically separates two track sections so that track
circuits can detect trains; its failure — either a conductive bridge
across the insulation (*electrical failure*) or a structural break
(*mechanical failure*) — disrupts train detection and hence traffic.

This package contains the reconstructed fault maintenance tree of the
case study:

* :mod:`repro.eijoint.parameters` — the failure-mode inventory with
  degradation parameters and the cost model (provenance documented per
  value; the paper's proprietary data is substituted per DESIGN.md);
* :mod:`repro.eijoint.model` — assembly of the FMT;
* :mod:`repro.eijoint.strategies` — the maintenance strategies the
  evaluation compares, including the current policy.
"""

from repro.eijoint.fleet import (
    DEFAULT_TRAFFIC_MIX,
    TrafficClass,
    fleet_failures_per_year,
    scale_parameters,
)
from repro.eijoint.model import build_ei_joint_fmt, inspectable_modes
from repro.eijoint.parameters import (
    EIJointParameters,
    FailureModeSpec,
    default_cost_model,
    default_parameters,
)
from repro.eijoint.strategies import (
    current_policy,
    inspection_policy,
    no_maintenance,
    renewal_only,
    strategy_grid,
    unmaintained,
)

__all__ = [
    "DEFAULT_TRAFFIC_MIX",
    "EIJointParameters",
    "FailureModeSpec",
    "TrafficClass",
    "build_ei_joint_fmt",
    "current_policy",
    "fleet_failures_per_year",
    "scale_parameters",
    "default_cost_model",
    "default_parameters",
    "inspectable_modes",
    "inspection_policy",
    "no_maintenance",
    "renewal_only",
    "strategy_grid",
    "unmaintained",
]
