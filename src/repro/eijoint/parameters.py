"""Failure-mode inventory and cost model of the EI-joint case study.

Provenance
----------
The paper estimated its parameters from proprietary incident databases
and expert interviews; those numbers are not public.  The values below
are *reconstructed*: they are plausible for the asset class (orders of
magnitude consistent with published railway S&C/joint reliability
figures) and chosen so that the model reproduces the qualitative claims
the paper's abstract makes — a system-level expected number of failures
of the order of 1e-2 per joint-year under the current policy, and a
U-shaped annual cost in inspection frequency with its optimum at (or
immediately adjacent to) the current quarterly inspection policy.  See
DESIGN.md ("Substitutions") and EXPERIMENTS.md for the comparison
protocol.

Degradation phases follow the FMT convention: a mode with ``phases=N``
and per-phase rate ``r`` has an Erlang(N, r) lifetime with mean ``N/r``;
``threshold=k`` means inspections notice the mode from phase ``k`` on.
Modes with ``threshold=None`` give no advance warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.units import hours

__all__ = [
    "FailureModeSpec",
    "EIJointParameters",
    "default_parameters",
    "default_cost_model",
]

#: Group labels used by the model assembly.
ELECTRICAL = "electrical"
MECHANICAL = "mechanical"


@dataclass(frozen=True)
class FailureModeSpec:
    """One failure mode of the EI-joint.

    Attributes
    ----------
    name:
        Basic-event name.
    group:
        ``"electrical"`` or ``"mechanical"``.
    phases:
        Number of degradation phases.
    mean_lifetime:
        Mean time from pristine to failure, years (no maintenance).
    threshold:
        First inspectable phase (1-based), or None if the mode gives no
        advance warning.
    action:
        Maintenance action kind applied when an inspection detects the
        mode: ``"clean"``, ``"repair"`` or ``"replace"``.
    description:
        Table text.
    """

    name: str
    group: str
    phases: int
    mean_lifetime: float
    threshold: Optional[int]
    action: str
    description: str

    def __post_init__(self) -> None:
        if self.group not in (ELECTRICAL, MECHANICAL):
            raise ValidationError(f"{self.name}: unknown group {self.group!r}")
        if self.phases < 1:
            raise ValidationError(f"{self.name}: phases must be >= 1")
        if self.mean_lifetime <= 0.0:
            raise ValidationError(f"{self.name}: mean_lifetime must be positive")
        if self.threshold is not None and not 1 <= self.threshold <= self.phases:
            raise ValidationError(
                f"{self.name}: threshold {self.threshold} out of 1..{self.phases}"
            )

    @property
    def phase_rate(self) -> float:
        """Per-phase transition rate (equal across phases)."""
        return self.phases / self.mean_lifetime

    @property
    def inspectable(self) -> bool:
        """Whether periodic inspection can catch the mode in time."""
        return self.threshold is not None


def _default_modes() -> Tuple[FailureModeSpec, ...]:
    return (
        # ----- electrical failure causes (conductive bridge) -----
        FailureModeSpec(
            name="ferrous_dust",
            group=ELECTRICAL,
            phases=4,
            mean_lifetime=8.0,
            threshold=2,
            action="clean",
            description="accumulation of conductive brake/grinding dust "
            "bridging the endpost",
        ),
        FailureModeSpec(
            name="metal_overflow",
            group=ELECTRICAL,
            phases=5,
            mean_lifetime=15.0,
            threshold=3,
            action="repair",
            description="battered rail ends flowing (lipping) over the "
            "endpost; removed by grinding",
        ),
        FailureModeSpec(
            name="pollution_conductive",
            group=ELECTRICAL,
            phases=3,
            mean_lifetime=12.0,
            threshold=2,
            action="clean",
            description="conductive pollution / moist contamination of "
            "the joint surface",
        ),
        FailureModeSpec(
            name="endpost_defect",
            group=ELECTRICAL,
            phases=2,
            mean_lifetime=150.0,
            threshold=None,
            action="replace",
            description="internal defect of the insulating endpost "
            "material (no advance warning)",
        ),
        # ----- mechanical failure causes (joint breaks / loosens) -----
        FailureModeSpec(
            name="glue_failure",
            group=MECHANICAL,
            phases=6,
            mean_lifetime=40.0,
            threshold=4,
            action="replace",
            description="degradation of the glued insulation layer; "
            "accelerated while bolts are broken (RDEP)",
        ),
        FailureModeSpec(
            name="bolt_1",
            group=MECHANICAL,
            phases=2,
            mean_lifetime=60.0,
            threshold=2,
            action="repair",
            description="fishplate bolt 1 loosens, then breaks",
        ),
        FailureModeSpec(
            name="bolt_2",
            group=MECHANICAL,
            phases=2,
            mean_lifetime=60.0,
            threshold=2,
            action="repair",
            description="fishplate bolt 2 loosens, then breaks",
        ),
        FailureModeSpec(
            name="bolt_3",
            group=MECHANICAL,
            phases=2,
            mean_lifetime=60.0,
            threshold=2,
            action="repair",
            description="fishplate bolt 3 loosens, then breaks",
        ),
        FailureModeSpec(
            name="bolt_4",
            group=MECHANICAL,
            phases=2,
            mean_lifetime=60.0,
            threshold=2,
            action="repair",
            description="fishplate bolt 4 loosens, then breaks",
        ),
        FailureModeSpec(
            name="fishplate_crack",
            group=MECHANICAL,
            phases=3,
            mean_lifetime=90.0,
            threshold=3,
            action="replace",
            description="fatigue crack in a fishplate, visible before "
            "fracture",
        ),
        FailureModeSpec(
            name="rail_end_break",
            group=MECHANICAL,
            phases=1,
            mean_lifetime=250.0,
            threshold=None,
            action="replace",
            description="sudden rail break inside the joint zone",
        ),
    )


@dataclass(frozen=True)
class EIJointParameters:
    """All tunable parameters of the EI-joint FMT.

    Attributes
    ----------
    modes:
        The failure-mode inventory.
    bolts_needed_to_fail:
        The joint tolerates ``bolts_needed_to_fail - 1`` broken bolts;
        a VOT(k/4) gate over the four bolts.
    bolt_glue_acceleration:
        RDEP factor: each *broken* bolt multiplies the glue-degradation
        rate by this factor (factors compose multiplicatively).
    system_repair_time:
        Downtime of an emergency joint renewal, years.
    """

    modes: Tuple[FailureModeSpec, ...] = field(default_factory=_default_modes)
    bolts_needed_to_fail: int = 2
    bolt_glue_acceleration: float = 3.0
    system_repair_time: float = hours(8.0)

    def __post_init__(self) -> None:
        names = [mode.name for mode in self.modes]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate failure-mode names")
        if self.bolts_needed_to_fail < 1 or self.bolts_needed_to_fail > len(
            self.bolt_names
        ):
            raise ValidationError(
                f"bolts_needed_to_fail={self.bolts_needed_to_fail} out of range"
            )
        if self.bolt_glue_acceleration < 1.0:
            raise ValidationError("bolt_glue_acceleration must be >= 1")

    @property
    def bolt_names(self) -> Tuple[str, ...]:
        """Names of the bolt failure modes, in order."""
        return tuple(
            mode.name for mode in self.modes if mode.name.startswith("bolt_")
        )

    @property
    def by_name(self) -> Dict[str, FailureModeSpec]:
        """Failure modes indexed by name."""
        return {mode.name: mode for mode in self.modes}

    def with_mode(self, name: str, **changes) -> "EIJointParameters":
        """A copy with one failure mode's fields replaced."""
        by_name = self.by_name
        if name not in by_name:
            raise ValidationError(f"unknown failure mode {name!r}")
        new_modes = tuple(
            dataclass_replace(mode, **changes) if mode.name == name else mode
            for mode in self.modes
        )
        return dataclass_replace(self, modes=new_modes)


def default_parameters() -> EIJointParameters:
    """The reconstructed baseline parameters (see module docstring)."""
    return EIJointParameters()


def default_cost_model() -> CostModel:
    """Reconstructed cost figures, in EUR.

    * An inspection visit is the marginal per-joint cost of the
      periodic track inspection round.
    * A service-affecting failure costs the emergency renewal plus
      traffic-disruption penalties — an order of magnitude above any
      planned action, which is what makes preventive maintenance pay.
    """
    return CostModel(
        inspection_visit=25.0,
        # The three per-action inspection modules of
        # repro.eijoint.strategies model ONE physical inspection round:
        # the visit is priced once (on the clean module).
        module_visit_costs={
            "inspect_repair": 0.0,
            "inspect_replace": 0.0,
        },
        action_costs={"clean": 150.0, "repair": 400.0, "replace": 2500.0},
        event_action_costs={
            ("bolt_1", "repair"): 120.0,
            ("bolt_2", "repair"): 120.0,
            ("bolt_3", "repair"): 120.0,
            ("bolt_4", "repair"): 120.0,
            ("metal_overflow", "repair"): 350.0,
        },
        system_failure=20_000.0,
        corrective_factor=1.5,
        downtime_per_year=250_000.0,
    )
