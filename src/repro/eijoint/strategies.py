"""Maintenance strategies of the EI-joint evaluation.

The central knob is the inspection frequency.  One physical inspection
round checks all inspectable failure modes; because different modes get
different remedies, the round is modelled as three synchronised
inspection modules (clean / repair / replace) sharing the same period —
the cost model prices the visit once (see
:func:`repro.eijoint.parameters.default_cost_model`).

Strategies provided:

* :func:`unmaintained` — nothing at all, failure absorbing (pure
  reliability study);
* :func:`no_maintenance` — corrective renewal after failure only;
* :func:`inspection_policy` — condition-based maintenance with a given
  number of inspection rounds per year, optionally plus periodic
  renewal;
* :func:`renewal_only` — time-based periodic renewal, no inspections;
* :func:`current_policy` — the policy in force: quarterly inspection
  rounds, condition-based replacement, corrective renewal on failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eijoint.parameters import EIJointParameters, default_parameters
from repro.errors import ValidationError
from repro.maintenance.actions import MaintenanceAction
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy

__all__ = [
    "unmaintained",
    "no_maintenance",
    "inspection_policy",
    "renewal_only",
    "current_policy",
    "strategy_grid",
    "INSPECT_CLEAN",
    "INSPECT_REPAIR",
    "INSPECT_REPLACE",
    "PERIODIC_RENEWAL",
]

INSPECT_CLEAN = "inspect_clean"
INSPECT_REPAIR = "inspect_repair"
INSPECT_REPLACE = "inspect_replace"
PERIODIC_RENEWAL = "periodic_renewal"

#: Inspections per year of the policy currently in force (quarterly).
CURRENT_INSPECTIONS_PER_YEAR = 4.0


def unmaintained(
    parameters: Optional[EIJointParameters] = None,
) -> MaintenanceStrategy:
    """No maintenance; the first system failure is absorbing."""
    return MaintenanceStrategy.absorbing("unmaintained")


def no_maintenance(
    parameters: Optional[EIJointParameters] = None,
) -> MaintenanceStrategy:
    """Corrective-only: the joint is renewed after each failure."""
    parameters = parameters if parameters is not None else default_parameters()
    return MaintenanceStrategy(
        name="corrective-only",
        on_system_failure="replace",
        system_repair_time=parameters.system_repair_time,
        description="no inspections; emergency renewal after failure",
    )


def inspection_policy(
    inspections_per_year: float,
    renewal_years: Optional[float] = None,
    delay: float = 0.0,
    timing: str = "periodic",
    parameters: Optional[EIJointParameters] = None,
    name: Optional[str] = None,
    detection_probability: float = 1.0,
) -> MaintenanceStrategy:
    """Condition-based maintenance with periodic inspection rounds.

    Parameters
    ----------
    inspections_per_year:
        Inspection rounds per year (> 0); e.g. 4 for quarterly.
    renewal_years:
        Optionally also renew the whole joint every so many years.
    delay:
        Work-planning delay between detection and remedy, years.
    timing:
        ``"periodic"`` or ``"exponential"`` (see
        :class:`~repro.maintenance.modules.InspectionModule`).
    detection_probability:
        Probability that a visit notices a degraded target (imperfect
        inspections; 1.0 = perfect).
    """
    if inspections_per_year <= 0.0:
        raise ValidationError(
            "inspections_per_year must be > 0; use no_maintenance() for none"
        )
    parameters = parameters if parameters is not None else default_parameters()
    period = 1.0 / inspections_per_year
    groups: Dict[str, List[str]] = {"clean": [], "repair": [], "replace": []}
    for mode in parameters.modes:
        if mode.inspectable:
            groups[mode.action].append(mode.name)

    module_names = {
        "clean": INSPECT_CLEAN,
        "repair": INSPECT_REPAIR,
        "replace": INSPECT_REPLACE,
    }
    inspections = tuple(
        InspectionModule(
            module_names[kind],
            period=period,
            targets=targets,
            action=MaintenanceAction(kind),
            delay=delay,
            timing=timing,
            detection_probability=detection_probability,
        )
        for kind, targets in groups.items()
        if targets
    )
    repairs = ()
    if renewal_years is not None:
        repairs = (_renewal_module(renewal_years, parameters, timing),)
    if name is None:
        name = f"inspect-{inspections_per_year:g}x"
        if renewal_years is not None:
            name += f"+renew-{renewal_years:g}y"
    return MaintenanceStrategy(
        name=name,
        inspections=inspections,
        repairs=repairs,
        on_system_failure="replace",
        system_repair_time=parameters.system_repair_time,
        description=(
            f"{inspections_per_year:g} inspection rounds/year, "
            "condition-based remedies"
            + (
                f", full renewal every {renewal_years:g} years"
                if renewal_years is not None
                else ""
            )
        ),
    )


def renewal_only(
    renewal_years: float,
    parameters: Optional[EIJointParameters] = None,
    timing: str = "periodic",
) -> MaintenanceStrategy:
    """Time-based maintenance: renew the joint periodically, never inspect."""
    parameters = parameters if parameters is not None else default_parameters()
    return MaintenanceStrategy(
        name=f"renew-{renewal_years:g}y",
        repairs=(_renewal_module(renewal_years, parameters, timing),),
        on_system_failure="replace",
        system_repair_time=parameters.system_repair_time,
        description=f"full renewal every {renewal_years:g} years, no inspections",
    )


def current_policy(
    parameters: Optional[EIJointParameters] = None,
) -> MaintenanceStrategy:
    """The maintenance policy currently in force: quarterly inspections."""
    strategy = inspection_policy(
        CURRENT_INSPECTIONS_PER_YEAR, parameters=parameters, name="current-policy"
    )
    return strategy


def strategy_grid(
    inspections_per_year: Sequence[float],
    renewal_years: Optional[float] = None,
    parameters: Optional[EIJointParameters] = None,
) -> List[MaintenanceStrategy]:
    """One strategy per inspection frequency (0 = corrective only)."""
    strategies: List[MaintenanceStrategy] = []
    for frequency in inspections_per_year:
        if frequency == 0:
            strategies.append(no_maintenance(parameters))
        else:
            strategies.append(
                inspection_policy(
                    frequency, renewal_years=renewal_years, parameters=parameters
                )
            )
    return strategies


def _renewal_module(
    renewal_years: float, parameters: EIJointParameters, timing: str
) -> RepairModule:
    return RepairModule(
        PERIODIC_RENEWAL,
        period=renewal_years,
        targets=[mode.name for mode in parameters.modes],
        action=MaintenanceAction("replace"),
        timing=timing,
    )
