"""Calibration of the EI-joint model from (synthetic) data sources.

Factors the parameter-estimation pipeline out of the T3 experiment so
it can be reused — in particular by the uncertainty-propagation
experiment, which repeats the whole calibration under resampled expert
noise.

The pipeline mirrors the paper's methodology split:

* rare, non-inspectable failure modes → censored Erlang MLE on the
  incident database's lifetime records;
* inspectable degradation modes → expert interviews: each (simulated)
  expert states lifetime quantiles, answers are aggregated and an
  Erlang fitted to the consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sps

from repro.data.estimation import fit_erlang_censored, lifetimes_from_database
from repro.data.expert import (
    ExpertJudgment,
    aggregate_judgments,
    fit_erlang_to_quantiles,
)
from repro.data.incidents import IncidentDatabase
from repro.eijoint.parameters import EIJointParameters, FailureModeSpec

__all__ = [
    "ModeFit",
    "simulate_expert_interviews",
    "refit_parameters",
    "DEFAULT_QUANTILE_LEVELS",
    "DEFAULT_EXPERT_SIGMA",
]

#: Quantile levels asked in the (simulated) expert interviews.
DEFAULT_QUANTILE_LEVELS: Tuple[float, ...] = (0.05, 0.5, 0.95)

#: Multiplicative log-normal noise of an individual expert's answer.
DEFAULT_EXPERT_SIGMA = 0.10


@dataclass(frozen=True)
class ModeFit:
    """Record of one failure mode's re-estimation."""

    name: str
    source: str
    true_mean: float
    fitted_mean: float
    true_phases: int
    fitted_phases: int


def simulate_expert_interviews(
    mode: FailureModeSpec,
    rng: np.random.Generator,
    n_experts: int = 3,
    levels: Sequence[float] = DEFAULT_QUANTILE_LEVELS,
    sigma: float = DEFAULT_EXPERT_SIGMA,
) -> List[ExpertJudgment]:
    """Noisy expert assessments of a mode's lifetime quantiles.

    Each expert reports the true Erlang quantiles perturbed by
    independent multiplicative log-normal noise; per-expert answers are
    re-sorted so each expert's quantiles stay monotone (as a real
    elicitation protocol enforces).
    """
    true_quantiles = {
        level: float(
            sps.gamma.ppf(
                level, a=mode.phases, scale=mode.mean_lifetime / mode.phases
            )
        )
        for level in levels
    }
    judgments = []
    for expert in range(n_experts):
        noisy = {
            level: value * float(rng.lognormal(0.0, sigma))
            for level, value in true_quantiles.items()
        }
        values = sorted(noisy.values())
        noisy = dict(zip(sorted(noisy), values))
        judgments.append(ExpertJudgment(f"expert_{expert}", noisy))
    return judgments


def refit_parameters(
    database: IncidentDatabase,
    truth: EIJointParameters,
    rng: np.random.Generator,
    expert_sigma: float = DEFAULT_EXPERT_SIGMA,
) -> Tuple[EIJointParameters, List[ModeFit]]:
    """Re-estimate all model parameters blind to the ground truth.

    ``truth`` supplies the *structure* (mode list, phase counts of the
    database-fitted modes, thresholds — engineering knowledge) and, for
    the simulated interviews, the latent quantiles experts perceive.

    Returns the fitted parameter set and per-mode fit records.
    """
    fitted = truth
    records: List[ModeFit] = []
    for mode in truth.modes:
        if mode.inspectable:
            judgments = simulate_expert_interviews(
                mode, rng, sigma=expert_sigma
            )
            consensus = aggregate_judgments(judgments)
            erlang = fit_erlang_to_quantiles(consensus)
            fitted = fitted.with_mode(
                mode.name,
                phases=erlang.shape,
                mean_lifetime=erlang.mean(),
                threshold=min(mode.threshold, erlang.shape),
            )
            records.append(
                ModeFit(
                    name=mode.name,
                    source="expert interviews",
                    true_mean=mode.mean_lifetime,
                    fitted_mean=erlang.mean(),
                    true_phases=mode.phases,
                    fitted_phases=erlang.shape,
                )
            )
        else:
            sample = lifetimes_from_database(database, mode.name)
            erlang = fit_erlang_censored(sample, shape=mode.phases)
            fitted = fitted.with_mode(mode.name, mean_lifetime=erlang.mean())
            records.append(
                ModeFit(
                    name=mode.name,
                    source=f"incident DB ({sample.n_observed} failures)",
                    true_mean=mode.mean_lifetime,
                    fitted_mean=erlang.mean(),
                    true_phases=mode.phases,
                    fitted_phases=mode.phases,
                )
            )
    return fitted, records
