"""Fleet-level analysis: from one joint to the national failure count.

The paper's validation works at system level: the infrastructure
manager observes failure counts over a *fleet* of thousands of joints
with heterogeneous traffic loads.  This module models that
heterogeneity with traffic classes — each class scales the
usage-driven degradation rates — and aggregates per-joint KPIs into
fleet-level expectations.

Usage-driven failure modes (wear from passing trains: dust deposition,
metal overflow, bolt fatigue, glue degradation, rail break) scale with
traffic intensity; environmental modes (conductive pollution, endpost
material defects) do not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import EIJointParameters, default_parameters
from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.stats.confidence import ConfidenceInterval

__all__ = [
    "TrafficClass",
    "DEFAULT_TRAFFIC_MIX",
    "USAGE_DRIVEN_MODES",
    "scale_parameters",
    "FleetClassResult",
    "fleet_failures_per_year",
]

#: Failure modes whose degradation speed scales with traffic load.
USAGE_DRIVEN_MODES: Tuple[str, ...] = (
    "ferrous_dust",
    "metal_overflow",
    "glue_failure",
    "bolt_1",
    "bolt_2",
    "bolt_3",
    "bolt_4",
    "rail_end_break",
    "fishplate_crack",
)


@dataclass(frozen=True)
class TrafficClass:
    """A slice of the fleet with a common traffic intensity.

    ``intensity`` multiplies the degradation *rates* of the
    usage-driven modes (1.0 = the reference joint the base parameters
    describe); ``fraction`` is the class's share of the fleet.
    """

    name: str
    fraction: float
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValidationError(
                f"{self.name}: fraction must be in (0, 1], got {self.fraction}"
            )
        if self.intensity <= 0.0:
            raise ValidationError(
                f"{self.name}: intensity must be positive, got {self.intensity}"
            )


#: A plausible national mix: mostly medium traffic, some quiet branch
#: lines, a heavy-haul core.
DEFAULT_TRAFFIC_MIX: Tuple[TrafficClass, ...] = (
    TrafficClass("branch-line", fraction=0.3, intensity=0.6),
    TrafficClass("main-line", fraction=0.5, intensity=1.0),
    TrafficClass("heavy-haul", fraction=0.2, intensity=1.6),
)


def scale_parameters(
    parameters: EIJointParameters, intensity: float
) -> EIJointParameters:
    """Scale the usage-driven modes' degradation by ``intensity``.

    Rates scale linearly with traffic, so mean lifetimes divide by the
    intensity; phase counts and thresholds are structural and stay.
    """
    if intensity <= 0.0:
        raise ValidationError(f"intensity must be positive, got {intensity}")
    scaled = parameters
    for mode in parameters.modes:
        if mode.name in USAGE_DRIVEN_MODES:
            scaled = scaled.with_mode(
                mode.name, mean_lifetime=mode.mean_lifetime / intensity
            )
    return scaled


@dataclass(frozen=True)
class FleetClassResult:
    """Per-traffic-class simulation outcome."""

    traffic_class: TrafficClass
    failures_per_joint_year: ConfidenceInterval

    @property
    def weighted_rate(self) -> float:
        """Class contribution to the fleet rate (fraction-weighted)."""
        return (
            self.traffic_class.fraction
            * self.failures_per_joint_year.estimate
        )


def fleet_failures_per_year(
    strategy_factory: Callable[[EIJointParameters], MaintenanceStrategy],
    mix: Sequence[TrafficClass] = DEFAULT_TRAFFIC_MIX,
    parameters: Optional[EIJointParameters] = None,
    fleet_size: int = 50_000,
    horizon: float = 25.0,
    n_runs: int = 1000,
    seed: int = 0,
) -> Tuple[List[FleetClassResult], float]:
    """Expected fleet-wide system failures per year.

    Parameters
    ----------
    strategy_factory:
        Builds the maintenance strategy for a class's parameters (the
        same policy normally applies fleet-wide, but repair times may
        depend on the parameters object).
    mix:
        The traffic classes; fractions must sum to 1.
    fleet_size:
        Number of joints in the fleet.

    Returns
    -------
    (per_class, fleet_total):
        Per-class results and the expected number of service-affecting
        failures per year over the whole fleet.
    """
    from repro.studies import StudyRequest, get_runner

    total_fraction = sum(cls.fraction for cls in mix)
    if abs(total_fraction - 1.0) > 1e-9:
        raise ValidationError(
            f"traffic-class fractions sum to {total_fraction}, expected 1"
        )
    if fleet_size < 1:
        raise ValidationError(f"fleet_size must be >= 1, got {fleet_size}")
    parameters = parameters if parameters is not None else default_parameters()

    results: List[FleetClassResult] = []
    for offset, traffic_class in enumerate(mix):
        class_parameters = scale_parameters(parameters, traffic_class.intensity)
        tree = build_ei_joint_fmt(class_parameters)
        strategy = strategy_factory(class_parameters)
        sim = get_runner().result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=horizon,
                seed=seed + offset,
                n_runs=n_runs,
            )
        )
        results.append(
            FleetClassResult(
                traffic_class=traffic_class,
                failures_per_joint_year=sim.failures_per_year,
            )
        )
    per_joint_rate = sum(result.weighted_rate for result in results)
    return results, per_joint_rate * fleet_size
