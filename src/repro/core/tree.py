"""The fault maintenance tree container and its validation.

A :class:`FaultMaintenanceTree` ties together:

* a DAG of gates over basic events, rooted at a *top event*;
* rate dependencies (RDEP) accelerating degradation;
* inspection and repair modules (from :mod:`repro.maintenance`).

Construction validates the whole model: unique names, acyclicity,
well-formed gates, dependencies and modules that reference existing
elements, thresholds consistent with inspections.  After construction
the tree is conceptually immutable; strategy variants are produced by
rebuilding (see :meth:`with_maintenance`), never by mutation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, TYPE_CHECKING, Tuple, Union

from repro.errors import ModelError, ValidationError
from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import AndGate, Gate, InhibitGate, OrGate, PandGate, VotingGate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.maintenance.modules import InspectionModule, RepairModule

from repro.core.nodes import Element

__all__ = ["FaultMaintenanceTree", "FaultTree"]


class FaultMaintenanceTree:
    """An immutable, validated fault maintenance tree.

    Parameters
    ----------
    top:
        Root element (usually a gate; a single basic event is allowed).
    dependencies:
        Rate dependencies (RDEP) of the model.
    inspections:
        Inspection modules (periodic condition checks), see
        :class:`repro.maintenance.modules.InspectionModule`.
    repairs:
        Repair modules (periodic overhaul/renewal), see
        :class:`repro.maintenance.modules.RepairModule`.
    name:
        Optional model name used in reports.
    """

    def __init__(
        self,
        top: Element,
        dependencies: Sequence[RateDependency] = (),
        inspections: Sequence["InspectionModule"] = (),
        repairs: Sequence["RepairModule"] = (),
        name: str = "fmt",
    ):
        self.name = name
        self.top = top
        self.dependencies: Tuple[RateDependency, ...] = tuple(dependencies)
        self.inspections = tuple(inspections)
        self.repairs = tuple(repairs)
        self._nodes: Dict[str, Element] = {}
        self._parents: Dict[str, List[str]] = {}
        self._collect_and_validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _collect_and_validate(self) -> None:
        self._collect_nodes()
        self._check_acyclic()
        self._check_dependencies()
        self._check_modules()

    def _collect_nodes(self) -> None:
        """DFS from the top, filling the name->element map."""
        stack = [self.top]
        visited: Set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            existing = self._nodes.get(node.name)
            if existing is not None and existing is not node:
                raise ModelError(
                    f"two distinct elements share the name {node.name!r}"
                )
            self._nodes[node.name] = node
            self._parents.setdefault(node.name, [])
            if isinstance(node, Gate):
                for child in node.children:
                    self._parents.setdefault(child.name, []).append(node.name)
                    stack.append(child)

    def _check_acyclic(self) -> None:
        """Reject cycles (children must form a DAG below the top)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        colors: Dict[str, int] = {name: WHITE for name in self._nodes}
        # Iterative DFS with explicit post-processing to color nodes black.
        stack: List[Tuple[Element, bool]] = [(self.top, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                colors[node.name] = BLACK
                continue
            if colors[node.name] == BLACK:
                continue
            if colors[node.name] == GRAY:
                raise ModelError(f"cycle through element {node.name!r}")
            colors[node.name] = GRAY
            stack.append((node, True))
            if isinstance(node, Gate):
                for child in node.children:
                    if colors[child.name] == GRAY:
                        raise ModelError(
                            f"cycle: {node.name!r} -> {child.name!r}"
                        )
                    if colors[child.name] == WHITE:
                        stack.append((child, False))

    def _check_dependencies(self) -> None:
        seen: Set[str] = set()
        for dep in self.dependencies:
            if dep.name in self._nodes or dep.name in seen:
                raise ModelError(f"dependency name {dep.name!r} is not unique")
            seen.add(dep.name)
            if dep.trigger not in self._nodes:
                raise ModelError(
                    f"dependency {dep.name!r}: unknown trigger {dep.trigger!r}"
                )
            for target in dep.targets:
                element = self._nodes.get(target)
                if element is None:
                    raise ModelError(
                        f"dependency {dep.name!r}: unknown target {target!r}"
                    )
                if not element.is_basic:
                    raise ModelError(
                        f"dependency {dep.name!r}: target {target!r} must be "
                        "a basic event"
                    )

    def _check_modules(self) -> None:
        names: Set[str] = set()
        for module in list(self.inspections) + list(self.repairs):
            if module.name in names:
                raise ModelError(f"duplicate maintenance module {module.name!r}")
            names.add(module.name)
            for target in module.targets:
                element = self._nodes.get(target)
                if element is None:
                    raise ModelError(
                        f"module {module.name!r}: unknown target {target!r}"
                    )
                if not element.is_basic:
                    raise ModelError(
                        f"module {module.name!r}: target {target!r} must be "
                        "a basic event"
                    )
        for module in self.inspections:
            for target in module.targets:
                event = self._nodes[target]
                if isinstance(event, BasicEvent) and event.threshold is None:
                    raise ModelError(
                        f"inspection {module.name!r} targets {target!r}, "
                        "which has no detection threshold (threshold=None)"
                    )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Mapping[str, Element]:
        """All elements by name (read-only view)."""
        return dict(self._nodes)

    @property
    def basic_events(self) -> Dict[str, BasicEvent]:
        """Basic events by name."""
        return {
            name: node
            for name, node in self._nodes.items()
            if isinstance(node, BasicEvent)
        }

    @property
    def gates(self) -> Dict[str, Gate]:
        """Gates by name."""
        return {
            name: node
            for name, node in self._nodes.items()
            if isinstance(node, Gate)
        }

    @property
    def has_dynamic_gates(self) -> bool:
        """Whether the tree contains order-sensitive (PAND) gates."""
        return any(gate.dynamic for gate in self.gates.values())

    def element(self, name: str) -> Element:
        """Look up an element by name.

        Raises
        ------
        ModelError
            If no element with that name exists.
        """
        node = self._nodes.get(name)
        if node is None:
            raise ModelError(f"no element named {name!r} in tree {self.name!r}")
        return node

    def parents_of(self, name: str) -> Tuple[str, ...]:
        """Names of the gates that have ``name`` as a child."""
        self.element(name)
        return tuple(self._parents.get(name, ()))

    def descendants_of(self, name: str) -> Set[str]:
        """All element names reachable below ``name`` (excluding it)."""
        root = self.element(name)
        result: Set[str] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, Gate):
                for child in node.children:
                    if child.name not in result:
                        result.add(child.name)
                        stack.append(child)
        return result

    def depth(self) -> int:
        """Longest path length (in edges) from the top to a leaf."""

        cache: Dict[str, int] = {}

        def _depth(node: Element) -> int:
            if node.name in cache:
                return cache[node.name]
            if isinstance(node, Gate):
                value = 1 + max(_depth(child) for child in node.children)
            else:
                value = 0
            cache[node.name] = value
            return value

        return _depth(self.top)

    # ------------------------------------------------------------------
    # Structure function
    # ------------------------------------------------------------------
    def evaluate(self, failed: Union[Iterable[str], Mapping[str, bool]]) -> bool:
        """Evaluate the static structure function.

        Parameters
        ----------
        failed:
            Either an iterable of failed basic-event names, or a mapping
            from basic-event name to failed/not-failed.  Basic events
            not mentioned count as operational.

        Returns
        -------
        bool
            ``True`` when the top event has occurred.

        Notes
        -----
        PAND gates are evaluated order-insensitively here (as AND); the
        simulator applies exact ordered semantics.
        """
        if isinstance(failed, Mapping):
            failed_set = {name for name, state in failed.items() if state}
        else:
            failed_set = set(failed)
        unknown = failed_set - set(self.basic_events)
        if unknown:
            raise ModelError(
                f"evaluate(): unknown basic events {sorted(unknown)}"
            )

        cache: Dict[str, bool] = {}

        def _eval(node: Element) -> bool:
            hit = cache.get(node.name)
            if hit is not None:
                return hit
            if node.is_basic:
                value = node.name in failed_set
            else:
                assert isinstance(node, Gate)
                value = node.evaluate([_eval(child) for child in node.children])
            cache[node.name] = value
            return value

        return _eval(self.top)

    # ------------------------------------------------------------------
    # Rebuild helpers
    # ------------------------------------------------------------------
    def with_maintenance(
        self,
        inspections: Sequence["InspectionModule"] = (),
        repairs: Sequence["RepairModule"] = (),
    ) -> "FaultMaintenanceTree":
        """A copy of this tree with the given maintenance modules.

        The gate/event structure and dependencies are shared (they are
        immutable); only the module lists differ.  This is how strategy
        variants are derived from one base model.
        """
        return FaultMaintenanceTree(
            top=self.top,
            dependencies=self.dependencies,
            inspections=inspections,
            repairs=repairs,
            name=self.name,
        )

    def without_dependencies(self) -> "FaultMaintenanceTree":
        """A copy with all RDEPs removed (for ablation studies)."""
        return FaultMaintenanceTree(
            top=self.top,
            dependencies=(),
            inspections=self.inspections,
            repairs=self.repairs,
            name=self.name,
        )

    def with_dependency_factor(self, factor: float) -> "FaultMaintenanceTree":
        """A copy with every RDEP factor replaced by ``factor``."""
        new_deps = [
            RateDependency(dep.name, dep.trigger, dep.targets, factor)
            for dep in self.dependencies
        ]
        return FaultMaintenanceTree(
            top=self.top,
            dependencies=new_deps,
            inspections=self.inspections,
            repairs=self.repairs,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serializable description of structure + dependencies.

        Maintenance modules serialize themselves; they are included when
        present so that :meth:`from_dict` round-trips a full FMT.
        """
        ordered: List[Element] = []
        seen: Set[str] = set()

        def _walk(node: Element) -> None:
            if node.name in seen:
                return
            seen.add(node.name)
            if isinstance(node, Gate):
                for child in node.children:
                    _walk(child)
            ordered.append(node)

        _walk(self.top)
        return {
            "name": self.name,
            "top": self.top.name,
            "elements": [node.to_dict() for node in ordered],
            "dependencies": [dep.to_dict() for dep in self.dependencies],
            "inspections": [module.to_dict() for module in self.inspections],
            "repairs": [module.to_dict() for module in self.repairs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultMaintenanceTree":
        """Inverse of :meth:`to_dict`."""
        from repro.maintenance.modules import InspectionModule, RepairModule

        elements: Dict[str, Element] = {}
        for spec in data["elements"]:
            kind = spec["type"]
            if kind == "basic":
                elements[spec["name"]] = BasicEvent.from_dict(spec)
            else:
                children = [elements[name] for name in spec["children"]]
                elements[spec["name"]] = _gate_from_spec(kind, spec, children)
        dependencies = [
            RateDependency.from_dict(spec) for spec in data.get("dependencies", [])
        ]
        inspections = [
            InspectionModule.from_dict(spec) for spec in data.get("inspections", [])
        ]
        repairs = [RepairModule.from_dict(spec) for spec in data.get("repairs", [])]
        top_name = data["top"]
        if top_name not in elements:
            raise ModelError(f"top element {top_name!r} not among elements")
        return cls(
            top=elements[top_name],
            dependencies=dependencies,
            inspections=inspections,
            repairs=repairs,
            name=data.get("name", "fmt"),
        )

    def __repr__(self) -> str:
        return (
            f"FaultMaintenanceTree({self.name!r}, top={self.top.name!r}, "
            f"|events|={len(self.basic_events)}, |gates|={len(self.gates)}, "
            f"|rdep|={len(self.dependencies)}, "
            f"|inspections|={len(self.inspections)}, "
            f"|repairs|={len(self.repairs)})"
        )


def _gate_from_spec(kind: str, spec: dict, children: List[Element]) -> Gate:
    name = spec["name"]
    if kind == "and":
        return AndGate(name, children)
    if kind == "or":
        return OrGate(name, children)
    if kind == "vot":
        return VotingGate(name, spec["k"], children)
    if kind == "pand":
        return PandGate(name, children)
    if kind == "inhibit":
        return InhibitGate(name, children)
    raise ValidationError(f"unknown gate kind {kind!r} for element {name!r}")


#: Alias: a fault tree is an FMT without maintenance modules.
FaultTree = FaultMaintenanceTree
