"""Basic events and extended basic events with phased degradation.

A :class:`BasicEvent` models the failure behaviour of one component or
failure mode.  In the FMT formalism every basic event is an *extended*
basic event: its lifetime is divided into ``phases`` degradation phases,
each with an exponential sojourn time; leaving the last phase is the
failure.  A classical exponential basic event is the one-phase special
case.

The *threshold* phase is what connects degradation to maintenance: once
the component's current phase is at or beyond the threshold, a periodic
inspection will notice the degradation and can trigger a maintenance
action (cleaning, repair, replacement) before the component actually
fails.  Events with ``threshold=None`` degrade invisibly — inspections
cannot catch them, only failure reveals them.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.core.nodes import Element
from repro.stats.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    distribution_from_dict,
)

__all__ = ["BasicEvent"]


class BasicEvent(Element):
    """A (possibly extended) basic event of a fault maintenance tree.

    Parameters
    ----------
    name:
        Unique element name.
    phase_rates:
        One rate per degradation phase; the component leaves phase ``i``
        at rate ``phase_rates[i]`` (per year) and fails when it leaves
        the last phase.  Length is the number of phases.
    threshold:
        1-based index of the first phase that an inspection can detect,
        or ``None`` for a non-inspectable event.  ``threshold=1`` means
        any degradation at all is detectable; ``threshold=len(rates)``
        means only the last, most-degraded phase is detectable.
    repair_time:
        Distribution of the corrective-repair duration after this event
        has failed and the failure has been discovered.  Defaults to an
        instantaneous repair, which is adequate when downtime is not a
        studied KPI.
    description:
        Free-text description used in generated tables.
    """

    __slots__ = ("phase_rates", "threshold", "repair_time", "description")

    def __init__(
        self,
        name: str,
        phase_rates: Sequence[float],
        threshold: Optional[int] = None,
        repair_time: Optional[Distribution] = None,
        description: str = "",
    ):
        super().__init__(name)
        rates = tuple(float(rate) for rate in phase_rates)
        if not rates:
            raise ValidationError(f"{name}: at least one degradation phase required")
        for rate in rates:
            if not math.isfinite(rate) or rate <= 0.0:
                raise ValidationError(
                    f"{name}: phase rates must be positive and finite, got {rate}"
                )
        if threshold is not None:
            if int(threshold) != threshold or not 1 <= threshold <= len(rates):
                raise ValidationError(
                    f"{name}: threshold must be in 1..{len(rates)}, got {threshold}"
                )
            threshold = int(threshold)
        self.phase_rates: Tuple[float, ...] = rates
        self.threshold = threshold
        self.repair_time = repair_time if repair_time is not None else Deterministic(0.0)
        self.description = description

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def exponential(
        cls,
        name: str,
        rate: Optional[float] = None,
        mean: Optional[float] = None,
        **kwargs,
    ) -> "BasicEvent":
        """A classical one-phase exponential basic event.

        Exactly one of ``rate`` (failures per year) or ``mean`` (mean
        time to failure in years) must be given.
        """
        rate = _resolve_rate(name, rate, mean, phases=1)
        return cls(name, phase_rates=[rate], **kwargs)

    @classmethod
    def from_distribution(
        cls,
        name: str,
        distribution,
        threshold_fraction: Optional[float] = None,
        max_phases: int = 50,
        **kwargs,
    ) -> "BasicEvent":
        """Basic event approximating an arbitrary lifetime distribution.

        The distribution is converted to the FMT's phased-degradation
        form by a moment-matching Erlang approximation (see
        :func:`repro.stats.phasefit.erlang_approximation`).

        Parameters
        ----------
        distribution:
            Any :class:`~repro.stats.distributions.Distribution`.
        threshold_fraction:
            If given (in (0, 1]), the detection threshold is placed at
            that fraction of the fitted phases (at least phase 1), so
            e.g. 0.5 makes the second half of the degradation
            detectable.  ``None`` keeps the event non-inspectable.
        max_phases:
            Cap forwarded to the approximation.
        """
        from repro.stats.phasefit import erlang_approximation

        fit = erlang_approximation(distribution, max_phases=max_phases)
        threshold: Optional[int] = None
        if threshold_fraction is not None:
            if not 0.0 < threshold_fraction <= 1.0:
                raise ValidationError(
                    f"{name}: threshold_fraction must be in (0, 1], "
                    f"got {threshold_fraction}"
                )
            threshold = max(1, round(threshold_fraction * fit.phases))
        return cls.erlang(
            name,
            phases=fit.phases,
            rate=fit.erlang.rate,
            threshold=threshold,
            **kwargs,
        )

    @classmethod
    def erlang(
        cls,
        name: str,
        phases: int,
        rate: Optional[float] = None,
        mean: Optional[float] = None,
        threshold: Optional[int] = None,
        **kwargs,
    ) -> "BasicEvent":
        """An extended basic event with ``phases`` equal-rate phases.

        ``rate`` is the per-phase rate; alternatively give ``mean``, the
        mean *total* lifetime, and the per-phase rate is derived as
        ``phases / mean``.
        """
        if phases < 1:
            raise ValidationError(f"{name}: phases must be >= 1, got {phases}")
        rate = _resolve_rate(name, rate, mean, phases=phases)
        return cls(name, phase_rates=[rate] * phases, threshold=threshold, **kwargs)

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    @property
    def is_basic(self) -> bool:
        return True

    @property
    def phases(self) -> int:
        """Number of operational degradation phases."""
        return len(self.phase_rates)

    @property
    def inspectable(self) -> bool:
        """Whether periodic inspection can detect degradation."""
        return self.threshold is not None

    @property
    def is_erlang(self) -> bool:
        """Whether all phases share a single rate."""
        return len(set(self.phase_rates)) == 1

    # ------------------------------------------------------------------
    # Lifetime distribution
    # ------------------------------------------------------------------
    def mean_lifetime(self) -> float:
        """Expected time from pristine to failure (no maintenance)."""
        return sum(1.0 / rate for rate in self.phase_rates)

    def lifetime_distribution(self) -> Distribution:
        """The lifetime as a :class:`Distribution` (equal-rate events only).

        Raises
        ------
        ValidationError
            If the phases have unequal rates; use :meth:`lifetime_cdf`
            for the general hypoexponential case.
        """
        if not self.is_erlang:
            raise ValidationError(
                f"{self.name}: unequal phase rates form a hypoexponential "
                "lifetime with no closed Distribution; use lifetime_cdf()"
            )
        if self.phases == 1:
            return Exponential(rate=self.phase_rates[0])
        return Erlang(shape=self.phases, rate=self.phase_rates[0])

    def lifetime_cdf(self, t: float, from_phase: int = 0) -> float:
        """P(failure by time ``t`` | currently at ``from_phase``).

        Works for arbitrary per-phase rates by transient analysis of the
        underlying absorbing chain (matrix exponential on a matrix of
        size ``phases + 1``, which is tiny).
        """
        if t <= 0.0:
            return 0.0
        if not 0 <= from_phase <= self.phases:
            raise ValidationError(
                f"{self.name}: from_phase must be in 0..{self.phases}"
            )
        if from_phase == self.phases:
            return 1.0
        from scipy.linalg import expm

        n = self.phases - from_phase
        generator = np.zeros((n + 1, n + 1))
        for i, rate in enumerate(self.phase_rates[from_phase:]):
            generator[i, i] = -rate
            generator[i, i + 1] = rate
        probabilities = expm(generator * t)[0]
        # expm can stray an ulp outside [0, 1]; clamp for downstream
        # probability arithmetic.
        return min(1.0, max(0.0, float(probabilities[-1])))

    def phase_distribution_at(self, t: float) -> np.ndarray:
        """Distribution over phases ``0..phases`` at time ``t`` from new."""
        from scipy.linalg import expm

        n = self.phases
        generator = np.zeros((n + 1, n + 1))
        for i, rate in enumerate(self.phase_rates):
            generator[i, i] = -rate
            generator[i, i + 1] = rate
        return expm(generator * max(0.0, t))[0]

    def sample_lifetime(self, rng: np.random.Generator, from_phase: int = 0) -> float:
        """Sample a time-to-failure starting at ``from_phase``."""
        total = 0.0
        for rate in self.phase_rates[from_phase:]:
            total += rng.exponential(1.0 / rate)
        return total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serializable description of this event."""
        data = {
            "type": "basic",
            "name": self.name,
            "phase_rates": list(self.phase_rates),
            "threshold": self.threshold,
            "repair_time": self.repair_time.to_dict(),
        }
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BasicEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            phase_rates=data["phase_rates"],
            threshold=data.get("threshold"),
            repair_time=distribution_from_dict(data["repair_time"])
            if "repair_time" in data
            else None,
            description=data.get("description", ""),
        )

    def __repr__(self) -> str:
        parts = [repr(self.name), f"phases={self.phases}"]
        if self.is_erlang:
            parts.append(f"rate={self.phase_rates[0]:g}")
        else:
            parts.append(f"rates={self.phase_rates}")
        if self.threshold is not None:
            parts.append(f"threshold={self.threshold}")
        return f"BasicEvent({', '.join(parts)})"


def _resolve_rate(
    name: str, rate: Optional[float], mean: Optional[float], phases: int
) -> float:
    if (rate is None) == (mean is None):
        raise ValidationError(f"{name}: give exactly one of rate= or mean=")
    if rate is None:
        if mean <= 0:
            raise ValidationError(f"{name}: mean must be positive, got {mean}")
        rate = phases / mean
    return float(rate)
