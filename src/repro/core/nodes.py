"""Base class shared by all fault-tree elements (events and gates)."""

from __future__ import annotations

import re

from repro.errors import ValidationError

__all__ = ["Element", "validate_name"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def validate_name(name: str) -> str:
    """Check that ``name`` is a legal element name and return it.

    Names must start with a letter or underscore and may contain
    letters, digits, underscores, dots and dashes.  This keeps names
    directly usable as identifiers in the Galileo text format without
    quoting ambiguities.
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValidationError(
            f"invalid element name {name!r}: must match {_NAME_RE.pattern}"
        )
    return name


class Element:
    """A named node of a fault tree (a gate or a basic event).

    Elements are identified by name within a tree; two distinct objects
    with the same name may not appear in one tree.  Identity (not
    equality) is used for graph structure, so shared subtrees are
    represented by sharing the object.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = validate_name(name)

    @property
    def is_basic(self) -> bool:
        """Whether this element is a basic event (leaf)."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
