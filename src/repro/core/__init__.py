"""Core fault-maintenance-tree (FMT) formalism.

An FMT is a fault tree — basic events combined by AND/OR/VOT/PAND/INHIBIT
gates — extended with maintenance-aware constructs:

* **extended basic events** whose degradation progresses through a number
  of exponentially-timed phases (an Erlang/phase-type lifetime) with a
  *threshold phase* from which periodic inspections can detect the
  degradation before it turns into a failure;
* **rate dependencies (RDEP)** that accelerate the degradation of target
  events while a trigger element is failed;
* **inspection and repair modules** (see :mod:`repro.maintenance`) that
  describe when components are inspected, cleaned, repaired or renewed.

This package defines the model objects and their validation; analysis
lives in :mod:`repro.analysis` (exact, maintenance-free) and
:mod:`repro.simulation` (Monte Carlo over the full formalism).
"""

from repro.core.builder import FMTBuilder
from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree, FaultTree
from repro.core.visualize import ascii_tree, to_dot

__all__ = [
    "AndGate",
    "BasicEvent",
    "Element",
    "FMTBuilder",
    "FaultMaintenanceTree",
    "FaultTree",
    "Gate",
    "InhibitGate",
    "OrGate",
    "PandGate",
    "RateDependency",
    "VotingGate",
    "ascii_tree",
    "to_dot",
]
