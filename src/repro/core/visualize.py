"""Rendering of fault maintenance trees: ASCII outlines and Graphviz DOT.

Two renderers, no third-party dependencies:

* :func:`ascii_tree` — an indented outline for terminals and logs;
  shared subtrees are printed once and referenced by name afterwards.
* :func:`to_dot` — a Graphviz ``dot`` document with the conventional
  fault-tree shapes (gates as boxes with their connective, basic events
  as circles), RDEP arcs dashed, and maintenance module coverage drawn
  as dotted boxes.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.events import BasicEvent
from repro.core.gates import Gate, InhibitGate, OrGate, PandGate, VotingGate, AndGate
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree

__all__ = ["ascii_tree", "to_dot"]


def _gate_symbol(gate: Gate) -> str:
    if isinstance(gate, OrGate):
        return "OR"
    if isinstance(gate, VotingGate):
        return f"{gate.k}/{len(gate.children)}"
    if isinstance(gate, PandGate):
        return "PAND"
    if isinstance(gate, InhibitGate):
        return "INHIBIT"
    if isinstance(gate, AndGate):
        return "AND"
    return type(gate).__name__  # pragma: no cover - defensive


def _event_label(event: BasicEvent) -> str:
    parts = [f"phases={event.phases}"]
    if event.is_erlang:
        parts.append(f"mean={event.mean_lifetime():g}y")
    if event.threshold is not None:
        parts.append(f"threshold={event.threshold}")
    return ", ".join(parts)


def ascii_tree(tree: FaultMaintenanceTree) -> str:
    """Indented text outline of the tree, dependencies and modules."""
    lines: List[str] = [f"{tree.name}"]
    printed: Set[str] = set()

    def _walk(node: Element, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        if node.name in printed:
            lines.append(f"{prefix}{connector}{node.name} (shared, see above)")
            return
        printed.add(node.name)
        if isinstance(node, Gate):
            lines.append(f"{prefix}{connector}{node.name} [{_gate_symbol(node)}]")
            child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(node.children):
                _walk(child, child_prefix, i == len(node.children) - 1)
        else:
            assert isinstance(node, BasicEvent)
            lines.append(
                f"{prefix}{connector}{node.name} ({_event_label(node)})"
            )

    _walk(tree.top, "", True)
    for dep in tree.dependencies:
        lines.append(
            f"RDEP {dep.name}: {dep.trigger} accelerates "
            f"{', '.join(dep.targets)} x{dep.factor:g}"
        )
    for module in tree.inspections:
        lines.append(
            f"INSPECT {module.name}: every {module.period:g}y -> "
            f"{module.action.kind} {{{', '.join(module.targets)}}}"
        )
    for module in tree.repairs:
        lines.append(
            f"REPAIR {module.name}: every {module.period:g}y -> "
            f"{module.action.kind} {{{', '.join(module.targets)}}}"
        )
    return "\n".join(lines)


def to_dot(tree: FaultMaintenanceTree) -> str:
    """Graphviz DOT document of the tree.

    Render with ``dot -Tpdf`` / ``-Tsvg``; the output needs no
    libraries on the Python side.
    """
    lines = [
        f'digraph "{tree.name}" {{',
        "  rankdir=TB;",
        '  node [fontname="Helvetica"];',
    ]
    seen: Set[str] = set()

    def _declare(node: Element) -> None:
        if node.name in seen:
            return
        seen.add(node.name)
        if isinstance(node, Gate):
            lines.append(
                f'  "{node.name}" [shape=box, '
                f'label="{node.name}\\n{_gate_symbol(node)}"];'
            )
            for child in node.children:
                _declare(child)
        else:
            assert isinstance(node, BasicEvent)
            lines.append(
                f'  "{node.name}" [shape=circle, '
                f'label="{node.name}\\n{_event_label(node)}"];'
            )

    _declare(tree.top)

    def _edges(node: Element, done: Set[str]) -> None:
        if node.name in done or not isinstance(node, Gate):
            return
        done.add(node.name)
        for child in node.children:
            lines.append(f'  "{node.name}" -> "{child.name}";')
            _edges(child, done)

    _edges(tree.top, set())

    for dep in tree.dependencies:
        for target in dep.targets:
            lines.append(
                f'  "{dep.trigger}" -> "{target}" '
                f'[style=dashed, color=red, label="x{dep.factor:g}"];'
            )
    for module in tree.inspections:
        lines.append(
            f'  "{module.name}" [shape=note, color=blue, '
            f'label="{module.name}\\nevery {module.period:g}y: '
            f'{module.action.kind}"];'
        )
        for target in module.targets:
            lines.append(
                f'  "{module.name}" -> "{target}" [style=dotted, color=blue];'
            )
    for module in tree.repairs:
        lines.append(
            f'  "{module.name}" [shape=note, color=darkgreen, '
            f'label="{module.name}\\nevery {module.period:g}y: '
            f'{module.action.kind}"];'
        )
        for target in module.targets:
            lines.append(
                f'  "{module.name}" -> "{target}" '
                "[style=dotted, color=darkgreen];"
            )
    lines.append("}")
    return "\n".join(lines)
