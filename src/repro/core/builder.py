"""Fluent builder for fault maintenance trees.

The builder lets a model be declared element-by-element with children
referenced *by name*, in any order; :meth:`FMTBuilder.build` resolves
the references, constructs the gate objects bottom-up and returns a
validated :class:`~repro.core.tree.FaultMaintenanceTree`.

Example
-------
>>> from repro.core import FMTBuilder
>>> b = FMTBuilder("demo")
>>> _ = b.basic_event("pump_a", rate=0.5)
>>> _ = b.basic_event("pump_b", rate=0.5)
>>> _ = b.degraded_event("valve", phases=3, mean=10.0, threshold=2)
>>> _ = b.and_gate("pumps", ["pump_a", "pump_b"])
>>> _ = b.or_gate("top", ["pumps", "valve"])
>>> tree = b.build("top")
>>> sorted(tree.basic_events)
['pump_a', 'pump_b', 'valve']
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError, ValidationError
from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.maintenance.actions import MaintenanceAction
from repro.maintenance.modules import InspectionModule, RepairModule

__all__ = ["FMTBuilder"]


class FMTBuilder:
    """Accumulates element declarations and assembles a validated tree."""

    def __init__(self, name: str = "fmt"):
        self.name = name
        self._events: Dict[str, BasicEvent] = {}
        self._gate_specs: Dict[str, Tuple[str, Optional[int], Tuple[str, ...]]] = {}
        self._dependencies: List[RateDependency] = []
        self._inspections: List[InspectionModule] = []
        self._repairs: List[RepairModule] = []

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def basic_event(
        self,
        name: str,
        rate: Optional[float] = None,
        mean: Optional[float] = None,
        **kwargs,
    ) -> "FMTBuilder":
        """Declare a one-phase exponential basic event."""
        return self.add_event(BasicEvent.exponential(name, rate=rate, mean=mean, **kwargs))

    def degraded_event(
        self,
        name: str,
        phases: int,
        rate: Optional[float] = None,
        mean: Optional[float] = None,
        threshold: Optional[int] = None,
        **kwargs,
    ) -> "FMTBuilder":
        """Declare an extended basic event with equal-rate phases."""
        return self.add_event(
            BasicEvent.erlang(
                name, phases=phases, rate=rate, mean=mean, threshold=threshold, **kwargs
            )
        )

    def add_event(self, event: BasicEvent) -> "FMTBuilder":
        """Declare a pre-constructed basic event."""
        self._claim_name(event.name)
        self._events[event.name] = event
        return self

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def and_gate(self, name: str, children: Sequence[str]) -> "FMTBuilder":
        """Declare an AND gate over the named children."""
        return self._gate(name, "and", None, children)

    def or_gate(self, name: str, children: Sequence[str]) -> "FMTBuilder":
        """Declare an OR gate over the named children."""
        return self._gate(name, "or", None, children)

    def voting_gate(self, name: str, k: int, children: Sequence[str]) -> "FMTBuilder":
        """Declare a k-out-of-N gate over the named children."""
        return self._gate(name, "vot", k, children)

    def pand_gate(self, name: str, children: Sequence[str]) -> "FMTBuilder":
        """Declare a priority-AND gate (children must fail left-to-right)."""
        return self._gate(name, "pand", None, children)

    def inhibit_gate(
        self, name: str, condition: str, children: Sequence[str]
    ) -> "FMTBuilder":
        """Declare an INHIBIT gate: ``condition`` AND all ``children``."""
        return self._gate(name, "inhibit", None, [condition, *children])

    def _gate(
        self, name: str, kind: str, k: Optional[int], children: Sequence[str]
    ) -> "FMTBuilder":
        self._claim_name(name)
        kids = tuple(children)
        if not kids:
            raise ValidationError(f"{name}: gate needs at least one child")
        self._gate_specs[name] = (kind, k, kids)
        return self

    # ------------------------------------------------------------------
    # Dependencies and maintenance
    # ------------------------------------------------------------------
    def rdep(
        self, name: str, trigger: str, targets: Sequence[str], factor: float
    ) -> "FMTBuilder":
        """Declare a rate dependency accelerating ``targets`` by ``factor``."""
        self._dependencies.append(RateDependency(name, trigger, targets, factor))
        return self

    def inspection(
        self,
        name: str,
        period: float,
        targets: Sequence[str],
        action: Optional[MaintenanceAction] = None,
        **kwargs,
    ) -> "FMTBuilder":
        """Declare a periodic inspection module over ``targets``."""
        self._inspections.append(
            InspectionModule(name, period=period, targets=targets, action=action, **kwargs)
        )
        return self

    def repair_module(
        self,
        name: str,
        period: float,
        targets: Sequence[str],
        action: Optional[MaintenanceAction] = None,
        **kwargs,
    ) -> "FMTBuilder":
        """Declare a periodic time-based repair/renewal module."""
        self._repairs.append(
            RepairModule(name, period=period, targets=targets, action=action, **kwargs)
        )
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @property
    def declared_names(self) -> List[str]:
        """Names of all events and gates declared so far."""
        return sorted(set(self._events) | set(self._gate_specs))

    def build(self, top: str) -> FaultMaintenanceTree:
        """Resolve references and return the validated tree.

        Raises
        ------
        ModelError
            On dangling child references, cyclic gate definitions, or an
            unknown ``top`` name.
        """
        elements: Dict[str, Element] = dict(self._events)

        building: set = set()

        def _resolve(name: str) -> Element:
            node = elements.get(name)
            if node is not None:
                return node
            spec = self._gate_specs.get(name)
            if spec is None:
                raise ModelError(f"reference to undeclared element {name!r}")
            if name in building:
                raise ModelError(f"cyclic gate definition through {name!r}")
            building.add(name)
            kind, k, child_names = spec
            children = [_resolve(child) for child in child_names]
            building.discard(name)
            gate = _make_gate(kind, name, k, children)
            elements[name] = gate
            return gate

        if top not in self._events and top not in self._gate_specs:
            raise ModelError(f"unknown top element {top!r}")
        top_element = _resolve(top)
        # Resolve all declared gates so dangling definitions are caught
        # even when they are unreachable from the top.
        for name in self._gate_specs:
            _resolve(name)
        reachable = {top_element.name} | _reachable_names(top_element)
        unreachable = (set(self._events) | set(self._gate_specs)) - reachable
        if unreachable:
            raise ModelError(
                f"elements not reachable from top {top!r}: {sorted(unreachable)}"
            )
        return FaultMaintenanceTree(
            top=top_element,
            dependencies=self._dependencies,
            inspections=self._inspections,
            repairs=self._repairs,
            name=self.name,
        )

    def _claim_name(self, name: str) -> None:
        if name in self._events or name in self._gate_specs:
            raise ModelError(f"element name {name!r} declared twice")


def _make_gate(
    kind: str, name: str, k: Optional[int], children: Sequence[Element]
) -> Gate:
    if kind == "and":
        return AndGate(name, children)
    if kind == "or":
        return OrGate(name, children)
    if kind == "vot":
        assert k is not None
        return VotingGate(name, k, children)
    if kind == "pand":
        return PandGate(name, children)
    if kind == "inhibit":
        return InhibitGate(name, children)
    raise ValidationError(f"unknown gate kind {kind!r}")


def _reachable_names(root: Element) -> set:
    seen: set = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Gate):
            for child in node.children:
                if child.name not in seen:
                    seen.add(child.name)
                    stack.append(child)
    return seen
