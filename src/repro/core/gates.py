"""Gates: the logical connectives of a fault (maintenance) tree.

All gates implement ``evaluate(child_states)`` on booleans, which defines
the *static structure function* used by the analytic engines.  The
dynamic gate (priority-AND) additionally exposes an order-sensitive
evaluation used by the simulator; its static evaluation conservatively
coincides with AND, which over-approximates failure and is flagged by
the analyses that cannot treat it exactly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ValidationError
from repro.core.nodes import Element

__all__ = [
    "Gate",
    "AndGate",
    "OrGate",
    "VotingGate",
    "PandGate",
    "InhibitGate",
]


class Gate(Element):
    """Abstract gate with an ordered tuple of children.

    Children are other :class:`~repro.core.nodes.Element` objects; the
    same child object may be shared by several gates (fault trees are
    DAGs).  Gates never own their children — the tree validates global
    structure.
    """

    __slots__ = ("children",)

    #: Identifier used by the serializers; overridden by subclasses.
    kind: str = "gate"

    #: Whether the gate's output depends on the *order* of child failures.
    dynamic: bool = False

    def __init__(self, name: str, children: Sequence[Element]):
        super().__init__(name)
        kids: Tuple[Element, ...] = tuple(children)
        if len(kids) < self.min_children():
            raise ValidationError(
                f"{name}: {type(self).__name__} needs at least "
                f"{self.min_children()} children, got {len(kids)}"
            )
        seen = set()
        for child in kids:
            if not isinstance(child, Element):
                raise ValidationError(
                    f"{name}: child {child!r} is not a fault-tree element"
                )
            if child.name in seen:
                raise ValidationError(
                    f"{name}: duplicate child {child.name!r}; a gate may "
                    "reference each input at most once"
                )
            seen.add(child.name)
        self.children = kids

    @classmethod
    def min_children(cls) -> int:
        """Minimum number of children this gate type accepts."""
        return 1

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        """Static structure function of the gate."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """Serializable description (children by name)."""
        return {
            "type": self.kind,
            "name": self.name,
            "children": [child.name for child in self.children],
        }

    def __repr__(self) -> str:
        names = ", ".join(child.name for child in self.children)
        return f"{type(self).__name__}({self.name!r}, [{names}])"


class AndGate(Gate):
    """Fails when **all** children have failed."""

    __slots__ = ()
    kind = "and"

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        self._check_arity(child_states)
        return all(child_states)

    def _check_arity(self, child_states: Sequence[bool]) -> None:
        if len(child_states) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} child states, "
                f"got {len(child_states)}"
            )


class OrGate(Gate):
    """Fails when **any** child has failed."""

    __slots__ = ()
    kind = "or"

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        if len(child_states) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} child states, "
                f"got {len(child_states)}"
            )
        return any(child_states)


class VotingGate(Gate):
    """k-out-of-N gate: fails when at least ``k`` children have failed.

    ``VotingGate(k=1)`` is OR and ``k=len(children)`` is AND; the tree
    accepts these but the builder normalises them for readability.
    """

    __slots__ = ("k",)
    kind = "vot"

    def __init__(self, name: str, k: int, children: Sequence[Element]):
        super().__init__(name, children)
        if int(k) != k or not 1 <= k <= len(self.children):
            raise ValidationError(
                f"{name}: k must be in 1..{len(self.children)}, got {k}"
            )
        self.k = int(k)

    @classmethod
    def min_children(cls) -> int:
        return 2

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        if len(child_states) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} child states, "
                f"got {len(child_states)}"
            )
        return sum(bool(state) for state in child_states) >= self.k

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["k"] = self.k
        return data

    def __repr__(self) -> str:
        names = ", ".join(child.name for child in self.children)
        return f"VotingGate({self.name!r}, k={self.k}, [{names}])"


class PandGate(Gate):
    """Priority-AND: fails when all children fail **in left-to-right order**.

    Simultaneous failures count as ordered.  The static evaluation
    over-approximates by ignoring order (treats the gate as AND); the
    simulator implements the exact order-sensitive semantics via
    :meth:`evaluate_ordered`.
    """

    __slots__ = ()
    kind = "pand"
    dynamic = True

    @classmethod
    def min_children(cls) -> int:
        return 2

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        if len(child_states) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} child states, "
                f"got {len(child_states)}"
            )
        return all(child_states)

    def evaluate_ordered(self, failure_times: Sequence[float | None]) -> bool:
        """Order-sensitive evaluation from per-child failure times.

        ``failure_times[i]`` is the time at which child ``i`` (most
        recently) failed, or ``None`` if it is currently up.
        """
        if len(failure_times) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} failure times, "
                f"got {len(failure_times)}"
            )
        previous = -float("inf")
        for time in failure_times:
            if time is None or time < previous:
                return False
            previous = time
        return True


class InhibitGate(Gate):
    """AND of an enabling *condition* (first child) and the causes.

    Semantically identical to AND; kept as a separate type because fault
    tree practice distinguishes conditions from causes, and the
    serializers preserve the distinction.
    """

    __slots__ = ()
    kind = "inhibit"

    @classmethod
    def min_children(cls) -> int:
        return 2

    @property
    def condition(self) -> Element:
        """The enabling condition (first child)."""
        return self.children[0]

    def evaluate(self, child_states: Sequence[bool]) -> bool:
        if len(child_states) != len(self.children):
            raise ValidationError(
                f"{self.name}: expected {len(self.children)} child states, "
                f"got {len(child_states)}"
            )
        return all(child_states)
