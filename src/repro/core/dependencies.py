"""Rate dependencies (RDEP): degradation acceleration between elements.

The RDEP construct of fault maintenance trees expresses that the failure
of one part of the system speeds up the wear of another.  In the
EI-joint case study, broken bolts let the joint flex, which accelerates
the degradation of the glued insulation layer.

An :class:`RateDependency` names a *trigger* element (any gate or basic
event) and a set of *target* basic events.  While the trigger is in the
failed state, every phase rate of every target is multiplied by the
acceleration ``factor``.  Several dependencies on the same target
compose multiplicatively.  Because phase sojourns are exponential, the
simulator applies a rate change memorylessly by rescheduling the pending
phase transition with the new rate.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import ValidationError
from repro.core.nodes import validate_name

__all__ = ["RateDependency"]


class RateDependency:
    """Acceleration of target degradation while a trigger is failed.

    Parameters
    ----------
    name:
        Unique name of the dependency (shares the element namespace).
    trigger:
        Name of the element whose failure activates the acceleration.
    targets:
        Names of the basic events whose phase rates are accelerated.
    factor:
        Multiplicative acceleration, ``>= 1``.  ``factor=1`` makes the
        dependency inert (useful for ablations).
    """

    __slots__ = ("name", "trigger", "targets", "factor")

    def __init__(
        self, name: str, trigger: str, targets: Sequence[str], factor: float
    ):
        self.name = validate_name(name)
        self.trigger = validate_name(trigger)
        target_tuple: Tuple[str, ...] = tuple(validate_name(t) for t in targets)
        if not target_tuple:
            raise ValidationError(f"{name}: RDEP needs at least one target")
        if len(set(target_tuple)) != len(target_tuple):
            raise ValidationError(f"{name}: duplicate RDEP targets")
        if self.trigger in target_tuple:
            raise ValidationError(
                f"{name}: trigger {trigger!r} may not be among its own targets"
            )
        factor = float(factor)
        if not math.isfinite(factor) or factor < 1.0:
            raise ValidationError(
                f"{name}: acceleration factor must be >= 1, got {factor}"
            )
        self.targets = target_tuple
        self.factor = factor

    def to_dict(self) -> dict:
        """Serializable description."""
        return {
            "type": "rdep",
            "name": self.name,
            "trigger": self.trigger,
            "targets": list(self.targets),
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RateDependency":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            trigger=data["trigger"],
            targets=data["targets"],
            factor=data["factor"],
        )

    def __repr__(self) -> str:
        return (
            f"RateDependency({self.name!r}, trigger={self.trigger!r}, "
            f"targets={list(self.targets)}, factor={self.factor:g})"
        )
