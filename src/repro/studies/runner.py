"""The cross-experiment study runner: request KPIs, not simulations.

Experiments used to construct a :class:`~repro.simulation.montecarlo.
MonteCarlo` driver each and re-simulate overlapping studies from
scratch — ``fig4``/``fig5``/``fig6``/``optimum`` all evaluate the
current quarterly policy at the identical headline configuration, and
a second ``repro all`` repeated every trajectory.  The
:class:`StudyRunner` inverts the dependency: experiments describe the
study they need (:class:`StudyRequest`) and the runner decides whether
to serve it from memory, from the disk cache, or by simulating — in
the latter case with child RNG streams identical to a direct
``MonteCarlo`` run, so cached and fresh results are bit-identical.

Artifacts
---------
One simulation can back several cached *artifacts*, each content
addressed by :meth:`StudyKey.derive`:

* ``summary`` — the :class:`~repro.simulation.metrics.KpiSummary`;
* ``reliability_curve`` — survival intervals on a specific time grid;
* ``statistic:<name>`` — a named reduction of the raw trajectories
  (failure shares, incident databases, ...);
* ``rare_event`` — an importance-splitting estimate for a specific
  :class:`~repro.rareevent.estimator.RareEventConfig`.

Whenever trajectories are simulated for a curve or statistic, the
summary artifact is stored too, so e.g. ``fig4``'s current-policy run
also satisfies ``fig5``'s.

Cache behaviour surfaces through the PR-1 instrumentation counters
(``study.requests``, ``study.memo_hits``, ``study.disk_hits``,
``study.misses``, ``study.fresh_trajectories``, ``study.disk_writes``,
``study.disk_corrupt``, ``study.memo_evictions``); the CLI's
``--metrics-out`` makes them machine-checkable, which is how CI
asserts that a warm-cache rerun simulates nothing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.tree import FaultMaintenanceTree
from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import instrumentation as _obs
from repro.observability import spans as _spans
from repro.observability.instrumentation import Instrumentation
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.executor import (
    DEFAULT_CHUNK_TRAJECTORIES,
    FMTSimulator,
    SimulationConfig,
)
from repro.simulation.metrics import KpiSummary, reliability_curve
from repro.simulation.montecarlo import MonteCarlo, MonteCarloResult
from repro.simulation.trace import Trajectory
from repro.studies.cache import DiskCache
from repro.studies.key import StudyKey, canonical, study_material
from repro.stats.confidence import ConfidenceInterval

__all__ = [
    "StudyRequest",
    "StudyRunner",
    "current_runner",
    "use_runner",
    "get_runner",
    "set_default_runner",
]

logger = get_logger(__name__)

#: Studies at or above this replication count fan out to the shared
#: pool (when the runner has one); smaller studies run serially, where
#: IPC overhead would dominate.
DEFAULT_PARALLEL_THRESHOLD = 1000

#: In-memory artifact entries kept before least-recently-used eviction.
DEFAULT_MAX_MEMO_ENTRIES = 512

#: Validated simulator prototypes kept for clone-from-prototype reuse
#: before least-recently-used eviction.  A handful of models covers a
#: full ``repro all`` run; prototypes are cheap to rebuild on a miss.
DEFAULT_MAX_PROTOTYPES = 32


@dataclass(frozen=True)
class StudyRequest:
    """One fully specified Monte Carlo study.

    The fields mirror the :class:`~repro.simulation.montecarlo.
    MonteCarlo` constructor plus the replication knobs; together they
    determine the simulated trajectories and the KPI aggregation
    exactly, which is what makes the request content-addressable.
    """

    tree: FaultMaintenanceTree
    strategy: Optional[MaintenanceStrategy] = None
    horizon: float = 10.0
    cost_model: Optional[CostModel] = None
    seed: int = 0
    n_runs: int = 1
    confidence: float = 0.95
    record_events: bool = False
    kernel: str = "object"
    chunk_trajectories: int = DEFAULT_CHUNK_TRAJECTORIES

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.horizon <= 0.0:
            raise ValidationError(
                f"horizon must be positive, got {self.horizon}"
            )
        if self.chunk_trajectories < 1:
            raise ValidationError(
                "chunk_trajectories must be >= 1, "
                f"got {self.chunk_trajectories}"
            )

    def key(self) -> StudyKey:
        """The content address of this request (computed per call)."""
        return StudyKey.from_material(
            study_material(
                tree=self.tree,
                strategy=self.strategy,
                horizon=self.horizon,
                cost_model=self.cost_model,
                seed=self.seed,
                n_runs=self.n_runs,
                confidence=self.confidence,
                record_events=self.record_events,
                kernel=self.kernel,
                chunk_trajectories=self.chunk_trajectories,
            )
        )

    def simulator_material(self) -> str:
        """Canonical material of the simulator this request needs.

        Excludes the replication knobs (seed, n_runs, confidence): two
        requests that agree on this material can serve their runs from
        clones of one validated simulator prototype.
        """
        return study_material(
            tree=self.tree,
            strategy=self.strategy,
            horizon=self.horizon,
            cost_model=self.cost_model,
            seed=0,
            n_runs=1,
            confidence=0.95,
            record_events=self.record_events,
            kernel=self.kernel,
            chunk_trajectories=self.chunk_trajectories,
        )

    def to_dict(self) -> dict:
        """JSON-safe description of the request (inverse of
        :meth:`from_dict`).

        Every constituent serializes through its own ``to_dict``, so
        the round trip reconstructs a request with the identical
        :meth:`key` digest — which is what lets a JSON payload
        submitted over the wire share cache entries with in-process
        studies.  The service wire format wraps this dict in a
        versioned envelope (:mod:`repro.service.wire`).
        """
        return {
            "tree": self.tree.to_dict(),
            "strategy": (
                self.strategy.to_dict() if self.strategy is not None else None
            ),
            "horizon": self.horizon,
            "cost_model": (
                self.cost_model.to_dict()
                if self.cost_model is not None
                else None
            ),
            "seed": self.seed,
            "n_runs": self.n_runs,
            "confidence": self.confidence,
            "record_events": self.record_events,
            "kernel": self.kernel,
            "chunk_trajectories": self.chunk_trajectories,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyRequest":
        """Inverse of :meth:`to_dict`."""
        strategy = data.get("strategy")
        cost_model = data.get("cost_model")
        return cls(
            tree=FaultMaintenanceTree.from_dict(data["tree"]),
            strategy=(
                MaintenanceStrategy.from_dict(strategy)
                if strategy is not None
                else None
            ),
            horizon=float(data.get("horizon", 10.0)),
            cost_model=(
                CostModel.from_dict(cost_model)
                if cost_model is not None
                else None
            ),
            seed=int(data.get("seed", 0)),
            n_runs=int(data.get("n_runs", 1)),
            confidence=float(data.get("confidence", 0.95)),
            record_events=bool(data.get("record_events", False)),
            kernel=str(data.get("kernel", "object")),
            chunk_trajectories=int(
                data.get("chunk_trajectories", DEFAULT_CHUNK_TRAJECTORIES)
            ),
        )

    def build_simulator(self) -> FMTSimulator:
        """A validated simulator for this request (prototype material)."""
        config = SimulationConfig(
            horizon=self.horizon,
            cost_model=(
                self.cost_model if self.cost_model is not None else CostModel()
            ),
            record_events=self.record_events,
            kernel=self.kernel,
            chunk_trajectories=self.chunk_trajectories,
        )
        return FMTSimulator(self.tree, self.strategy, config=config)

    def driver(self, simulator: Optional[FMTSimulator] = None) -> MonteCarlo:
        """A fresh Monte Carlo driver for this request.

        The driver starts from the root seed, so its child streams are
        exactly those of the historical per-experiment code path.
        ``simulator`` optionally passes a validated prototype (built by
        :meth:`build_simulator` for the same request material) that the
        driver clones instead of re-validating the tree — bit-identical
        either way.
        """
        if simulator is not None:
            return MonteCarlo(
                seed=self.seed,
                record_events=self.record_events,
                simulator=simulator,
            )
        return MonteCarlo(
            self.tree,
            self.strategy,
            horizon=self.horizon,
            cost_model=self.cost_model,
            seed=self.seed,
            record_events=self.record_events,
            kernel=self.kernel,
            chunk_trajectories=self.chunk_trajectories,
        )


class StudyRunner:
    """Memoizing dispatcher for Monte Carlo studies.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent artifact cache; ``None`` (default)
        keeps memoization in-process only.
    processes:
        Size of the shared worker pool, fixed once here (``None`` picks
        :func:`~repro.simulation.parallel.default_process_count`).
        ``1`` disables parallelism entirely.
    parallel_threshold:
        Minimum ``n_runs`` for a study to use the shared pool.
    max_memo_entries:
        In-memory artifact entries kept before LRU eviction (the disk
        cache, when enabled, still holds evicted artifacts).
    instrumentation:
        Explicit metrics sink; falls back to the ambient
        :func:`repro.observability.current` at call time.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        processes: int = 1,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        max_memo_entries: int = DEFAULT_MAX_MEMO_ENTRIES,
        instrumentation: Optional[Instrumentation] = None,
    ):
        from repro.simulation.parallel import (
            SharedSimulationPool,
            default_process_count,
        )

        if processes is None:
            processes = default_process_count()
        if processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        if parallel_threshold < 1:
            raise ValidationError(
                f"parallel_threshold must be >= 1, got {parallel_threshold}"
            )
        if max_memo_entries < 1:
            raise ValidationError(
                f"max_memo_entries must be >= 1, got {max_memo_entries}"
            )
        self.disk = DiskCache(cache_dir) if cache_dir is not None else None
        self.processes = processes
        self.parallel_threshold = parallel_threshold
        self.max_memo_entries = max_memo_entries
        self.instrumentation = instrumentation
        self._memo: "OrderedDict[str, Any]" = OrderedDict()
        self._prototypes: "OrderedDict[str, FMTSimulator]" = OrderedDict()
        # The HTTP service shares one runner across worker threads;
        # the LRU bookkeeping (move_to_end + eviction) is not atomic,
        # so cache-structure mutations take this lock.  Simulation
        # itself runs outside the lock and stays concurrent.
        self._lock = threading.RLock()
        self._pool = (
            SharedSimulationPool(processes) if processes > 1 else None
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def summary(self, request: StudyRequest) -> KpiSummary:
        """KPI summary of the study (cached)."""

        def compute() -> Tuple[KpiSummary, Dict[StudyKey, Any], int]:
            result = self._simulate(request, keep_trajectories=False)
            return result.summary, {}, request.n_runs

        return self._artifact(request.key(), "summary", None, compute)

    def peek_summary(self, request: StudyRequest) -> Optional[KpiSummary]:
        """The cached summary of the study, or ``None`` — never simulates.

        The HTTP service uses this as its cache fast path: a request
        whose summary is already memoized (or on disk) is answered
        synchronously without touching the job queue.  A hit counts in
        the usual ``study.*`` instrumentation; a miss counts nothing,
        because the caller is expected to follow up with
        :meth:`summary` (which records the miss).
        """
        key = request.key().derive("summary", None)
        hit, value = self._memo_get(key.digest)
        if hit:
            self._count(_obs.STUDY_REQUESTS)
            self._count(_obs.STUDY_MEMO_HITS)
            return value
        if self.disk is not None:
            hit, value, corrupt = self.disk.load(key)
            if corrupt:
                self._count(_obs.STUDY_DISK_CORRUPT)
            if hit:
                self._count(_obs.STUDY_REQUESTS)
                self._count(_obs.STUDY_DISK_HITS)
                self._memo_put(key.digest, value)
                return value
        return None

    def result(self, request: StudyRequest) -> MonteCarloResult:
        """Like :meth:`summary`, wrapped in a :class:`MonteCarloResult`.

        Lets refactored call sites keep using the pass-through
        properties (``.unreliability``, ``.cost_per_year``, ...).
        Trajectories are never retained.
        """
        return MonteCarloResult(summary=self.summary(request))

    def reliability_curve(
        self, request: StudyRequest, times: Sequence[float]
    ) -> Tuple[np.ndarray, List[ConfidenceInterval]]:
        """Survival curve of the study on ``times`` (cached per grid)."""
        grid = [float(t) for t in times]
        base = request.key()

        def compute() -> Tuple[Any, Dict[StudyKey, Any], int]:
            # The curve only needs first-failure times, so the study
            # streams into a columnar batch instead of keeping n_runs
            # Trajectory objects alive (bit-identical intervals).
            result = self._simulate(request, keep_trajectories=False)
            material = (
                result.batch if result.batch is not None else result.trajectories
            )
            _, intervals = reliability_curve(
                material, grid, request.confidence
            )
            extras = {base.derive("summary", None): result.summary}
            return tuple(intervals), extras, request.n_runs

        intervals = self._artifact(
            base, "reliability_curve", {"grid": grid}, compute
        )
        return np.asarray(grid, dtype=float), list(intervals)

    def statistic(
        self,
        request: StudyRequest,
        name: str,
        reducer: Callable[[Sequence[Trajectory]], Any],
        version: str = "1",
    ) -> Any:
        """A named reduction of the study's raw trajectories (cached).

        ``reducer`` maps the trajectory list to a picklable value; it
        must be a pure function of the trajectories.  ``name`` and
        ``version`` are part of the content address — bump ``version``
        whenever the reduction's semantics change, or stale disk
        entries would be served for the new code.
        """

        def compute() -> Tuple[Any, Dict[StudyKey, Any], int]:
            result = self._simulate(request, keep_trajectories=True)
            value = reducer(result.trajectories)
            extras = {
                request.key().derive("summary", None): result.summary
            }
            return value, extras, request.n_runs

        return self._artifact(
            request.key(),
            f"statistic:{name}",
            {"version": version},
            compute,
        )

    def rare_event(self, request: StudyRequest, config: Any) -> Any:
        """Importance-splitting estimate for the study (cached).

        ``request.n_runs`` is ignored by the splitting estimator (the
        effort lives in ``config``); by convention requests pass
        ``n_runs=1`` so unrelated replication knobs do not fracture
        the key.
        """

        def compute() -> Tuple[Any, Dict[StudyKey, Any], int]:
            driver = request.driver(simulator=self._prototype(request))
            result = driver.run_rare_event(config, confidence=request.confidence)
            return result, {}, result.n_trajectories

        return self._artifact(
            request.key(), "rare_event", {"config": canonical(config)}, compute
        )

    def close(self) -> None:
        """Shut down the shared pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "StudyRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_info(self) -> Dict[str, int]:
        """Snapshot of the cache state (for tests and reports)."""
        return {
            "memo_entries": len(self._memo),
            "disk_entries": len(self.disk) if self.disk is not None else 0,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _instr(self) -> Optional[Instrumentation]:
        if self.instrumentation is not None:
            return self.instrumentation
        return _obs.current()

    def _count(self, name: str, amount: int = 1) -> None:
        instr = self._instr()
        if instr is not None:
            instr.count(name, amount)

    def _memo_get(self, digest: str) -> Tuple[bool, Any]:
        with self._lock:
            if digest not in self._memo:
                return False, None
            self._memo.move_to_end(digest)
            return True, self._memo[digest]

    def _memo_put(self, digest: str, value: Any) -> None:
        with self._lock:
            if digest in self._memo:
                self._memo.move_to_end(digest)
                self._memo[digest] = value
                return
            while len(self._memo) >= self.max_memo_entries:
                self._memo.popitem(last=False)
                self._count(_obs.STUDY_MEMO_EVICTIONS)
            self._memo[digest] = value

    def _store(self, key: StudyKey, value: Any) -> None:
        self._memo_put(key.digest, value)
        if self.disk is not None:
            self.disk.store(key, value)
            self._count(_obs.STUDY_DISK_WRITES)

    def _artifact(
        self,
        base: StudyKey,
        artifact: str,
        extra: Any,
        compute: Callable[[], Tuple[Any, Dict[StudyKey, Any], int]],
    ) -> Any:
        """Serve one artifact through memo -> disk -> fresh simulation.

        ``compute`` returns ``(value, extras, fresh_trajectories)``
        where ``extras`` maps sibling artifact keys to values produced
        by the same simulation (stored alongside, never overwriting a
        cached entry's identity — the keys are content addresses).
        """
        key = base.derive(artifact, extra)
        self._count(_obs.STUDY_REQUESTS)
        with _spans.span(
            "study.request",
            {"artifact": artifact, "digest": key.digest[:12]},
        ) as request_span:
            hit, value = self._memo_get(key.digest)
            if hit:
                self._count(_obs.STUDY_MEMO_HITS)
                request_span.set_attribute("outcome", "memo_hit")
                return value
            if self.disk is not None:
                hit, value, corrupt = self.disk.load(key)
                if corrupt:
                    self._count(_obs.STUDY_DISK_CORRUPT)
                if hit:
                    self._count(_obs.STUDY_DISK_HITS)
                    request_span.set_attribute("outcome", "disk_hit")
                    self._memo_put(key.digest, value)
                    return value
            self._count(_obs.STUDY_MISSES)
            request_span.set_attribute("outcome", "miss")
            value, extras, fresh = compute()
            self._count(_obs.STUDY_FRESH_TRAJECTORIES, fresh)
            request_span.set_attribute("fresh_trajectories", fresh)
            logger.debug(
                kv(
                    "study simulated",
                    artifact=artifact,
                    digest=key.digest[:12],
                    trajectories=fresh,
                )
            )
            self._store(key, value)
            for sibling_key, sibling_value in extras.items():
                if sibling_key.digest not in self._memo:
                    self._store(sibling_key, sibling_value)
            return value

    def prototype(self, request: StudyRequest) -> FMTSimulator:
        """The cached validated simulator for ``request``'s material.

        Public accessor for callers (the service's kernel router) that
        need to inspect a validated simulator without running a study;
        shares the same LRU as the study path, so the inspection is
        free for any model the runner will simulate anyway.
        """
        return self._prototype(request)

    def _prototype(self, request: StudyRequest) -> FMTSimulator:
        """The cached simulator prototype for the request's material.

        Keyed by :meth:`StudyRequest.simulator_material`, so every
        (tree, strategy, horizon, cost model) combination validates its
        tree and builds its static tables once per runner; each study
        then clones the prototype (per-run state is never shared).
        """
        digest = StudyKey.from_material(request.simulator_material()).digest
        with self._lock:
            prototype = self._prototypes.get(digest)
            if prototype is not None:
                self._prototypes.move_to_end(digest)
                return prototype
        prototype = request.build_simulator()
        with self._lock:
            while len(self._prototypes) >= DEFAULT_MAX_PROTOTYPES:
                self._prototypes.popitem(last=False)
            self._prototypes[digest] = prototype
        return prototype

    def _simulate(
        self, request: StudyRequest, keep_trajectories: bool
    ) -> MonteCarloResult:
        driver = request.driver(simulator=self._prototype(request))
        if (
            self._pool is not None
            and request.n_runs >= self.parallel_threshold
        ):
            return driver.run_parallel(
                request.n_runs,
                confidence=request.confidence,
                keep_trajectories=keep_trajectories,
                pool=self._pool,
            )
        return driver.run(
            request.n_runs,
            confidence=request.confidence,
            keep_trajectories=keep_trajectories,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        disk = "off" if self.disk is None else str(self.disk.directory)
        return (
            f"StudyRunner(disk={disk}, processes={self.processes}, "
            f"memo={len(self._memo)})"
        )


# ----------------------------------------------------------------------
# Ambient runner (mirrors repro.observability.use / current)
# ----------------------------------------------------------------------
_AMBIENT: ContextVar[Optional[StudyRunner]] = ContextVar(
    "repro_study_runner", default=None
)

_DEFAULT: Optional[StudyRunner] = None


def current_runner() -> Optional[StudyRunner]:
    """The ambient study runner, or None when none is active."""
    return _AMBIENT.get()


@contextmanager
def use_runner(runner: Optional[StudyRunner]) -> Iterator[Optional[StudyRunner]]:
    """Make ``runner`` ambient inside the block.

    ``use_runner(None)`` is a no-op passthrough, so call sites can
    write ``with use_runner(maybe_runner):`` without branching.
    """
    if runner is None:
        yield None
        return
    token = _AMBIENT.set(runner)
    try:
        yield runner
    finally:
        _AMBIENT.reset(token)


def get_runner() -> StudyRunner:
    """The ambient runner, else a process-wide default.

    The default is serial with no disk cache — pure in-process
    deduplication, safe for library use and tests (content-addressed
    keys guarantee a memoized result equals a fresh one bit for bit).
    The CLI installs its own runner, configured from ``--cache-dir``
    and friends, via :func:`use_runner`.
    """
    runner = _AMBIENT.get()
    if runner is not None:
        return runner
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StudyRunner()
    return _DEFAULT


def set_default_runner(runner: Optional[StudyRunner]) -> None:
    """Replace (or with None, reset) the process-wide default runner."""
    global _DEFAULT
    _DEFAULT = runner
