"""Cross-experiment study runner with memoized simulation cache.

Experiments describe the Monte Carlo study they need as a
:class:`StudyRequest` and obtain results through a
:class:`StudyRunner`, which dedupes identical requests within one
``repro all`` invocation, optionally persists artifacts to a disk
cache (``--cache-dir``), and serves every cache hit bit-identically to
a fresh simulation.  See :mod:`repro.studies.runner` for the design
notes and :mod:`repro.studies.key` for the content-addressing scheme.
"""

from repro.studies.cache import DiskCache
from repro.studies.key import CODE_SALT, StudyKey, canonical, study_material
from repro.studies.runner import (
    StudyRequest,
    StudyRunner,
    current_runner,
    get_runner,
    set_default_runner,
    use_runner,
)

__all__ = [
    "CODE_SALT",
    "DiskCache",
    "StudyKey",
    "StudyRequest",
    "StudyRunner",
    "canonical",
    "current_runner",
    "get_runner",
    "set_default_runner",
    "study_material",
    "use_runner",
]
