"""Disk persistence for study artifacts.

One artifact per file, named by the artifact's SHA-256 digest.  Every
file stores the full canonical key material next to the value, and a
load only counts as a hit when the stored material matches the
requested key exactly — a truncated write, a digest collision, a file
from an older cache format, or plain garbage all read back as a miss
and the study is silently recomputed (the instrumentation counters are
the only place a corrupt entry is visible).

Values are pickled: the cached objects (:class:`KpiSummary`,
confidence intervals, trajectory statistics) are plain dataclasses of
floats, which pickle round-trips bit-identically.  Writes go through a
temp file + ``os.replace`` so a crash mid-write can never leave a
half-written file under a valid name.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.observability.logging_setup import get_logger, kv
from repro.studies.key import StudyKey

__all__ = ["DiskCache"]

logger = get_logger(__name__)

#: Layout version of the on-disk entry; bump on incompatible changes.
_ENTRY_FORMAT = 1


class DiskCache:
    """Content-addressed artifact store under one directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: StudyKey) -> Path:
        """The file that does (or would) hold ``key``'s artifact."""
        return self.directory / f"{key.digest}.pkl"

    def load(self, key: StudyKey) -> Tuple[bool, Any, bool]:
        """Look up ``key``.

        Returns
        -------
        (hit, value, corrupt):
            ``hit`` tells whether a valid entry was found (``value`` is
            only meaningful then); ``corrupt`` tells whether a file
            existed but failed validation — the caller recomputes
            either way, but corrupt entries are counted separately.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return False, None, False
        except Exception:
            logger.warning(
                kv("unreadable study cache entry", path=str(path))
            )
            return False, None, True
        if (
            not isinstance(entry, dict)
            or entry.get("format") != _ENTRY_FORMAT
            or entry.get("material") != key.material
        ):
            logger.warning(
                kv("stale/mismatched study cache entry", path=str(path))
            )
            return False, None, True
        return True, entry.get("value"), False

    def store(self, key: StudyKey, value: Any) -> None:
        """Persist ``value`` under ``key`` atomically."""
        entry = {
            "format": _ENTRY_FORMAT,
            "material": key.material,
            "value": value,
        }
        path = self.path_for(key)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{key.digest[:12]}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskCache({str(self.directory)!r})"
