"""Content-addressed identities for Monte Carlo studies.

A *study* is one (model, strategy, horizon, cost model, seed, n_runs,
confidence) request for simulated KPIs.  Two requests that canonicalize
to the same :class:`StudyKey` are guaranteed to produce bit-identical
results, because every input that influences the child RNG streams or
the KPI aggregation is part of the canonical material — which is what
makes memoization and the disk cache safe.

The canonical form is a deterministic text rendering (`canonical`)
rather than a pickle: pickles are not stable across interpreter runs
for sets/dicts and would tie cache validity to import paths.  Floats
render via ``repr``, which in Python 3 is the shortest round-tripping
decimal — two floats share a rendering iff they are the same bits.

A ``CODE_SALT`` derived from the package version is folded into every
key so a release that changes simulation semantics silently invalidates
old disk entries instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro._version import __version__

__all__ = ["StudyKey", "canonical", "study_material", "CODE_SALT"]

#: Bump the format component when the canonical rendering or the cached
#: value layout changes; the package version covers semantic changes.
_FORMAT_VERSION = 1

CODE_SALT = f"repro-{__version__}/studies-v{_FORMAT_VERSION}"

#: Default vectorized chunk size, mirrored from
#: :data:`repro.simulation.executor.DEFAULT_CHUNK_TRAJECTORIES` as a
#: literal so this module stays import-light (a test asserts the two
#: agree).  Only deviations from it enter the key material.
_DEFAULT_CHUNK_TRAJECTORIES = 4096


def canonical(obj: Any) -> str:
    """Deterministic canonical rendering of a study ingredient.

    Supports the value types that appear in study requests: scalars,
    sequences, mappings, dataclasses, and model objects exposing
    ``to_dict()`` (trees, maintenance modules, actions).  Mapping
    entries are sorted, so insertion order never leaks into the key.

    Raises
    ------
    TypeError
        For objects with no canonical form — better a loud failure
        than a cache key that silently aliases distinct studies.
    """
    if obj is None:
        return "none"
    if isinstance(obj, bool):
        return "true" if obj else "false"
    if isinstance(obj, int):
        return f"int:{obj:d}"
    if isinstance(obj, float):
        # float() unboxes numpy float subclasses, whose repr would
        # otherwise render as "np.float64(...)" and fracture the key.
        return f"float:{float(obj)!r}"
    if isinstance(obj, str):
        return f"str:{json.dumps(obj)}"
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        entries = sorted(
            (canonical(key), canonical(value)) for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in entries) + "}"
    # Model objects (trees, modules, actions, dependencies) serialize
    # themselves; their dict form is the canonical description.
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return f"{type(obj).__name__}:{canonical(to_dict())}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        return f"{type(obj).__name__}:{canonical(fields)}"
    # Numpy scalars and other boxed numbers.
    item = getattr(obj, "item", None)
    if callable(item):
        return canonical(obj.item())
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a study key"
    )


def strategy_signature(strategy: Any) -> str:
    """Canonical form of a maintenance strategy, cosmetics excluded.

    ``name`` and ``description`` are display-only — the simulator never
    reads them — so they must not fracture the key: the experiments
    deliberately evaluate the same physical policy under different
    labels (``current-policy`` vs ``inspect-4x``) and should share one
    cached study.
    """
    if strategy is None:
        return "none"
    return canonical(
        {
            "inspections": strategy.inspections,
            "repairs": strategy.repairs,
            "on_system_failure": strategy.on_system_failure,
            "system_repair_time": strategy.system_repair_time,
        }
    )


def study_material(
    tree: Any,
    strategy: Any,
    horizon: float,
    cost_model: Any,
    seed: int,
    n_runs: int,
    confidence: float,
    record_events: bool,
    kernel: str = "object",
    chunk_trajectories: int = _DEFAULT_CHUNK_TRAJECTORIES,
) -> str:
    """The full canonical material of one study request.

    The sampling kernel is part of the material only when it deviates
    from the default: the vectorized kernel draws its random variates
    in a different order, so its results are not bit-identical to the
    object engine's and must not alias its cache entries — but folding
    ``"object"`` into every key would invalidate all caches written
    before the kernel knob existed.  ``chunk_trajectories`` follows the
    same rule: the vectorized kernel consumes one RNG stream per chunk,
    so a non-default chunk size yields different trajectories and must
    fracture the key, while the default (4096) stays out of the
    material to keep existing digests stable.
    """
    material = {
        "salt": CODE_SALT,
        "model": tree,
        "strategy": strategy_signature(strategy),
        "horizon": float(horizon),
        "cost_model": cost_model,
        "seed": int(seed),
        "n_runs": int(n_runs),
        "confidence": float(confidence),
        "record_events": bool(record_events),
    }
    if kernel != "object":
        material["kernel"] = str(kernel)
    if int(chunk_trajectories) != _DEFAULT_CHUNK_TRAJECTORIES:
        material["chunk_trajectories"] = int(chunk_trajectories)
    return canonical(material)


@dataclasses.dataclass(frozen=True)
class StudyKey:
    """Content address of one study artifact.

    ``digest`` is the SHA-256 of ``material`` and names the cache file;
    ``material`` rides along so a (vanishingly unlikely) digest
    collision — or a garbage file that happens to unpickle — is caught
    by exact comparison instead of being served as a hit.
    """

    digest: str
    material: str

    @classmethod
    def from_material(cls, material: str) -> "StudyKey":
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return cls(digest=digest, material=material)

    def derive(self, artifact: str, extra: Any = None) -> "StudyKey":
        """A sub-key for a derived artifact of this study.

        The summary, a reliability curve on a particular grid, and a
        named trajectory statistic are distinct artifacts of the same
        simulation; each gets its own content address so they can be
        cached independently.
        """
        material = canonical(
            {"base": self.material, "artifact": artifact, "extra": extra}
        )
        return StudyKey.from_material(material)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"StudyKey({self.digest[:12]}...)"
