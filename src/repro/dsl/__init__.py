"""Textual model interchange: an extended Galileo-style format.

Classical fault-tree tools exchange models in the *Galileo* format
(``toplevel "A"; "A" or "B" "C"; "B" lambda=0.5;``).  This package
implements a superset with the FMT constructs — degradation phases and
thresholds, RDEP dependencies, inspection and repair modules — plus a
serializer, so models round-trip losslessly through text.
"""

from repro.dsl.galileo import loads, dumps, load_file, save_file

__all__ = ["dumps", "loads", "load_file", "save_file"]
