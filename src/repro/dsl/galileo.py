"""Parser and serializer for the extended Galileo FMT format.

Grammar (one statement per ``;``, ``//`` and ``#`` comments to end of
line, names optionally double-quoted)::

    model NAME ;                               // optional display name
    toplevel NAME ;
    NAME or CHILD... ;                         // OR gate
    NAME and CHILD... ;                        // AND gate
    NAME pand CHILD... ;                       // priority-AND gate
    NAME inhibit COND CHILD... ;               // INHIBIT gate
    NAME KofN CHILD... ;                       // voting gate, e.g. 2of4
    NAME lambda=RATE [KEY=VALUE...] ;          // exponential basic event
    NAME phases=N (rate=R | mean=M)
         [threshold=K] [desc="..."] ;          // extended basic event
    NAME rates=R1,R2,... [threshold=K]
         [desc="..."] ;                        // unequal per-phase rates
    rdep NAME trigger=NAME factor=F targets=A,B ;
    inspection NAME period=P targets=A,B [action=KIND] [restore=K]
         [delay=D] [offset=O] [timing=periodic|exponential]
         [detectfailures=true|false] [detectionprobability=P] ;
    repair NAME period=P targets=A,B [action=KIND] [restore=K]
         [offset=O] [timing=...] ;

``action`` is one of ``clean``, ``repair``, ``replace``; ``restore``
gives the number of phases the action undoes (omitted = full
restoration).  The serializer emits exactly this dialect, and
``loads(dumps(tree))`` reproduces the tree.

The words ``model``, ``toplevel``, ``rdep``, ``inspection`` and
``repair`` are reserved at the head of a statement and cannot name a
gate or event.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.builder import FMTBuilder
from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.tree import FaultMaintenanceTree
from repro.errors import ParseError
from repro.maintenance.actions import MaintenanceAction
from repro.maintenance.modules import InspectionModule, RepairModule

__all__ = ["loads", "dumps", "load_file", "save_file"]

_VOTING_RE = re.compile(r"^(\d+)of(\d+)$")
_TOKEN_RE = re.compile(
    r'(?P<key>[^\s;"]+)"(?P<attached>[^"]*)"'  # key="value with spaces"
    r'|"(?P<quoted>[^"]*)"'        # quoted name
    r"|(?P<semi>;)"                # statement terminator
    r"|(?P<word>[^\s;\"]+)"        # bare word (may contain '=')
)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def loads(text: str, name: Optional[str] = None) -> FaultMaintenanceTree:
    """Parse an extended-Galileo document into a validated tree.

    The model name comes from the ``model NAME;`` statement when
    present; the ``name`` argument overrides it.
    """
    statements = _split_statements(text)
    builder = FMTBuilder("fmt")
    toplevel: Optional[str] = None
    for line_number, tokens in statements:
        try:
            toplevel = _parse_statement(builder, tokens, toplevel)
        except ParseError as exc:
            if exc.line is None:
                raise ParseError(str(exc), line=line_number) from exc
            raise
        except Exception as exc:
            raise ParseError(str(exc), line=line_number) from exc
    if toplevel is None:
        raise ParseError("no 'toplevel' statement found")
    if name is not None:
        builder.name = name
    try:
        return builder.build(toplevel)
    except ParseError:
        raise
    except Exception as exc:
        raise ParseError(str(exc)) from exc


def load_file(path: Union[str, Path]) -> FaultMaintenanceTree:
    """Parse a model file; the tree is named after the file stem."""
    path = Path(path)
    return loads(path.read_text(encoding="utf-8"), name=path.stem)


def _split_statements(text: str) -> List[Tuple[int, List[str]]]:
    statements: List[Tuple[int, List[str]]] = []
    current: List[str] = []
    current_line = 1
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = re.split(r"//|#", raw_line, maxsplit=1)[0]
        for match in _TOKEN_RE.finditer(line):
            if match.group("semi") is not None:
                if current:
                    statements.append((current_line, current))
                current = []
                continue
            if match.group("attached") is not None:
                token = match.group("key") + match.group("attached")
            elif match.group("quoted") is not None:
                token = match.group("quoted")
            else:
                token = match.group("word")
            if not current:
                current_line = line_number
            current.append(token)
    if current:
        raise ParseError("unterminated statement (missing ';')", line=current_line)
    return statements


def _parse_statement(
    builder: FMTBuilder, tokens: List[str], toplevel: Optional[str]
) -> Optional[str]:
    head = tokens[0]
    if head == "model":
        if len(tokens) != 2:
            raise ParseError(f"model expects one name, got {tokens[1:]}")
        builder.name = tokens[1]
        return toplevel
    if head == "toplevel":
        if len(tokens) != 2:
            raise ParseError(f"toplevel expects one name, got {tokens[1:]}")
        if toplevel is not None:
            raise ParseError("duplicate 'toplevel' statement")
        return tokens[1]
    if head == "rdep":
        _parse_rdep(builder, tokens)
        return toplevel
    if head == "inspection":
        _parse_module(builder, tokens, kind="inspection")
        return toplevel
    if head == "repair":
        _parse_module(builder, tokens, kind="repair")
        return toplevel
    if len(tokens) >= 2 and ("=" not in tokens[1]):
        _parse_gate(builder, tokens)
        return toplevel
    _parse_event(builder, tokens)
    return toplevel


def _parse_gate(builder: FMTBuilder, tokens: List[str]) -> None:
    name, connective, *children = tokens
    if not children:
        raise ParseError(f"gate {name!r} has no children")
    if connective == "or":
        builder.or_gate(name, children)
    elif connective == "and":
        builder.and_gate(name, children)
    elif connective == "pand":
        builder.pand_gate(name, children)
    elif connective == "inhibit":
        builder.inhibit_gate(name, children[0], children[1:])
    else:
        voting = _VOTING_RE.match(connective)
        if not voting:
            raise ParseError(
                f"unknown gate connective {connective!r} for {name!r}"
            )
        k, n = int(voting.group(1)), int(voting.group(2))
        if n != len(children):
            raise ParseError(
                f"{name!r}: {connective} expects {n} children, "
                f"got {len(children)}"
            )
        builder.voting_gate(name, k, children)


def _parse_kv(tokens: Sequence[str], context: str) -> Dict[str, str]:
    values: Dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise ParseError(f"{context}: expected key=value, got {token!r}")
        key, _, value = token.partition("=")
        if key in values:
            raise ParseError(f"{context}: duplicate key {key!r}")
        values[key.lower()] = value
    return values


def _parse_event(builder: FMTBuilder, tokens: List[str]) -> None:
    name = tokens[0]
    kv = _parse_kv(tokens[1:], context=f"event {name!r}")
    description = kv.pop("desc", "")
    if "lambda" in kv:
        if "phases" in kv or "rate" in kv or "mean" in kv or "rates" in kv:
            raise ParseError(
                f"event {name!r}: lambda= excludes phases=/rate=/mean=/rates="
            )
        rate = _as_float(name, "lambda", kv.pop("lambda"))
        threshold = _pop_int(kv, name, "threshold")
        _reject_unknown(kv, name)
        builder.add_event(
            BasicEvent(
                name,
                phase_rates=[rate],
                threshold=threshold,
                description=description,
            )
        )
        return
    if "rates" in kv:
        if "phases" in kv or "rate" in kv or "mean" in kv:
            raise ParseError(
                f"event {name!r}: rates= excludes phases=/rate=/mean="
            )
        raw = kv.pop("rates")
        rates = [_as_float(name, "rates", part) for part in raw.split(",")]
        threshold = _pop_int(kv, name, "threshold")
        _reject_unknown(kv, name)
        builder.add_event(
            BasicEvent(
                name,
                phase_rates=rates,
                threshold=threshold,
                description=description,
            )
        )
        return
    phases = _pop_int(kv, name, "phases")
    if phases is None:
        raise ParseError(f"event {name!r}: needs lambda= or phases=")
    rate = kv.pop("rate", None)
    mean = kv.pop("mean", None)
    if (rate is None) == (mean is None):
        raise ParseError(f"event {name!r}: give exactly one of rate= or mean=")
    threshold = _pop_int(kv, name, "threshold")
    _reject_unknown(kv, name)
    builder.add_event(
        BasicEvent.erlang(
            name,
            phases=phases,
            rate=_as_float(name, "rate", rate) if rate is not None else None,
            mean=_as_float(name, "mean", mean) if mean is not None else None,
            threshold=threshold,
            description=description,
        )
    )


def _parse_rdep(builder: FMTBuilder, tokens: List[str]) -> None:
    if len(tokens) < 2:
        raise ParseError("rdep needs a name")
    name = tokens[1]
    kv = _parse_kv(tokens[2:], context=f"rdep {name!r}")
    trigger = kv.pop("trigger", None)
    factor = kv.pop("factor", None)
    targets = kv.pop("targets", None)
    if trigger is None or factor is None or targets is None:
        raise ParseError(f"rdep {name!r}: needs trigger=, factor=, targets=")
    _reject_unknown(kv, name)
    builder.rdep(
        name,
        trigger=trigger,
        targets=targets.split(","),
        factor=_as_float(name, "factor", factor),
    )


def _parse_module(builder: FMTBuilder, tokens: List[str], kind: str) -> None:
    if len(tokens) < 2:
        raise ParseError(f"{kind} needs a name")
    name = tokens[1]
    kv = _parse_kv(tokens[2:], context=f"{kind} {name!r}")
    period = kv.pop("period", None)
    targets = kv.pop("targets", None)
    if period is None or targets is None:
        raise ParseError(f"{kind} {name!r}: needs period= and targets=")
    action_kind = kv.pop("action", "replace")
    restore = _pop_int(kv, name, "restore")
    action = MaintenanceAction(action_kind, restore_phases=restore)
    common = {
        "period": _as_float(name, "period", period),
        "targets": targets.split(","),
        "action": action,
    }
    if "offset" in kv:
        common["offset"] = _as_float(name, "offset", kv.pop("offset"))
    if "timing" in kv:
        common["timing"] = kv.pop("timing")
    if kind == "inspection":
        if "delay" in kv:
            common["delay"] = _as_float(name, "delay", kv.pop("delay"))
        if "detectfailures" in kv:
            common["detect_failures"] = _as_bool(
                name, "detectfailures", kv.pop("detectfailures")
            )
        if "detectionprobability" in kv:
            common["detection_probability"] = _as_float(
                name, "detectionprobability", kv.pop("detectionprobability")
            )
        _reject_unknown(kv, name)
        builder.inspection(name, **common)
    else:
        _reject_unknown(kv, name)
        builder.repair_module(name, **common)


def _pop_int(kv: Dict[str, str], name: str, key: str) -> Optional[int]:
    raw = kv.pop(key, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ParseError(f"{name!r}: {key}= expects an integer, got {raw!r}") from exc


def _as_float(name: str, key: str, raw: str) -> float:
    try:
        return float(raw)
    except (TypeError, ValueError) as exc:
        raise ParseError(f"{name!r}: {key}= expects a number, got {raw!r}") from exc


def _as_bool(name: str, key: str, raw: str) -> bool:
    lowered = raw.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ParseError(f"{name!r}: {key}= expects true/false, got {raw!r}")


def _reject_unknown(kv: Dict[str, str], name: str) -> None:
    if kv:
        raise ParseError(f"{name!r}: unknown keys {sorted(kv)}")


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def dumps(tree: FaultMaintenanceTree) -> str:
    """Serialize a tree to the extended Galileo dialect."""
    lines: List[str] = [f"// fault maintenance tree: {tree.name}"]
    lines.append(f"model {_quote(tree.name)};")
    lines.append(f"toplevel {_quote(tree.top.name)};")
    for gate_name, gate in _iter_gates(tree):
        lines.append(_gate_line(gate))
    for event_name in sorted(tree.basic_events):
        lines.append(_event_line(tree.basic_events[event_name]))
    for dep in tree.dependencies:
        lines.append(
            f"rdep {_quote(dep.name)} trigger={_quote(dep.trigger)} "
            f"factor={_num(dep.factor)} targets={','.join(dep.targets)};"
        )
    for module in tree.inspections:
        lines.append(_inspection_line(module))
    for module in tree.repairs:
        lines.append(_repair_line(module))
    return "\n".join(lines) + "\n"


def save_file(tree: FaultMaintenanceTree, path: Union[str, Path]) -> None:
    """Write :func:`dumps` output to ``path``."""
    Path(path).write_text(dumps(tree), encoding="utf-8")


def _iter_gates(tree: FaultMaintenanceTree):
    # Stable order: depth-first from the top, parents before children.
    seen = set()
    order = []

    def _walk(node):
        if node.name in seen:
            return
        seen.add(node.name)
        if isinstance(node, Gate):
            order.append((node.name, node))
            for child in node.children:
                _walk(child)

    _walk(tree.top)
    return order


def _gate_line(gate: Gate) -> str:
    children = " ".join(_quote(child.name) for child in gate.children)
    if isinstance(gate, OrGate):
        connective = "or"
    elif isinstance(gate, InhibitGate):
        connective = "inhibit"
    elif isinstance(gate, PandGate):
        connective = "pand"
    elif isinstance(gate, VotingGate):
        connective = f"{gate.k}of{len(gate.children)}"
    elif isinstance(gate, AndGate):
        connective = "and"
    else:  # pragma: no cover - defensive
        raise ParseError(f"cannot serialize gate type {type(gate).__name__}")
    return f"{_quote(gate.name)} {connective} {children};"


def _event_line(event: BasicEvent) -> str:
    parts = [_quote(event.name)]
    if event.phases == 1:
        parts.append(f"lambda={_num(event.phase_rates[0])}")
    elif event.is_erlang:
        parts.append(f"phases={event.phases}")
        parts.append(f"rate={_num(event.phase_rates[0])}")
    else:
        parts.append(
            "rates=" + ",".join(_num(rate) for rate in event.phase_rates)
        )
    if event.threshold is not None:
        parts.append(f"threshold={event.threshold}")
    if event.description:
        parts.append(f'desc="{event.description}"')
    return " ".join(parts) + ";"


def _action_parts(action: MaintenanceAction) -> List[str]:
    parts = [f"action={action.kind}"]
    if action.restore_phases is not None:
        parts.append(f"restore={action.restore_phases}")
    return parts


def _inspection_line(module: InspectionModule) -> str:
    parts = [
        f"inspection {_quote(module.name)}",
        f"period={_num(module.period)}",
        f"targets={','.join(module.targets)}",
        *_action_parts(module.action),
    ]
    if module.delay:
        parts.append(f"delay={_num(module.delay)}")
    if module.offset != module.period:
        parts.append(f"offset={_num(module.offset)}")
    if module.timing != "periodic":
        parts.append(f"timing={module.timing}")
    if not module.detect_failures:
        parts.append("detectfailures=false")
    if module.detection_probability != 1.0:
        parts.append(
            f"detectionprobability={_num(module.detection_probability)}"
        )
    return " ".join(parts) + ";"


def _repair_line(module: RepairModule) -> str:
    parts = [
        f"repair {_quote(module.name)}",
        f"period={_num(module.period)}",
        f"targets={','.join(module.targets)}",
        *_action_parts(module.action),
    ]
    if module.offset != module.period:
        parts.append(f"offset={_num(module.offset)}")
    if module.timing != "periodic":
        parts.append(f"timing={module.timing}")
    return " ".join(parts) + ";"


def _num(value: float) -> str:
    """Shortest decimal that round-trips to the same float."""
    return repr(float(value))


def _quote(name: str) -> str:
    return f'"{name}"'
