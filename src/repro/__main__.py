"""``python -m repro`` dispatches to the CLI.

``REPRO_LOG_LEVEL`` (debug/info/warning/error) pre-configures logging
before argument parsing, so even argparse-time failures of automation
wrappers get timestamped structured logs; ``--log-level`` then takes
precedence once parsed.
"""

import os
import sys

from repro.cli import main
from repro.observability.logging_setup import setup_logging

if __name__ == "__main__":
    try:
        setup_logging(os.environ.get("REPRO_LOG_LEVEL"))
    except ValueError as exc:
        print(f"REPRO_LOG_LEVEL: {exc}", file=sys.stderr)
        setup_logging(None)
    sys.exit(main())
