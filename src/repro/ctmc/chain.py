"""Sparse continuous-time Markov chains.

A :class:`CTMC` is a labelled state space with a sparse generator
matrix ``Q`` (off-diagonal entries are transition rates; rows sum to
zero) and an initial distribution.  Chains are built incrementally with
:class:`CTMCBuilder`, which accepts arbitrary hashable state labels and
assigns dense indices.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import AnalysisError, ValidationError

__all__ = ["CTMC", "CTMCBuilder"]


class CTMCBuilder:
    """Incremental construction of a CTMC.

    Adding a transition automatically registers unseen states.
    Parallel transitions between the same pair of states accumulate
    their rates.  Self-loops are rejected (they are meaningless in a
    CTMC generator).
    """

    def __init__(self):
        self._index: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._entries: Dict[Tuple[int, int], float] = {}

    def add_state(self, label: Hashable) -> int:
        """Register a state (idempotent); returns its index."""
        idx = self._index.get(label)
        if idx is None:
            idx = len(self._labels)
            self._index[label] = idx
            self._labels.append(label)
        return idx

    def add_transition(self, src: Hashable, dst: Hashable, rate: float) -> None:
        """Add a transition ``src -> dst`` with the given positive rate."""
        if rate <= 0.0 or not np.isfinite(rate):
            raise ValidationError(f"transition rate must be positive, got {rate}")
        i = self.add_state(src)
        j = self.add_state(dst)
        if i == j:
            raise ValidationError(f"self-loop on state {src!r}")
        key = (i, j)
        self._entries[key] = self._entries.get(key, 0.0) + rate

    @property
    def n_states(self) -> int:
        """Number of states registered so far."""
        return len(self._labels)

    def build(self, initial: Optional[Hashable] = None) -> "CTMC":
        """Finalize into a :class:`CTMC`.

        ``initial`` defaults to the first registered state.
        """
        if not self._labels:
            raise ValidationError("cannot build an empty CTMC")
        n = len(self._labels)
        if initial is None:
            initial_index = 0
        else:
            if initial not in self._index:
                raise ValidationError(f"unknown initial state {initial!r}")
            initial_index = self._index[initial]
        rows, cols, vals = [], [], []
        diagonal = np.zeros(n)
        for (i, j), rate in self._entries.items():
            rows.append(i)
            cols.append(j)
            vals.append(rate)
            diagonal[i] -= rate
        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diagonal)
        generator = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n, n), dtype=float
        )
        initial_dist = np.zeros(n)
        initial_dist[initial_index] = 1.0
        return CTMC(list(self._labels), generator, initial_dist)


class CTMC:
    """An immutable CTMC: labels, generator, initial distribution."""

    def __init__(
        self,
        labels: List[Hashable],
        generator: sparse.csr_matrix,
        initial: np.ndarray,
    ):
        n = len(labels)
        if generator.shape != (n, n):
            raise ValidationError(
                f"generator shape {generator.shape} does not match {n} labels"
            )
        if initial.shape != (n,):
            raise ValidationError("initial distribution has wrong length")
        if abs(initial.sum() - 1.0) > 1e-9 or np.any(initial < 0.0):
            raise ValidationError("initial is not a probability distribution")
        row_sums = np.asarray(generator.sum(axis=1)).ravel()
        if np.max(np.abs(row_sums)) > 1e-8:
            raise ValidationError("generator rows do not sum to zero")
        self.labels = list(labels)
        self._index = {label: i for i, label in enumerate(self.labels)}
        self.generator = generator
        self.initial = initial

    @property
    def n_states(self) -> int:
        """Size of the state space."""
        return len(self.labels)

    def index_of(self, label: Hashable) -> int:
        """Dense index of a state label."""
        idx = self._index.get(label)
        if idx is None:
            raise AnalysisError(f"unknown state {label!r}")
        return idx

    def exit_rates(self) -> np.ndarray:
        """Total exit rate of each state (-diagonal of the generator)."""
        return -self.generator.diagonal()

    def uniformization_rate(self) -> float:
        """A valid uniformization constant (max exit rate, floored)."""
        rates = self.exit_rates()
        peak = float(rates.max()) if len(rates) else 0.0
        return max(peak, 1e-12)

    def absorbing_states(self) -> List[int]:
        """Indices of states with no outgoing transitions."""
        rates = self.exit_rates()
        return [i for i in range(self.n_states) if rates[i] <= 1e-15]

    def __repr__(self) -> str:
        return f"CTMC(n_states={self.n_states}, nnz={self.generator.nnz})"
