"""Continuous-time Markov chain substrate and the FMT-to-CTMC compiler.

The Monte Carlo simulator is validated against exact numerics on the
Markovian fragment of the FMT formalism:

* :mod:`repro.ctmc.chain` — sparse CTMC representation and builder;
* :mod:`repro.ctmc.transient` — transient solution by uniformization,
  grid stepping, and steady-state solution;
* :mod:`repro.ctmc.compiler` — compiles an FMT (phased degradation,
  RDEP, exponentially-timed inspection/repair modules) into a CTMC and
  computes unreliability / availability / expected failures exactly.

Periodic maintenance is *deterministically* timed and therefore outside
CTMC semantics; the compiler accepts the standard exponential
approximation (same mean), and the simulator supports the same
exponential timing so that compiler and simulator can be compared on
identical semantics.
"""

from repro.ctmc.chain import CTMC, CTMCBuilder
from repro.ctmc.compiler import CompiledFMT, compile_fmt
from repro.ctmc.transient import (
    steady_state,
    transient_distribution,
    transient_grid,
)

__all__ = [
    "CTMC",
    "CTMCBuilder",
    "CompiledFMT",
    "compile_fmt",
    "steady_state",
    "transient_distribution",
    "transient_grid",
]
