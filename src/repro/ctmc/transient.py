"""Transient and steady-state solution of CTMCs.

Transient distributions use **uniformization** (Jensen's method): with
``Lambda`` at least the maximal exit rate and ``P = I + Q/Lambda``,

.. math:: \\pi(t) = \\sum_k e^{-\\Lambda t} \\frac{(\\Lambda t)^k}{k!}\\; \\pi(0) P^k

truncated when the remaining Poisson mass drops below the tolerance.
This is numerically robust (all terms non-negative) and fast for the
moderately stiff chains produced by the FMT compiler.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.ctmc.chain import CTMC
from repro.errors import AnalysisError

__all__ = ["transient_distribution", "transient_grid", "steady_state"]


def transient_distribution(
    ctmc: CTMC,
    t: float,
    initial: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """State distribution at time ``t`` by uniformization."""
    if t < 0.0:
        raise AnalysisError(f"time must be non-negative, got {t}")
    pi0 = ctmc.initial if initial is None else np.asarray(initial, dtype=float)
    if t == 0.0:
        return pi0.copy()
    rate = ctmc.uniformization_rate()
    # P = I + Q / rate, kept sparse; vector-matrix products only.
    P = sparse.identity(ctmc.n_states, format="csr") + ctmc.generator / rate

    x = rate * t
    # Iterate Poisson weights in place to avoid under/overflow.
    log_weight = -x  # log of Poisson(0; x)
    result = np.zeros_like(pi0)
    term = pi0.copy()
    accumulated = 0.0
    k = 0
    max_terms = int(x + 10.0 * math.sqrt(x) + 50)
    while accumulated < 1.0 - tol and k <= max_terms:
        weight = math.exp(log_weight)
        result += weight * term
        accumulated += weight
        k += 1
        log_weight += math.log(x) - math.log(k)
        term = term @ P
    # Renormalize the truncation remainder onto the computed mixture.
    if accumulated > 0.0:
        result /= accumulated
    return result


def transient_grid(
    ctmc: CTMC,
    times: Sequence[float],
    initial: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """Distributions at several times; rows align with ``times``.

    For a uniformly spaced, sorted grid the solution is advanced step
    by step (each step one uniformization of length ``dt``), reusing
    the previous point — much cheaper than independent solves.
    """
    grid = np.asarray(list(times), dtype=float)
    if len(grid) == 0:
        return np.zeros((0, ctmc.n_states))
    if np.any(grid < 0.0):
        raise AnalysisError("times must be non-negative")
    if np.any(np.diff(grid) < 0.0):
        raise AnalysisError("times must be sorted non-decreasingly")
    pi = (ctmc.initial if initial is None else np.asarray(initial, float)).copy()
    out = np.zeros((len(grid), ctmc.n_states))
    current_time = 0.0
    for row, t in enumerate(grid):
        dt = t - current_time
        if dt > 0.0:
            pi = transient_distribution(ctmc, dt, initial=pi, tol=tol)
            current_time = t
        out[row] = pi
    return out


def steady_state(ctmc: CTMC) -> np.ndarray:
    """Stationary distribution ``pi Q = 0`` with ``sum(pi) = 1``.

    Requires an irreducible chain (one recurrent class); chains with
    absorbing states concentrate all mass there only if reachable from
    everywhere — for general chains use transient analysis at a large
    horizon instead.

    Raises
    ------
    AnalysisError
        If the linear system is singular beyond the normalisation
        constraint (multiple recurrent classes).
    """
    n = ctmc.n_states
    if n == 1:
        return np.ones(1)
    # Solve Q^T pi^T = 0 with the last equation replaced by sum(pi)=1.
    a = ctmc.generator.transpose().tolil(copy=True)
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = spsolve(a.tocsr(), b)
    except Exception as exc:  # scipy raises various singularity errors
        raise AnalysisError(f"steady-state solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise AnalysisError("steady-state solve produced non-finite entries")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise AnalysisError("steady-state solve produced a zero vector")
    return pi / total
