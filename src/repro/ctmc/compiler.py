"""Compile a fault maintenance tree into a CTMC (exact numerics).

The Markovian fragment of the FMT formalism — phased degradation, RDEP
acceleration, *exponentially timed* inspection and repair modules with
zero planning delay — is a CTMC over the vector of component phases.
This compiler builds that chain by reachability exploration and
computes unreliability, expected number of failures and unavailability
exactly, providing the ground truth the Monte Carlo simulator is
validated against (benchmark A3).

Deterministic (periodic) module timing is outside CTMC semantics; pass
modules with ``timing="exponential"``, which the simulator also
supports, so both engines analyse *identical* semantics.

Two compilation modes:

* ``mode="unreliability"`` — the top event is absorbing; ``π_FAIL(t)``
  is the probability of failure by ``t``.
* ``mode="availability"`` — a system failure triggers corrective
  renewal as in the simulator: instantaneous when the strategy's
  ``system_repair_time`` is zero (failure-entering transitions are
  redirected to the pristine state and counted), otherwise via an
  exponential repair with the same mean.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.events import BasicEvent
from repro.core.gates import Gate
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.ctmc.chain import CTMC, CTMCBuilder
from repro.ctmc.transient import transient_grid
from repro.errors import AnalysisError, UnsupportedModelError
from repro.maintenance.strategy import MaintenanceStrategy

__all__ = ["CompiledFMT", "compile_fmt"]

_DOWN = "__DOWN__"
_FAIL = "__FAIL__"

_MAX_STATES_DEFAULT = 200_000


class CompiledFMT:
    """A compiled FMT: the CTMC plus the KPI evaluation shortcuts."""

    def __init__(
        self,
        ctmc: CTMC,
        mode: str,
        failure_flux: np.ndarray,
        down_index: Optional[int],
        fail_index: Optional[int],
    ):
        self.ctmc = ctmc
        self.mode = mode
        self._failure_flux = failure_flux
        self._down_index = down_index
        self._fail_index = fail_index

    @property
    def n_states(self) -> int:
        """Size of the reachable state space."""
        return self.ctmc.n_states

    def unreliability(self, t: float) -> float:
        """P(top event by time ``t``) (unreliability mode only)."""
        if self.mode != "unreliability":
            raise AnalysisError("unreliability() requires mode='unreliability'")
        assert self._fail_index is not None
        from repro.ctmc.transient import transient_distribution

        return float(transient_distribution(self.ctmc, t)[self._fail_index])

    def expected_failures(self, horizon: float, n_steps: int = 256) -> float:
        """E[# system failures in [0, horizon]] (availability mode).

        Computed as the integral of the instantaneous failure flux
        ``π(t)·f`` over the horizon (composite Simpson rule on a
        uniform grid of ``n_steps`` intervals).
        """
        if self.mode != "availability":
            raise AnalysisError("expected_failures() requires mode='availability'")
        if horizon <= 0.0:
            raise AnalysisError(f"horizon must be positive, got {horizon}")
        if n_steps < 2:
            raise AnalysisError(f"n_steps must be >= 2, got {n_steps}")
        if n_steps % 2 == 1:
            n_steps += 1
        times = np.linspace(0.0, horizon, n_steps + 1)
        distributions = transient_grid(self.ctmc, times)
        flux = distributions @ self._failure_flux
        weights = np.ones(n_steps + 1)
        weights[1:-1:2] = 4.0
        weights[2:-1:2] = 2.0
        step = horizon / n_steps
        return float(np.dot(weights, flux) * step / 3.0)

    def unavailability(self, horizon: float, n_steps: int = 256) -> float:
        """Time-average probability of being down over the horizon."""
        if self.mode != "availability":
            raise AnalysisError("unavailability() requires mode='availability'")
        if self._down_index is None:
            return 0.0
        if n_steps % 2 == 1:
            n_steps += 1
        times = np.linspace(0.0, horizon, n_steps + 1)
        distributions = transient_grid(self.ctmc, times)
        down = distributions[:, self._down_index]
        weights = np.ones(n_steps + 1)
        weights[1:-1:2] = 4.0
        weights[2:-1:2] = 2.0
        step = horizon / n_steps
        return float(np.dot(weights, down) * step / 3.0) / horizon


def compile_fmt(
    tree: FaultMaintenanceTree,
    strategy: Optional[MaintenanceStrategy] = None,
    mode: str = "unreliability",
    max_states: int = _MAX_STATES_DEFAULT,
) -> CompiledFMT:
    """Compile ``tree`` under ``strategy`` into a CTMC.

    Raises
    ------
    UnsupportedModelError
        For periodic (deterministic) module timing, inspection delays,
        dynamic gates, or state spaces beyond ``max_states``.
    """
    if mode not in ("unreliability", "availability"):
        raise AnalysisError(f"unknown mode {mode!r}")
    if tree.has_dynamic_gates:
        raise UnsupportedModelError(
            "PAND gates make the phase vector non-Markovian; "
            "use the simulator"
        )
    strategy = strategy if strategy is not None else MaintenanceStrategy.none()
    working = strategy.apply(tree)
    for module in list(working.inspections) + list(working.repairs):
        if module.timing != "exponential":
            raise UnsupportedModelError(
                f"module {module.name!r} has timing={module.timing!r}; the "
                "CTMC compiler needs timing='exponential'"
            )
    for module in working.inspections:
        if module.delay != 0.0:
            raise UnsupportedModelError(
                f"inspection {module.name!r} has a planning delay; "
                "the CTMC compiler requires delay=0"
            )
    if mode == "availability" and strategy.on_system_failure != "replace":
        raise UnsupportedModelError(
            "availability mode needs on_system_failure='replace'"
        )

    names: List[str] = list(working.basic_events)
    events: List[BasicEvent] = [working.basic_events[n] for n in names]
    index_of = {name: i for i, name in enumerate(names)}
    n = len(names)
    rdeps = working.dependencies

    def failed_set(state: Tuple[int, ...]) -> FrozenSet[str]:
        return frozenset(
            names[i] for i in range(n) if state[i] >= events[i].phases
        )

    element_cache: Dict[Tuple[str, FrozenSet[str]], bool] = {}

    def element_failed(element: Element, failed: FrozenSet[str]) -> bool:
        key = (element.name, failed)
        hit = element_cache.get(key)
        if hit is not None:
            return hit
        if element.is_basic:
            value = element.name in failed
        else:
            assert isinstance(element, Gate)
            value = element.evaluate(
                [element_failed(child, failed) for child in element.children]
            )
        element_cache[key] = value
        return value

    def accel_of(target_index: int, failed: FrozenSet[str]) -> float:
        factor = 1.0
        target_name = names[target_index]
        for dep in rdeps:
            if target_name in dep.targets and element_failed(
                working.element(dep.trigger), failed
            ):
                factor *= dep.factor
        return factor

    def top_failed(state: Tuple[int, ...]) -> bool:
        return element_failed(working.top, failed_set(state))

    def inspection_outcomes(state: Tuple[int, ...], module):
        """Possible post-inspection states with their probabilities.

        Failed targets are restored with certainty (when the module
        detects failures); degraded targets are each detected
        independently with the module's detection probability.
        """
        certain: List[Tuple[int, int]] = []
        probabilistic: List[Tuple[int, int]] = []
        for target in module.targets:
            i = index_of[target]
            event = events[i]
            if state[i] >= event.phases:
                if module.detect_failures:
                    certain.append((i, 0))
                continue
            threshold = event.threshold
            if threshold is not None and state[i] >= threshold:
                new_phase = module.action.resulting_phase(state[i])
                if new_phase != state[i]:
                    probabilistic.append((i, new_phase))
        p = module.detection_probability
        if p >= 1.0:
            certain.extend(probabilistic)
            probabilistic = []
        if len(probabilistic) > 12:
            raise UnsupportedModelError(
                f"inspection {module.name!r}: {len(probabilistic)} "
                "simultaneously detectable targets with imperfect "
                "detection exceed the enumeration limit"
            )
        from itertools import combinations as _combinations

        outcomes = []
        n = len(probabilistic)
        for size in range(n + 1):
            for subset in _combinations(probabilistic, size):
                weight = (p ** size) * ((1.0 - p) ** (n - size))
                if weight <= 0.0:
                    continue
                phases = list(state)
                for i, new_phase in certain:
                    phases[i] = new_phase
                for i, new_phase in subset:
                    phases[i] = new_phase
                outcomes.append((tuple(phases), weight))
        return outcomes

    def apply_repair(state: Tuple[int, ...], module) -> Tuple[int, ...]:
        phases = list(state)
        for target in module.targets:
            i = index_of[target]
            phases[i] = module.action.resulting_phase(phases[i])
        return tuple(phases)

    fresh = tuple([0] * n)
    if top_failed(fresh):
        raise AnalysisError("the pristine state already fails the top event")

    builder = CTMCBuilder()
    builder.add_state(fresh)
    instant_repair = (
        mode == "availability" and strategy.system_repair_time == 0.0
    )
    flux_entries: Dict[Tuple[int, ...], float] = {}

    frontier: List[Tuple[int, ...]] = [fresh]
    explored = {fresh}
    while frontier:
        state = frontier.pop()
        if builder.n_states > max_states:
            raise UnsupportedModelError(
                f"state space exceeds max_states={max_states}"
            )
        moves: List[Tuple[Tuple[int, ...], float, bool]] = []
        failed = failed_set(state)
        for i, event in enumerate(events):
            if state[i] >= event.phases:
                continue
            rate = event.phase_rates[state[i]] * accel_of(i, failed)
            successor = state[:i] + (state[i] + 1,) + state[i + 1:]
            moves.append((successor, rate, True))
        for module in working.inspections:
            for successor, weight in inspection_outcomes(state, module):
                if successor != state:
                    moves.append(
                        (successor, weight / module.period, False)
                    )
        for module in working.repairs:
            successor = apply_repair(state, module)
            if successor != state:
                moves.append((successor, 1.0 / module.period, False))

        for successor, rate, may_fail in moves:
            if may_fail and top_failed(successor):
                if mode == "unreliability":
                    builder.add_transition(state, _FAIL, rate)
                    continue
                flux_entries[state] = flux_entries.get(state, 0.0) + rate
                if instant_repair:
                    if fresh != state:
                        builder.add_transition(state, fresh, rate)
                    continue
                builder.add_transition(state, _DOWN, rate)
                continue
            builder.add_transition(state, successor, rate)
            if successor not in explored:
                explored.add(successor)
                frontier.append(successor)

    down_index = None
    fail_index = None
    if mode == "availability" and not instant_repair and flux_entries:
        builder.add_transition(
            _DOWN, fresh, 1.0 / strategy.system_repair_time
        )
    ctmc = builder.build(initial=fresh)
    flux = np.zeros(ctmc.n_states)
    for state, rate in flux_entries.items():
        flux[ctmc.index_of(state)] = rate
    if mode == "unreliability":
        try:
            fail_index = ctmc.index_of(_FAIL)
        except AnalysisError:
            # The top event is unreachable (e.g. fully repairable
            # before any cut set completes); add an isolated marker so
            # unreliability() cleanly returns 0.
            fail_index = None
    else:
        try:
            down_index = ctmc.index_of(_DOWN)
        except AnalysisError:
            down_index = None
    if mode == "unreliability" and fail_index is None:
        # Rebuild with an explicit unreachable FAIL state to keep the
        # query interface total.
        builder.add_state(_FAIL)
        ctmc = builder.build(initial=fresh)
        flux = np.zeros(ctmc.n_states)
        fail_index = ctmc.index_of(_FAIL)
    return CompiledFMT(
        ctmc=ctmc,
        mode=mode,
        failure_flux=flux,
        down_index=down_index,
        fail_index=fail_index,
    )
