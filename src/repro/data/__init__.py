"""Data substrate: incident databases and parameter estimation.

The paper's parameters were estimated from proprietary railway incident
registration databases plus expert interviews.  This package provides
the complete substitute pipeline:

* :mod:`repro.data.incidents` — an incident-registration database with
  the same record schema (asset id, time, failure mode, how it was
  found, what was done), plus a generator that populates it by
  simulating a fleet of assets under a ground-truth model;
* :mod:`repro.data.estimation` — maximum-likelihood fitting of
  exponential/Erlang/Weibull lifetimes (with censoring), Poisson rate
  estimation with confidence intervals, and reconstruction of component
  lifetimes from maintained-asset event streams;
* :mod:`repro.data.expert` — expert-judgment elicitation: quantile
  aggregation across experts and distribution fitting to agreed
  quantiles.

Together these close the paper's calibration loop: raw incident records
-> fitted parameters -> FMT model -> predicted failure counts compared
back against the database (experiment T3).
"""

from repro.data.estimation import (
    LifetimeSample,
    erlang_log_likelihood,
    estimate_failure_rate,
    fit_erlang,
    fit_erlang_censored,
    fit_exponential,
    fit_weibull,
    lifetimes_from_database,
    poisson_rate_interval,
)
from repro.data.expert import (
    ExpertJudgment,
    aggregate_judgments,
    fit_erlang_to_quantiles,
)
from repro.data.incidents import (
    IncidentDatabase,
    IncidentRecord,
    generate_incident_database,
)

__all__ = [
    "ExpertJudgment",
    "IncidentDatabase",
    "IncidentRecord",
    "LifetimeSample",
    "aggregate_judgments",
    "erlang_log_likelihood",
    "estimate_failure_rate",
    "fit_erlang",
    "fit_erlang_censored",
    "fit_erlang_to_quantiles",
    "fit_exponential",
    "fit_weibull",
    "generate_incident_database",
    "lifetimes_from_database",
    "poisson_rate_interval",
]
