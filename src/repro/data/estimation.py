"""Parameter estimation from incident data.

Maximum-likelihood fitting of the lifetime distributions used by the
FMT formalism, with right-censoring support (assets still alive at the
end of the observation window), Poisson rate estimation with exact
confidence intervals, and a reconstruction step that turns a maintained
asset's event stream back into component lifetime observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import special, stats as sps

from repro.data.incidents import IncidentDatabase
from repro.errors import EstimationError
from repro.stats.confidence import ConfidenceInterval
from repro.stats.distributions import Erlang, Exponential, Weibull

__all__ = [
    "fit_exponential",
    "fit_erlang",
    "fit_erlang_censored",
    "fit_weibull",
    "erlang_log_likelihood",
    "estimate_failure_rate",
    "poisson_rate_interval",
    "lifetimes_from_database",
    "LifetimeSample",
]


@dataclass(frozen=True)
class LifetimeSample:
    """Observed or censored component lifetimes.

    ``observed`` are complete times-to-failure; ``censored`` are
    durations after which the component was still working (observation
    ended or the component was preventively replaced).
    """

    observed: Tuple[float, ...]
    censored: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for value in list(self.observed) + list(self.censored):
            if value < 0.0 or not math.isfinite(value):
                raise EstimationError(f"invalid duration {value}")

    @property
    def n_observed(self) -> int:
        """Number of complete (uncensored) lifetimes."""
        return len(self.observed)

    @property
    def total_exposure(self) -> float:
        """Total time on test (observed + censored durations)."""
        return float(sum(self.observed) + sum(self.censored))


def fit_exponential(sample: LifetimeSample) -> Exponential:
    """MLE of an exponential lifetime under right censoring.

    The estimator is the classical ``events / total time on test``.
    """
    if sample.n_observed == 0:
        raise EstimationError("cannot fit exponential: no observed failures")
    exposure = sample.total_exposure
    if exposure <= 0.0:
        raise EstimationError("cannot fit exponential: zero total exposure")
    return Exponential(rate=sample.n_observed / exposure)


def erlang_log_likelihood(samples: Sequence[float], shape: int, rate: float) -> float:
    """Log-likelihood of complete samples under Erlang(shape, rate)."""
    if shape < 1 or rate <= 0.0:
        raise EstimationError(f"invalid Erlang parameters ({shape}, {rate})")
    x = np.asarray(samples, dtype=float)
    if np.any(x <= 0.0):
        raise EstimationError("Erlang samples must be positive")
    n = len(x)
    return float(
        n * shape * math.log(rate)
        - n * special.gammaln(shape)
        + (shape - 1) * np.sum(np.log(x))
        - rate * np.sum(x)
    )


def fit_erlang(
    samples: Sequence[float], max_phases: int = 12
) -> Erlang:
    """MLE of an Erlang lifetime from complete samples.

    For each candidate phase count ``k`` the rate MLE is closed-form
    (``k / mean``); the phase count is chosen by maximum likelihood.
    A single observation cannot discriminate phase counts and is
    rejected.
    """
    x = [float(value) for value in samples]
    if len(x) < 2:
        raise EstimationError(
            f"need at least 2 samples to fit an Erlang, got {len(x)}"
        )
    if any(value <= 0.0 for value in x):
        raise EstimationError("Erlang samples must be positive")
    mean = sum(x) / len(x)
    best: Optional[Tuple[float, int, float]] = None
    for shape in range(1, max_phases + 1):
        rate = shape / mean
        loglik = erlang_log_likelihood(x, shape, rate)
        if best is None or loglik > best[0]:
            best = (loglik, shape, rate)
    assert best is not None
    return Erlang(shape=best[1], rate=best[2])


def fit_erlang_censored(sample: LifetimeSample, shape: int) -> Erlang:
    """MLE of an Erlang rate with *known* phase count, under censoring.

    Used when the degradation structure (number of phases) is known
    from engineering knowledge but the time scale must come from data
    that is heavily right-censored — the typical situation for rare
    failure modes observed over a finite window.  The rate maximises

    ``sum_obs log f(x; shape, rate) + sum_cens log S(c; shape, rate)``

    by bounded 1-D search on the log-rate.
    """
    from scipy import optimize

    if shape < 1:
        raise EstimationError(f"shape must be >= 1, got {shape}")
    if sample.n_observed == 0:
        raise EstimationError("cannot fit: no observed failures")
    observed = np.asarray(sample.observed, dtype=float)
    censored = np.asarray(sample.censored, dtype=float)
    if np.any(observed <= 0.0):
        raise EstimationError("observed lifetimes must be positive")

    def negative_log_likelihood(log_rate: float) -> float:
        rate = math.exp(log_rate)
        value = float(
            np.sum(sps.gamma.logpdf(observed, a=shape, scale=1.0 / rate))
        )
        positive_censoring = censored[censored > 0.0]
        if len(positive_censoring):
            value += float(
                np.sum(
                    sps.gamma.logsf(positive_censoring, a=shape, scale=1.0 / rate)
                )
            )
        return -value

    # Bracket around the naive exposure-based estimate.
    rough = shape * sample.n_observed / max(sample.total_exposure, 1e-12)
    result = optimize.minimize_scalar(
        negative_log_likelihood,
        bounds=(math.log(rough) - 8.0, math.log(rough) + 8.0),
        method="bounded",
    )
    if not result.success:
        raise EstimationError("censored Erlang fit did not converge")
    return Erlang(shape=shape, rate=math.exp(float(result.x)))


def fit_weibull(samples: Sequence[float]) -> Weibull:
    """MLE of a Weibull lifetime from complete samples (scipy-based)."""
    x = np.asarray(list(samples), dtype=float)
    if len(x) < 2:
        raise EstimationError(f"need at least 2 samples, got {len(x)}")
    if np.any(x <= 0.0):
        raise EstimationError("Weibull samples must be positive")
    shape, _, scale = sps.weibull_min.fit(x, floc=0.0)
    return Weibull(scale=float(scale), shape=float(shape))


def poisson_rate_interval(
    count: int, exposure: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Exact (Garwood) confidence interval for a Poisson rate.

    ``count`` occurrences over ``exposure`` asset-years.
    """
    if count < 0:
        raise EstimationError(f"count must be >= 0, got {count}")
    if exposure <= 0.0:
        raise EstimationError(f"exposure must be positive, got {exposure}")
    alpha = 1.0 - confidence
    lower = 0.0
    if count > 0:
        lower = sps.chi2.ppf(alpha / 2.0, 2 * count) / 2.0 / exposure
    upper = sps.chi2.ppf(1.0 - alpha / 2.0, 2 * (count + 1)) / 2.0 / exposure
    return ConfidenceInterval(count / exposure, float(lower), float(upper), confidence)


def estimate_failure_rate(
    database: IncidentDatabase,
    component: Optional[str] = None,
    kind: str = "failure",
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Occurrence rate (per asset-year) of a record kind, with CI.

    With ``component=None`` and ``kind="system_failure"`` this is the
    headline statistic of the validation experiment: the observed
    number of service-affecting failures per joint-year.
    """
    count = database.count(kind, component)
    return poisson_rate_interval(count, database.joint_years, confidence)


def lifetimes_from_database(
    database: IncidentDatabase, component: str
) -> LifetimeSample:
    """Reconstruct component lifetimes from a maintained asset's log.

    A lifetime runs from the component's last full restoration (asset
    installation, a ``replace``, or a system renewal) to its next
    ``failure`` record.  Partial restorations (``clean``/``repair``)
    reset degradation only partially and would bias a lifetime fit, so
    any window containing one is discarded.  The final window of each
    asset, censored by the end of observation, enters as a censored
    duration.
    """
    observed: List[float] = []
    censored: List[float] = []
    for joint_id in range(database.n_joints):
        window_start = 0.0
        tainted = False
        for record in database.for_joint(joint_id):
            restores = (
                record.component == component and record.kind == "replace"
            ) or record.kind == "system_restored"
            if record.component == component and record.kind == "failure":
                if not tainted:
                    observed.append(record.time - window_start)
                # The failure ends the window; the next restoration
                # (replace or system renewal) starts a fresh one.
                tainted = True
            elif restores:
                window_start = record.time
                tainted = False
            elif record.component == component and record.kind in (
                "clean",
                "repair",
            ):
                tainted = True
        if not tainted:
            censored.append(database.window - window_start)
    if not observed and not censored:
        raise EstimationError(
            f"no usable lifetime windows for component {component!r}"
        )
    return LifetimeSample(tuple(observed), tuple(censored))
