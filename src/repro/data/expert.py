"""Expert-judgment elicitation and aggregation.

Where incident data is too sparse (rare failure modes), the paper's
parameters came from structured interviews with maintenance engineers.
The standard elicitation protocol asks each expert for quantiles of the
quantity of interest (e.g. "in how many years would 5% / 50% / 95% of
joints show this defect?"); this module aggregates the answers across
experts and fits an Erlang degradation model to the agreed quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from scipy import optimize, stats as sps

from repro.errors import EstimationError
from repro.stats.distributions import Erlang

__all__ = ["ExpertJudgment", "aggregate_judgments", "fit_erlang_to_quantiles"]


@dataclass(frozen=True)
class ExpertJudgment:
    """One expert's quantile assessments of a lifetime (years).

    ``quantiles`` maps probability levels in (0, 1) to assessed times;
    ``weight`` allows performance-based (Cooke-style) weighting, with
    equal weights as the default protocol.
    """

    expert: str
    quantiles: Mapping[float, float]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.quantiles:
            raise EstimationError(f"{self.expert}: no quantiles given")
        previous_level, previous_value = -1.0, 0.0
        for level in sorted(self.quantiles):
            value = self.quantiles[level]
            if not 0.0 < level < 1.0:
                raise EstimationError(
                    f"{self.expert}: quantile level {level} not in (0, 1)"
                )
            if value <= 0.0 or not math.isfinite(value):
                raise EstimationError(
                    f"{self.expert}: quantile value {value} must be positive"
                )
            if level > previous_level and value < previous_value:
                raise EstimationError(
                    f"{self.expert}: quantiles must be non-decreasing"
                )
            previous_level, previous_value = level, value
        if self.weight <= 0.0:
            raise EstimationError(f"{self.expert}: weight must be positive")


def aggregate_judgments(
    judgments: Sequence[ExpertJudgment],
) -> Dict[float, float]:
    """Weight-averaged quantiles over the levels all experts assessed.

    Only levels present in *every* judgment are aggregated (mixing
    levels would silently compare different questions).
    """
    if not judgments:
        raise EstimationError("no judgments to aggregate")
    common = set(judgments[0].quantiles)
    for judgment in judgments[1:]:
        common &= set(judgment.quantiles)
    if not common:
        raise EstimationError("experts share no common quantile levels")
    total_weight = sum(j.weight for j in judgments)
    return {
        level: sum(j.weight * j.quantiles[level] for j in judgments) / total_weight
        for level in sorted(common)
    }


def fit_erlang_to_quantiles(
    quantiles: Mapping[float, float],
    max_phases: int = 12,
) -> Erlang:
    """Fit an Erlang lifetime to elicited quantiles.

    For each candidate phase count the rate is optimised to minimise
    the squared relative error between the Erlang quantile function and
    the elicited values; the phase count with the smallest residual
    wins.  Relative (log-space) error keeps the long right tail from
    dominating the fit.
    """
    if len(quantiles) < 2:
        raise EstimationError("need at least two quantiles to fit a shape")
    levels = sorted(quantiles)
    targets = [quantiles[level] for level in levels]
    if any(t <= 0.0 for t in targets):
        raise EstimationError("quantile values must be positive")

    best: Optional[Tuple[float, int, float]] = None
    for shape in range(1, max_phases + 1):

        def residual(log_rate: float, shape: int = shape) -> float:
            rate = math.exp(log_rate)
            total = 0.0
            for level, target in zip(levels, targets):
                predicted = sps.gamma.ppf(level, a=shape, scale=1.0 / rate)
                total += (math.log(predicted) - math.log(target)) ** 2
            return total

        # Initial guess: match the median.
        median_target = targets[len(targets) // 2]
        rough_rate = shape / max(median_target, 1e-12)
        result = optimize.minimize_scalar(
            residual,
            bracket=(math.log(rough_rate) - 2.0, math.log(rough_rate) + 2.0),
        )
        if not result.success:  # pragma: no cover - optimizer rarely fails
            continue
        score = float(result.fun)
        if best is None or score < best[0]:
            best = (score, shape, math.exp(float(result.x)))
    if best is None:
        raise EstimationError("Erlang quantile fit did not converge")
    return Erlang(shape=best[1], rate=best[2])
