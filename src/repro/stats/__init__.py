"""Statistical substrate: lifetime distributions, confidence intervals,
and sequential stopping rules for Monte Carlo estimation.

This package is self-contained (it only uses numpy/scipy) and is shared
by the fault-tree core, the discrete-event simulator, and the parameter
estimation code.
"""

from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    proportion_confidence_interval,
    wilson_interval,
)
from repro.stats.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    Weibull,
    distribution_from_dict,
)
from repro.stats.phasefit import (
    ErlangFit,
    erlang_approximation,
    kolmogorov_distance,
)
from repro.stats.sequential import RelativePrecisionRule, RunningStatistics

__all__ = [
    "ConfidenceInterval",
    "Deterministic",
    "Distribution",
    "Erlang",
    "ErlangFit",
    "Exponential",
    "LogNormal",
    "RelativePrecisionRule",
    "RunningStatistics",
    "Uniform",
    "Weibull",
    "distribution_from_dict",
    "erlang_approximation",
    "kolmogorov_distance",
    "mean_confidence_interval",
    "proportion_confidence_interval",
    "wilson_interval",
]
