"""Lifetime distributions used by fault-tree events and maintenance.

Every distribution implements the small :class:`Distribution` interface:
sampling with an explicit :class:`numpy.random.Generator` (the library
never touches global RNG state), the cumulative distribution function,
its complement (survival function), density, mean, and a dictionary
round-trip used by the Galileo serializer.

Times are non-negative and, by library convention, measured in years.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Type

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Distribution",
    "Exponential",
    "Erlang",
    "Weibull",
    "Deterministic",
    "Uniform",
    "LogNormal",
    "distribution_from_dict",
]


class Distribution(ABC):
    """A non-negative continuous (or degenerate) lifetime distribution."""

    #: Short identifier used in serialized form; set by subclasses.
    kind: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one sample (``size=None``) or an array of samples."""

    @abstractmethod
    def cdf(self, t: float) -> float:
        """Probability that the lifetime is at most ``t``."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value of the distribution."""

    def survival(self, t: float) -> float:
        """Probability that the lifetime exceeds ``t``."""
        return 1.0 - self.cdf(t)

    def hazard_integral(self, t: float) -> float:
        """Cumulative hazard ``H(t) = -ln S(t)``; ``inf`` once S(t)=0."""
        s = self.survival(t)
        if s <= 0.0:
            return math.inf
        return -math.log(s)

    @abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Serializable description; inverse of :func:`distribution_from_dict`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value}" for key, value in self.to_dict().items() if key != "kind"
        )
        return f"{type(self).__name__}({params})"


def _require_positive(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


@dataclass(frozen=True, repr=False)
class Exponential(Distribution):
    """Exponential lifetime with failure rate ``rate`` (per year)."""

    rate: float
    kind = "exponential"

    def __post_init__(self) -> None:
        _require_positive("rate", self.rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Build from a mean time to failure instead of a rate."""
        return cls(rate=1.0 / _require_positive("mean", mean))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(scale=1.0 / self.rate, size=size)

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-self.rate * t)

    def mean(self) -> float:
        return 1.0 / self.rate

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True, repr=False)
class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` iid exponential phases.

    This is the degradation model of extended basic events: a component
    traverses ``shape`` degradation phases, each exponentially
    distributed with rate ``rate``, and fails on leaving the last phase.
    The mean lifetime is ``shape / rate``.
    """

    shape: int
    rate: float
    kind = "erlang"

    def __post_init__(self) -> None:
        if int(self.shape) != self.shape or self.shape < 1:
            raise ValidationError(f"shape must be a positive integer, got {self.shape}")
        _require_positive("rate", self.rate)

    @classmethod
    def from_mean(cls, shape: int, mean: float) -> "Erlang":
        """Build an Erlang with ``shape`` phases and the given mean."""
        return cls(shape=shape, rate=shape / _require_positive("mean", mean))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(shape=self.shape, scale=1.0 / self.rate, size=size)

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        # 1 - sum_{n<shape} e^{-rt} (rt)^n / n!, computed stably.
        x = self.rate * t
        term = math.exp(-x)
        total = term
        for n in range(1, self.shape):
            term *= x / n
            total += term
        return max(0.0, 1.0 - total)

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        """Variance ``shape / rate**2``."""
        return self.shape / (self.rate * self.rate)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "shape": self.shape, "rate": self.rate}


@dataclass(frozen=True, repr=False)
class Weibull(Distribution):
    """Weibull lifetime with ``scale`` (years) and ``shape`` parameters.

    ``shape > 1`` models wear-out (increasing hazard), ``shape < 1``
    infant mortality, ``shape == 1`` reduces to the exponential.
    """

    scale: float
    shape: float
    kind = "weibull"

    def __post_init__(self) -> None:
        _require_positive("scale", self.scale)
        _require_positive("shape", self.shape)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.scale * rng.weibull(self.shape, size=size)

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-((t / self.scale) ** self.shape))

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "scale": self.scale, "shape": self.shape}


@dataclass(frozen=True, repr=False)
class Deterministic(Distribution):
    """Degenerate distribution: the lifetime is exactly ``value`` years.

    Used for scheduled events such as periodic inspections.
    """

    value: float
    kind = "deterministic"

    def __post_init__(self) -> None:
        if not math.isfinite(self.value) or self.value < 0.0:
            raise ValidationError(
                f"value must be a non-negative finite number, got {self.value}"
            )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    def cdf(self, t: float) -> float:
        return 1.0 if t >= self.value else 0.0

    def mean(self) -> float:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


@dataclass(frozen=True, repr=False)
class Uniform(Distribution):
    """Uniform lifetime on ``[low, high]`` years."""

    low: float
    high: float
    kind = "uniform"

    def __post_init__(self) -> None:
        if not (0.0 <= self.low < self.high):
            raise ValidationError(
                f"require 0 <= low < high, got low={self.low}, high={self.high}"
            )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size=size)

    def cdf(self, t: float) -> float:
        if t <= self.low:
            return 0.0
        if t >= self.high:
            return 1.0
        return (t - self.low) / (self.high - self.low)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "low": self.low, "high": self.high}


@dataclass(frozen=True, repr=False)
class LogNormal(Distribution):
    """Log-normal lifetime; ``mu``/``sigma`` are of the underlying normal."""

    mu: float
    sigma: float
    kind = "lognormal"

    def __post_init__(self) -> None:
        _require_positive("sigma", self.sigma)
        if not math.isfinite(self.mu):
            raise ValidationError(f"mu must be finite, got {self.mu}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        z = (math.log(t) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "mu": self.mu, "sigma": self.sigma}


_KINDS: Dict[str, Type[Distribution]] = {
    cls.kind: cls
    for cls in (Exponential, Erlang, Weibull, Deterministic, Uniform, LogNormal)
}


def distribution_from_dict(data: Dict[str, Any]) -> Distribution:
    """Reconstruct a distribution from its :meth:`Distribution.to_dict` form.

    Raises
    ------
    ValidationError
        If the ``kind`` key is missing or unknown, or parameters are bad.
    """
    if "kind" not in data:
        raise ValidationError(f"distribution dict lacks 'kind': {data!r}")
    kind = data["kind"]
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValidationError(
            f"unknown distribution kind {kind!r}; known: {sorted(_KINDS)}"
        )
    params = {key: value for key, value in data.items() if key != "kind"}
    return cls(**params)
