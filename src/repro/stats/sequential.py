"""Streaming statistics and sequential stopping for Monte Carlo runs.

:class:`RunningStatistics` implements Welford's online algorithm so the
Monte Carlo driver never has to keep per-run sample arrays in memory.
:class:`RelativePrecisionRule` wraps the standard "run until the CI
half-width is below x% of the estimate" stopping rule used by
statistical model checkers, with a minimum-sample guard so the rule
cannot fire on noise from the first few runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from scipy import stats as sps

from repro.stats.confidence import ConfidenceInterval

__all__ = ["RunningStatistics", "RelativePrecisionRule"]


@dataclass
class RunningStatistics:
    """Welford online mean/variance accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> None:
        """Fold an iterable of observations."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return math.inf
        return math.sqrt(self.variance / self.count)

    def confidence_interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Student-t interval around the running mean."""
        if self.count < 2:
            return ConfidenceInterval(self.mean, -math.inf, math.inf, confidence)
        critical = float(sps.t.ppf(0.5 + 0.5 * confidence, df=self.count - 1))
        half = critical * self.std_error
        return ConfidenceInterval(
            self.mean, self.mean - half, self.mean + half, confidence
        )

    def merge(self, other: "RunningStatistics") -> "RunningStatistics":
        """Combine two accumulators (Chan's parallel update)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self


@dataclass
class RelativePrecisionRule:
    """Stop when the CI half-width is within ``relative_error`` of the mean.

    Parameters
    ----------
    relative_error:
        Target relative half-width, e.g. ``0.05`` for +/-5%.
    confidence:
        Confidence level of the interval the rule checks.
    min_samples:
        Never stop before this many samples have been observed.
    max_samples:
        Always stop once this many samples have been observed (a budget
        guard for estimates whose true value is zero, where the relative
        criterion can never be met).
    """

    relative_error: float = 0.05
    confidence: float = 0.95
    min_samples: int = 100
    max_samples: int = 1_000_000

    def __post_init__(self) -> None:
        if self.relative_error <= 0.0:
            raise ValueError(f"relative_error must be > 0, got {self.relative_error}")
        if self.min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {self.min_samples}")
        if self.max_samples < self.min_samples:
            raise ValueError("max_samples must be >= min_samples")

    def should_stop(self, statistics: RunningStatistics) -> bool:
        """Whether sampling can stop given the accumulated statistics."""
        if statistics.count >= self.max_samples:
            return True
        if statistics.count < self.min_samples:
            return False
        interval = statistics.confidence_interval(self.confidence)
        return interval.relative_half_width <= self.relative_error
