"""Phase-type (Erlang) approximation of general lifetime distributions.

The FMT formalism requires exponentially-timed degradation phases, but
field data is often summarised by a non-exponential lifetime (Weibull,
log-normal).  The canonical bridge is a **moment-matching Erlang
approximation**: an Erlang with ``N`` phases has coefficient of
variation ``1/sqrt(N)``, so choosing

    N = round(1 / CV^2),  rate = N / mean

matches the first two moments as closely as an Erlang can.  For
CV > 1 (more variable than exponential) the best Erlang is the
exponential itself (N = 1); matching such distributions more closely
needs hyper-exponentials, which the formalism's degradation metaphor
does not cover — the fit quality report makes the mismatch visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.stats.distributions import Distribution, Erlang

__all__ = ["ErlangFit", "erlang_approximation", "kolmogorov_distance"]


@dataclass(frozen=True)
class ErlangFit:
    """An Erlang approximation plus its quality diagnostics."""

    erlang: Erlang
    target_mean: float
    target_cv: float
    #: Kolmogorov (sup-norm) distance between target and fit CDFs.
    kolmogorov: float

    @property
    def phases(self) -> int:
        """Number of phases of the fitted Erlang."""
        return self.erlang.shape


def erlang_approximation(
    distribution: Distribution,
    max_phases: int = 50,
    mean: Optional[float] = None,
    cv: Optional[float] = None,
) -> ErlangFit:
    """Moment-matching Erlang approximation of ``distribution``.

    Parameters
    ----------
    distribution:
        The target lifetime; its mean is taken analytically, its
        coefficient of variation numerically (unless given).
    max_phases:
        Cap on the phase count (very deterministic lifetimes would
        otherwise demand huge chains).
    mean, cv:
        Optional overrides when the moments are known exactly.

    Returns
    -------
    ErlangFit
        The approximation with its Kolmogorov distance to the target.
    """
    target_mean = mean if mean is not None else distribution.mean()
    if not math.isfinite(target_mean) or target_mean <= 0.0:
        raise EstimationError(f"target mean must be positive, got {target_mean}")
    if cv is None:
        cv = _numeric_cv(distribution, target_mean)
    if cv <= 0.0:
        raise EstimationError(f"coefficient of variation must be > 0, got {cv}")

    phases = max(1, min(max_phases, round(1.0 / (cv * cv))))
    erlang = Erlang(shape=phases, rate=phases / target_mean)
    distance = kolmogorov_distance(distribution, erlang)
    return ErlangFit(
        erlang=erlang,
        target_mean=target_mean,
        target_cv=cv,
        kolmogorov=distance,
    )


def kolmogorov_distance(
    first: Distribution, second: Distribution, points: int = 400
) -> float:
    """Numerical sup-norm distance between two lifetime CDFs.

    Evaluated on a grid spanning both distributions' mass (up to the
    larger ~99.9th percentile found by doubling search).
    """
    horizon = max(first.mean(), second.mean())
    while (
        min(first.cdf(horizon), second.cdf(horizon)) < 0.999
        and horizon < 1e9
    ):
        horizon *= 2.0
    grid = np.linspace(0.0, horizon, points)
    worst = 0.0
    for t in grid:
        worst = max(worst, abs(first.cdf(float(t)) - second.cdf(float(t))))
    return worst


def _numeric_cv(distribution: Distribution, mean: float) -> float:
    """Coefficient of variation via numeric integration of E[T^2].

    Uses the tail formula ``E[T^2] = 2 * integral of t * S(t) dt``,
    which only needs the survival function.
    """
    from scipy import integrate

    horizon = mean
    while distribution.cdf(horizon) < 0.9999 and horizon < 1e9 * mean:
        horizon *= 2.0
    second_moment, _ = integrate.quad(
        lambda t: 2.0 * t * distribution.survival(t),
        0.0,
        horizon,
        limit=200,
    )
    variance = second_moment - mean * mean
    if variance <= 0.0:
        # Degenerate (deterministic) distributions: tiny positive CV so
        # the approximation takes the maximum allowed phase count.
        return 1e-6
    return math.sqrt(variance) / mean
