"""Confidence intervals for Monte Carlo estimators.

The simulator reports every KPI as a point estimate together with a
:class:`ConfidenceInterval`.  Means use the Student-t interval;
probabilities (reliability estimates) use the Wilson score interval,
which behaves sensibly for probabilities near 0 or 1 where the normal
approximation collapses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from scipy import stats as sps

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "proportion_confidence_interval",
    "wilson_interval",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return 0.5 * (self.upper - self.lower)

    @property
    def relative_half_width(self) -> float:
        """Half-width divided by |estimate|; ``inf`` for a zero estimate."""
        if self.estimate == 0.0:
            return math.inf
        return self.half_width / abs(self.estimate)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        # Degenerate intervals (n <= 1) carry infinite bounds so the
        # sequential stopping rules keep iterating; reports render them
        # as "n/a" instead of leaking "-inf" into tables and exports.
        pct = 100.0 * self.confidence
        lower = f"{self.lower:.6g}" if math.isfinite(self.lower) else "n/a"
        upper = f"{self.upper:.6g}" if math.isfinite(self.upper) else "n/a"
        return f"{self.estimate:.6g} [{lower}, {upper}] @{pct:.0f}%"


def mean_confidence_interval(
    samples: Union[Sequence[float], np.ndarray], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    Accepts any 1-D array-like; a float64 numpy array is consumed
    without conversion, which is what the columnar KPI path hands in.
    The reductions run at C speed but in strict left-to-right order
    (``np.cumsum``), so the result is bit-identical to the historical
    ``sum()``-based implementation for the same values — the golden
    KPI fixtures pin this.

    With fewer than two samples the interval degenerates to
    ``(-inf, inf)`` around the single observation (or 0 for no samples),
    which keeps sequential-stopping loops simple: they just keep going.
    """
    values = np.asarray(samples, dtype=np.float64)
    n = int(values.size)
    if n == 0:
        return ConfidenceInterval(0.0, -math.inf, math.inf, confidence)
    mean = float(np.cumsum(values)[-1]) / n
    if n == 1:
        return ConfidenceInterval(mean, -math.inf, math.inf, confidence)
    deviations = values - mean
    variance = float(np.cumsum(deviations * deviations)[-1]) / (n - 1)
    half = _t_half_width(n, variance, confidence)
    return ConfidenceInterval(mean, mean - half, mean + half, confidence)


def _t_half_width(n: int, variance: float, confidence: float) -> float:
    if variance <= 0.0:
        return 0.0
    critical = sps.t.ppf(0.5 + 0.5 * confidence, df=n - 1)
    return float(critical) * math.sqrt(variance / n)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Preferred over the Wald interval because it never escapes ``[0, 1]``
    and has reasonable coverage for extreme proportions, which is the
    common case when estimating small unreliabilities.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes} successes of {trials} trials")
    if trials == 0:
        return ConfidenceInterval(0.0, 0.0, 1.0, confidence)
    z = float(sps.norm.ppf(0.5 + 0.5 * confidence))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    lower = max(0.0, center - spread)
    upper = min(1.0, center + spread)
    return ConfidenceInterval(p_hat, lower, upper, confidence)


def proportion_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Alias for :func:`wilson_interval`, the library's default choice."""
    return wilson_interval(successes, trials, confidence)
