"""Discrete-event Monte Carlo simulation of fault maintenance trees.

The layering is:

* :mod:`repro.simulation.engine` — a generic discrete-event core
  (calendar queue, cancellable events, deterministic tie-breaking);
* :mod:`repro.simulation.executor` — executes one trajectory of an FMT
  under a maintenance strategy: phase-type degradation, RDEP
  acceleration, periodic inspections and repairs, system-failure
  response, full cost accounting;
* :mod:`repro.simulation.trace` — the per-trajectory record;
* :mod:`repro.simulation.batch` — columnar batches of trajectory KPI
  material (packed numpy columns + streaming accumulator);
* :mod:`repro.simulation.metrics` — KPI estimators over trajectories
  or batches, vectorized and bit-identical either way;
* :mod:`repro.simulation.montecarlo` — the replication driver with
  confidence intervals and sequential stopping;
* :mod:`repro.simulation.parallel` — multiprocess fan-out with
  bit-identical results.

Every layer accepts an optional
:class:`~repro.observability.instrumentation.Instrumentation` (event
counters, per-trajectory timers) — see :mod:`repro.observability`.
"""

from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.engine import Engine, ScheduledEvent
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.metrics import (
    KpiSummary,
    availability_curve,
    reliability_curve,
    summarize,
)
from repro.simulation.montecarlo import MonteCarlo, MonteCarloResult
from repro.simulation.parallel import (
    default_process_count,
    sample_parallel,
    sample_parallel_batch,
    simulate_batch,
    simulate_batch_columns,
)
from repro.simulation.trace import ComponentEvent, Trajectory

__all__ = [
    "ComponentEvent",
    "Engine",
    "FMTSimulator",
    "KpiSummary",
    "MonteCarlo",
    "MonteCarloResult",
    "ScheduledEvent",
    "SimulationConfig",
    "Trajectory",
    "TrajectoryAccumulator",
    "TrajectoryBatch",
    "availability_curve",
    "default_process_count",
    "reliability_curve",
    "sample_parallel",
    "sample_parallel_batch",
    "simulate_batch",
    "simulate_batch_columns",
    "summarize",
]
