"""Discrete-event Monte Carlo simulation of fault maintenance trees.

The layering is:

* :mod:`repro.simulation.engine` — a generic discrete-event core
  (calendar queue, cancellable events, deterministic tie-breaking);
* :mod:`repro.simulation.executor` — executes one trajectory of an FMT
  under a maintenance strategy: phase-type degradation, RDEP
  acceleration, periodic inspections and repairs, system-failure
  response, full cost accounting;
* :mod:`repro.simulation.trace` — the per-trajectory record;
* :mod:`repro.simulation.batch` — columnar batches of trajectory KPI
  material (packed numpy columns + streaming accumulator);
* :mod:`repro.simulation.metrics` — KPI estimators over trajectories
  or batches, vectorized and bit-identical either way;
* :mod:`repro.simulation.montecarlo` — the replication driver with
  confidence intervals and sequential stopping;
* :mod:`repro.simulation.parallel` — multiprocess fan-out with
  bit-identical results;
* :mod:`repro.simulation.vectorized` — the lockstep struct-of-arrays
  sampling kernel (``SimulationConfig(kernel="vectorized")``), with
  the object engine as fallback and correctness oracle;
* :mod:`repro.simulation.differential` — the kernel-equivalence
  harness (same-seed distributional comparison of the two kernels).

Every layer accepts an optional
:class:`~repro.observability.instrumentation.Instrumentation` (event
counters, per-trajectory timers) — see :mod:`repro.observability`.
"""

from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.differential import (
    KernelComparisonReport,
    compare_kernels,
)
from repro.simulation.engine import Engine, ScheduledEvent
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.metrics import (
    KpiSummary,
    availability_curve,
    reliability_curve,
    summarize,
)
from repro.simulation.montecarlo import MonteCarlo, MonteCarloResult
from repro.simulation.parallel import (
    default_process_count,
    sample_parallel,
    sample_parallel_batch,
    simulate_batch,
    simulate_batch_columns,
)
from repro.simulation.trace import ComponentEvent, Trajectory
from repro.simulation.vectorized import (
    VectorizedKernel,
    iter_vectorized_batches,
    simulate_batch_columns_vectorized,
    vectorized_fallback_reason,
)

__all__ = [
    "ComponentEvent",
    "Engine",
    "FMTSimulator",
    "KernelComparisonReport",
    "KpiSummary",
    "MonteCarlo",
    "MonteCarloResult",
    "ScheduledEvent",
    "SimulationConfig",
    "Trajectory",
    "TrajectoryAccumulator",
    "TrajectoryBatch",
    "VectorizedKernel",
    "availability_curve",
    "compare_kernels",
    "default_process_count",
    "iter_vectorized_batches",
    "reliability_curve",
    "sample_parallel",
    "sample_parallel_batch",
    "simulate_batch",
    "simulate_batch_columns",
    "simulate_batch_columns_vectorized",
    "summarize",
    "vectorized_fallback_reason",
]
