"""Monte Carlo replication driver with confidence intervals.

:class:`MonteCarlo` owns the reproducibility story: a single integer
seed expands via :class:`numpy.random.SeedSequence` into one independent
RNG stream per trajectory, so results are invariant to batching and
fully reproducible.

Two modes are provided: a fixed replication count (:meth:`MonteCarlo.run`)
and sequential estimation to a target relative precision
(:meth:`MonteCarlo.run_to_precision`), mirroring the statistical
model-checking workflow the paper's analyses used.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tree import FaultMaintenanceTree
from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import instrumentation as _obs
from repro.observability import spans as _spans
from repro.observability.instrumentation import Instrumentation
from repro.observability.logging_setup import get_logger, kv
from repro.observability.progress import (
    ProgressEvent,
    ProgressReporter,
    current_progress,
)
from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.executor import (
    DEFAULT_CHUNK_TRAJECTORIES,
    FMTSimulator,
    SimulationConfig,
)
from repro.simulation.metrics import (
    KpiSummary,
    Trajectories,
    reliability_curve,
    summarize,
)
from repro.simulation.trace import Trajectory
from repro.stats.confidence import ConfidenceInterval
from repro.stats.sequential import RelativePrecisionRule, RunningStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.rareevent.estimator import RareEventConfig, RareEventResult
    from repro.simulation.parallel import SharedSimulationPool

__all__ = ["MonteCarlo", "MonteCarloResult"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class MonteCarloResult:
    """Result of a Monte Carlo study: KPIs plus optional raw material.

    ``trajectories`` carries the full objects only when the study was
    run with ``keep_trajectories=True``.  ``batch`` carries the packed
    KPI columns (:class:`~repro.simulation.batch.TrajectoryBatch`)
    whenever the driver took the streaming columnar path — enough for
    :meth:`reliability_at` and further aggregation at a small fraction
    of the object list's footprint.
    """

    summary: KpiSummary
    trajectories: Optional[Tuple[Trajectory, ...]] = None
    batch: Optional[TrajectoryBatch] = None

    # Convenience pass-throughs used everywhere in the experiments.
    @property
    def n_runs(self) -> int:
        """Number of simulated trajectories."""
        return self.summary.n_runs

    @property
    def unreliability(self) -> ConfidenceInterval:
        """P(failure within horizon), with CI."""
        return self.summary.unreliability

    @property
    def reliability(self) -> float:
        """1 - unreliability point estimate."""
        return self.summary.reliability

    @property
    def failures_per_year(self) -> ConfidenceInterval:
        """Expected number of system failures per year, with CI."""
        return self.summary.failures_per_year

    @property
    def availability(self) -> ConfidenceInterval:
        """Mean fraction of time the system is up, with CI."""
        return self.summary.availability

    @property
    def cost_per_year(self) -> ConfidenceInterval:
        """Expected annual total cost, with CI."""
        return self.summary.cost_per_year

    def reliability_at(
        self, times: Sequence[float], confidence: float = 0.95
    ) -> Tuple[np.ndarray, list]:
        """Survival curve on a grid (from kept trajectories or the batch)."""
        if self.trajectories is not None:
            return reliability_curve(self.trajectories, times, confidence)
        if self.batch is not None:
            return reliability_curve(self.batch, times, confidence)
        raise ValidationError(
            "reliability_at() needs the run's raw material (a trajectory "
            "batch or keep_trajectories=True in run())"
        )


class MonteCarlo:
    """Replicated simulation of one (model, strategy) pair.

    Parameters
    ----------
    tree:
        The fault maintenance tree (maintenance modules on the tree are
        replaced by the strategy's).
    strategy:
        Maintenance strategy to apply; defaults to corrective-only.
    horizon:
        Trajectory length in years.
    cost_model:
        Cost model for the cost KPI; optional.
    seed:
        Root seed; every trajectory gets an independent child stream.
    record_events:
        Forwarded to :class:`~repro.simulation.executor.SimulationConfig`.
    instrumentation:
        Optional :class:`~repro.observability.instrumentation.Instrumentation`
        collecting simulation counters plus the ``sim.simulate.seconds``
        and ``mc.summarize.seconds`` timers.  Observational only — KPIs
        are bit-identical with or without it.  Falls back to the
        ambient instrumentation (:func:`repro.observability.current`)
        when None.
    simulator:
        Validated :class:`~repro.simulation.executor.FMTSimulator`
        prototype to clone instead of building one from ``tree`` and
        ``strategy`` — skips strategy application and tree validation,
        which dominate setup cost when many studies share one model
        (see :class:`repro.studies.runner.StudyRunner`).  Mutually
        exclusive with ``tree``/``strategy``/``cost_model``;
        ``horizon``, if given, must agree with the prototype's.
        Results are bit-identical to the equivalent ``tree`` +
        ``strategy`` construction.
    kernel:
        Trajectory sampler for the batch drivers (:meth:`run`,
        :meth:`run_parallel`): ``"object"`` or ``"vectorized"`` (see
        :class:`~repro.simulation.executor.SimulationConfig`).  ``None``
        (the default) keeps the prototype's kernel, or ``"object"``
        when building from a tree.  The per-trajectory entry points
        (:meth:`sample`, :meth:`run_to_precision`, rare-event
        estimation) always use the object engine.
    chunk_trajectories:
        Lockstep chunk size for the vectorized kernel (see
        :class:`~repro.simulation.executor.SimulationConfig`).  ``None``
        (the default) keeps the prototype's / config default value.
    """

    def __init__(
        self,
        tree: Optional[FaultMaintenanceTree] = None,
        strategy: Optional[MaintenanceStrategy] = None,
        horizon: Optional[float] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        record_events: bool = False,
        instrumentation: Optional[Instrumentation] = None,
        rare_event: Optional["RareEventConfig"] = None,
        simulator: Optional[FMTSimulator] = None,
        kernel: Optional[str] = None,
        chunk_trajectories: Optional[int] = None,
    ):
        if simulator is not None:
            if tree is not None or strategy is not None or cost_model is not None:
                raise ValidationError(
                    "simulator= is mutually exclusive with tree/strategy/cost_model"
                )
            config = simulator.config
            if horizon is not None and horizon != config.horizon:
                raise ValidationError(
                    f"horizon={horizon:g} conflicts with the prototype's "
                    f"horizon {config.horizon:g}"
                )
            if record_events and not config.record_events:
                raise ValidationError(
                    "record_events=True conflicts with the prototype's "
                    "record_events=False configuration"
                )
            self.simulator = simulator.clone()
            overrides = {}
            if (
                instrumentation is not None
                and instrumentation is not config.instrumentation
            ):
                overrides["instrumentation"] = instrumentation
            if kernel is not None and kernel != config.kernel:
                overrides["kernel"] = kernel
            if (
                chunk_trajectories is not None
                and chunk_trajectories != config.chunk_trajectories
            ):
                overrides["chunk_trajectories"] = chunk_trajectories
            if overrides:
                # replace() re-runs config validation, so an invalid
                # kernel or kernel/record_events conflict raises here.
                self.simulator.config = replace(config, **overrides)
        else:
            if tree is None:
                raise ValidationError("give either tree= or simulator=")
            config = SimulationConfig(
                horizon=horizon if horizon is not None else 10.0,
                cost_model=cost_model if cost_model is not None else CostModel(),
                record_events=record_events,
                instrumentation=instrumentation,
                kernel=kernel if kernel is not None else "object",
                chunk_trajectories=(
                    chunk_trajectories
                    if chunk_trajectories is not None
                    else DEFAULT_CHUNK_TRAJECTORIES
                ),
            )
            self.simulator = FMTSimulator(tree, strategy, config=config)
        self.instrumentation = instrumentation
        self.seed = seed
        # Stored only; consumed exclusively by run_rare_event().  The
        # constructor performs no RNG activity for it, so crude-MC runs
        # are bit-identical with the subsystem configured but unused.
        self.rare_event = rare_event
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams_used = 0

    @property
    def horizon(self) -> float:
        """Trajectory length in years."""
        return self.simulator.config.horizon

    def _next_rng(self) -> np.random.Generator:
        child = self._seed_sequence.spawn(1)[0]
        self._streams_used += 1
        return np.random.default_rng(child)

    def _resolve_instrumentation(self) -> Optional[Instrumentation]:
        """Explicit instrumentation, else the simulator's, else ambient."""
        if self.instrumentation is not None:
            return self.instrumentation
        config_instrumentation = self.simulator.config.instrumentation
        if config_instrumentation is not None:
            return config_instrumentation
        return _obs.current()

    @staticmethod
    def _resolve_progress(
        progress: Optional[ProgressReporter],
    ) -> Optional[ProgressReporter]:
        """Explicit reporter, else the ambient one, else None."""
        return progress if progress is not None else current_progress()

    @staticmethod
    def _progress_step(n_runs: int) -> int:
        """Trajectories between progress events for an n-run study."""
        return max(1, min(1000, n_runs // 50))

    def _summarize(
        self, trajectories: Trajectories, confidence: float
    ) -> KpiSummary:
        """KPI aggregation, timed when instrumentation is active."""
        instr = self.instrumentation
        if instr is None:
            instr = _obs.current()
        if instr is None:
            return summarize(trajectories, confidence)
        with instr.timer(_obs.TIMER_SUMMARIZE).time():
            return summarize(trajectories, confidence)

    def sample(self, n_runs: int) -> List[Trajectory]:
        """Simulate ``n_runs`` fresh trajectories and return them raw."""
        if n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
        return [self.simulator.simulate(self._next_rng()) for _ in range(n_runs)]

    def sample_batch(self, n_runs: int) -> TrajectoryBatch:
        """Simulate ``n_runs`` fresh trajectories as packed batch columns.

        Consumes exactly the same child seed streams as :meth:`sample`,
        and each trajectory object is folded into the accumulator as
        soon as it is produced — resident memory stays O(columns)
        instead of O(n_runs) objects.  The resulting batch yields
        KPIs bit-identical to ``sample``'s object list.
        """
        if n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
        accumulator = TrajectoryAccumulator(horizon=self.horizon)
        for _ in range(n_runs):
            accumulator.add(self.simulator.simulate(self._next_rng()))
        return accumulator.finalize()

    def run_parallel(
        self,
        n_runs: int,
        processes: Optional[int] = None,
        confidence: float = 0.95,
        keep_trajectories: bool = False,
        pool: Optional["SharedSimulationPool"] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> MonteCarloResult:
        """Like :meth:`run`, fanned out over worker processes.

        The child RNG streams are identical to a serial :meth:`run`
        from the same driver state, so the results are bit-identical —
        parallelism is purely a wall-clock optimization.

        ``processes=None`` (the default) picks a sensible fan-out from
        the schedulable CPU count, capped so a small study does not pay
        the startup cost of idle workers; explicit values must be >= 1.
        Passing a :class:`~repro.simulation.parallel.SharedSimulationPool`
        reuses its workers instead of spawning a dedicated pool (the
        pool's size then wins over ``processes``).

        Unless ``keep_trajectories=True``, the raw material comes back
        as a :class:`~repro.simulation.batch.TrajectoryBatch` on the
        result; with ``record_events=False`` (the default) the workers
        themselves ship packed columns instead of pickled object lists.

        With telemetry attached — instrumentation (explicit or
        ambient), an ambient span collector, or a progress reporter —
        each worker chunk runs under a ``worker.chunk`` span parented
        to this call's ``mc.run_parallel`` span and ships its metrics
        registry back for merging, so parallel profiles report worker-
        side counters and per-worker ``sim.worker.<n>.*`` utilization
        gauges.  All of it is passive: results stay bit-identical.
        """
        from repro.simulation.parallel import (
            WorkerTelemetry,
            default_process_count,
            sample_parallel,
            sample_parallel_batch,
        )

        if n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
        if pool is not None:
            processes = pool.processes
        elif processes is None:
            processes = default_process_count(n_runs)
        elif processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        logger.info(kv("run_parallel fan-out", processes=processes, runs=n_runs))
        with _spans.span(
            "mc.run_parallel", {"n_runs": n_runs, "processes": processes}
        ) as run_span:
            reporter = self._resolve_progress(progress)
            instrumentation = self._resolve_instrumentation()
            collector = _spans.current_collector()
            telemetry = None
            if (
                instrumentation is not None
                or collector is not None
                or reporter is not None
            ):
                context = run_span.context
                telemetry = WorkerTelemetry(
                    instrumentation=instrumentation,
                    collector=collector,
                    span_parent=(
                        context.to_dict() if context is not None else None
                    ),
                    progress=reporter,
                )
            seeds = self._seed_sequence.spawn(n_runs)
            self._streams_used += n_runs
            vectorized = self.simulator.config.kernel == "vectorized"
            if vectorized or (
                not keep_trajectories
                and not self.simulator.config.record_events
            ):
                # Compact IPC: workers reduce trajectories to KPI columns
                # and the driver never materializes the object list.  The
                # vectorized kernel always takes this path (its native
                # output is columns); kept trajectories are then rebuilt
                # from the batch.
                batch = sample_parallel_batch(
                    self.simulator, seeds, processes, pool=pool,
                    telemetry=telemetry,
                )
                summary = self._summarize(batch, confidence)
                if keep_trajectories:
                    return MonteCarloResult(
                        summary=summary,
                        trajectories=tuple(batch.to_trajectories()),
                        batch=batch,
                    )
                return MonteCarloResult(summary=summary, batch=batch)
            trajectories = sample_parallel(
                self.simulator, seeds, processes, pool=pool, telemetry=telemetry
            )
            if keep_trajectories:
                summary = self._summarize(trajectories, confidence)
                return MonteCarloResult(
                    summary=summary, trajectories=tuple(trajectories)
                )
            # Events were recorded but the objects are not kept: ship the
            # objects (they carry the events) but hand back only the batch.
            batch = TrajectoryBatch.from_trajectories(trajectories)
            return MonteCarloResult(
                summary=self._summarize(batch, confidence), batch=batch
            )

    def run(
        self,
        n_runs: int,
        confidence: float = 0.95,
        keep_trajectories: bool = False,
        progress: Optional[ProgressReporter] = None,
    ) -> MonteCarloResult:
        """Run a fixed number of replications and summarize KPIs.

        With ``keep_trajectories=False`` (the default) the trajectories
        are streamed into a :class:`~repro.simulation.batch.
        TrajectoryBatch` as they are simulated — peak memory is one
        trajectory plus the packed columns, independent of ``n_runs`` —
        and the batch rides along on the result for curve estimation.
        KPIs are bit-identical between the two modes.

        ``progress`` (or an ambient reporter installed with
        :func:`repro.observability.use_progress`) receives
        rate/ETA events at batch boundaries; reporting is passive, so
        a watched run is bit-identical to a silent one.
        """
        reporter = self._resolve_progress(progress)
        with _spans.span(
            "mc.run", {"n_runs": n_runs, "keep_trajectories": keep_trajectories}
        ):
            if self.simulator.config.kernel == "vectorized":
                return self._run_vectorized(
                    n_runs, confidence, keep_trajectories, reporter
                )
            if reporter is None:
                if keep_trajectories:
                    trajectories = self.sample(n_runs)
                    summary = self._summarize(trajectories, confidence)
                    return MonteCarloResult(
                        summary=summary, trajectories=tuple(trajectories)
                    )
                batch = self.sample_batch(n_runs)
                return MonteCarloResult(
                    summary=self._summarize(batch, confidence), batch=batch
                )
            if n_runs < 1:
                raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
            # Watched run: identical child-stream order, sliced into
            # progress steps.  The sink (object list vs accumulator)
            # mirrors the silent paths above exactly.
            collected: List[Trajectory] = []
            accumulator = (
                None
                if keep_trajectories
                else TrajectoryAccumulator(horizon=self.horizon)
            )
            sink = collected.append if accumulator is None else accumulator.add
            step = self._progress_step(n_runs)
            start = _time.perf_counter()
            done = 0
            while done < n_runs:
                take = min(step, n_runs - done)
                for _ in range(take):
                    sink(self.simulator.simulate(self._next_rng()))
                done += take
                elapsed = _time.perf_counter() - start
                rate = done / elapsed if elapsed > 0 else None
                reporter.update(
                    ProgressEvent(
                        phase="mc.run",
                        completed=done,
                        total=n_runs,
                        elapsed_seconds=elapsed,
                        rate_per_sec=rate,
                        eta_seconds=((n_runs - done) / rate) if rate else None,
                        done=done >= n_runs,
                    )
                )
            if accumulator is None:
                summary = self._summarize(collected, confidence)
                return MonteCarloResult(
                    summary=summary, trajectories=tuple(collected)
                )
            batch = accumulator.finalize()
            return MonteCarloResult(
                summary=self._summarize(batch, confidence), batch=batch
            )

    def _run_vectorized(
        self,
        n_runs: int,
        confidence: float,
        keep_trajectories: bool,
        reporter: Optional[ProgressReporter],
    ) -> MonteCarloResult:
        """:meth:`run` body for ``kernel="vectorized"``.

        Fully vectorizable models consume one child seed stream per
        lockstep *chunk* (of the configured ``chunk_trajectories``) —
        spawning a stream per trajectory costs more than the kernel
        spends simulating one.  Non-vectorizable models spawn per
        trajectory exactly like the object path and loop the object
        engine (bit-identical to ``kernel="object"``).  Chunks stream
        straight into the accumulator; progress events fire at chunk
        boundaries and, for watched runs, from inside the chunk loop at
        calendar-fraction granularity, throttled to the same cadence as
        the object path (:meth:`_progress_step`).  The in-chunk
        callback never touches the RNG, so watched and silent runs are
        bit-identical.
        """
        from repro.simulation.vectorized import (
            VectorizedKernel,
            iter_vectorized_batches,
            vectorized_fallback_reason,
        )

        if n_runs < 1:
            raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
        accumulator = TrajectoryAccumulator(horizon=self.horizon)
        start = _time.perf_counter()
        done = 0

        def report(done: int) -> None:
            if reporter is None:
                return
            elapsed = _time.perf_counter() - start
            rate = done / elapsed if elapsed > 0 else None
            reporter.update(
                ProgressEvent(
                    phase="mc.run",
                    completed=done,
                    total=n_runs,
                    elapsed_seconds=elapsed,
                    rate_per_sec=rate,
                    eta_seconds=((n_runs - done) / rate) if rate else None,
                    done=done >= n_runs,
                )
            )

        if vectorized_fallback_reason(self.simulator) is None:
            kernel = VectorizedKernel(self.simulator)
            chunk = self.simulator.config.chunk_trajectories
            n_chunks = -(-n_runs // chunk)
            chunk_seeds = self._seed_sequence.spawn(n_chunks)
            self._streams_used += n_chunks
            instr = self._resolve_instrumentation()
            step = self._progress_step(n_runs)
            for seed in chunk_seeds:
                size = min(chunk, n_runs - done)
                callback = None
                if reporter is not None:
                    # Map the kernel's calendar fraction to equivalent
                    # completed trajectories; emit at the object path's
                    # cadence, leaving the boundary event to report().
                    state = {"next": done + step}
                    base, span = done, size

                    def callback(frac, state=state, base=base, span=span):
                        equivalent = base + int(span * frac)
                        if equivalent >= state["next"] and equivalent < base + span:
                            state["next"] = equivalent + step
                            report(equivalent)

                accumulator.add_batch(
                    kernel.simulate_chunk(
                        size, np.random.default_rng(seed), progress=callback
                    )
                )
                if instr is not None:
                    instr.count(_obs.SIM_TRAJECTORIES, size)
                done += size
                report(done)
        else:
            seeds = self._seed_sequence.spawn(n_runs)
            self._streams_used += n_runs
            for batch_chunk in iter_vectorized_batches(self.simulator, seeds):
                accumulator.add_batch(batch_chunk)
                done += len(batch_chunk)
                report(done)
        batch = accumulator.finalize()
        summary = self._summarize(batch, confidence)
        if keep_trajectories:
            return MonteCarloResult(
                summary=summary,
                trajectories=tuple(batch.to_trajectories()),
                batch=batch,
            )
        return MonteCarloResult(summary=summary, batch=batch)

    def run_rare_event(
        self,
        config: Optional["RareEventConfig"] = None,
        confidence: float = 0.95,
        processes: int = 1,
    ) -> "RareEventResult":
        """Estimate the unreliability by importance splitting.

        Uses ``config``, falling back to the ``rare_event`` configuration
        given at construction, falling back to the defaults of
        :class:`~repro.rareevent.estimator.RareEventConfig`.  One child
        seed stream is consumed per independent unit (replication or
        RESTART root); ``processes > 1`` fans units out to worker
        processes with bit-identical results.

        Returns a :class:`~repro.rareevent.estimator.RareEventResult`
        whose ``unreliability`` interval is directly comparable to
        ``run(...).unreliability``.
        """
        from repro.rareevent.estimator import RareEventConfig, RareEventEstimator

        if config is None:
            config = self.rare_event
        if config is None:
            config = RareEventConfig()
        estimator = RareEventEstimator(self.simulator, config)
        seeds = self._seed_sequence.spawn(config.n_units)
        self._streams_used += config.n_units
        logger.info(
            kv(
                "rare-event run",
                method=config.method,
                units=config.n_units,
                levels=len(estimator.thresholds),
                processes=processes,
            )
        )
        with _spans.span(
            "mc.run_rare_event",
            {
                "method": config.method,
                "n_units": config.n_units,
                "levels": len(estimator.thresholds),
                "processes": processes,
            },
        ):
            return estimator.estimate(
                seeds, confidence=confidence, processes=processes
            )

    def run_to_precision(
        self,
        rule: Optional[RelativePrecisionRule] = None,
        batch_size: int = 200,
        confidence: float = 0.95,
        keep_trajectories: bool = True,
        target: str = "failures",
        max_zero_samples: int = 10_000,
        progress: Optional[ProgressReporter] = None,
    ) -> MonteCarloResult:
        """Sequential estimation to a target relative precision.

        Batches of trajectories are simulated until the stopping
        ``rule`` declares the confidence interval of the ``target``
        statistic tight enough (or its sample budget is exhausted).
        All KPIs are then summarized over everything that was
        simulated.

        ``target`` selects the controlled statistic: ``"failures"``
        (number of system failures per trajectory, the default),
        ``"unreliability"`` (failure indicator), or ``"cost"`` (total
        trajectory cost — requires a cost model).

        A stream on which the target statistic stays identically zero
        can never satisfy a *relative* precision rule; rather than
        simulate until the rule's full ``max_samples`` budget, the run
        stops after ``max_zero_samples`` all-zero trajectories with a
        :class:`RuntimeWarning` (consider :meth:`run_rare_event` —
        rare-event estimation is what importance splitting is for).

        ``progress`` (or an ambient reporter) receives one convergence
        event per batch: the running estimate, its CI half-width (at
        the rule's confidence), the relative half-width, and the
        rule's target relative error — so a long sequential run shows
        how far from convergence it is, not just how many samples it
        has burned.
        """
        extractors = {
            "failures": lambda t: float(t.n_failures),
            "unreliability": lambda t: 1.0 if t.failed_by_horizon else 0.0,
            "cost": lambda t: t.costs.total,
        }
        extractor = extractors.get(target)
        if extractor is None:
            raise ValidationError(
                f"unknown target {target!r}; expected one of "
                f"{sorted(extractors)}"
            )
        if rule is None:
            rule = RelativePrecisionRule()
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        if max_zero_samples < 1:
            raise ValidationError(
                f"max_zero_samples must be >= 1, got {max_zero_samples}"
            )
        reporter = self._resolve_progress(progress)
        statistics = RunningStatistics()
        collected: List[Trajectory] = []
        # With keep_trajectories=False the batches are folded straight
        # into columnar form, so an open-ended sequential run keeps a
        # bounded footprint no matter how many samples the rule needs.
        accumulator = (
            None
            if keep_trajectories
            else TrajectoryAccumulator(horizon=self.horizon)
        )
        with _spans.span(
            "mc.run_to_precision",
            {
                "target": target,
                "batch_size": batch_size,
                "relative_error": rule.relative_error,
            },
        ) as run_span:
            start = _time.perf_counter()
            while not rule.should_stop(statistics):
                if (
                    statistics.count >= max_zero_samples
                    and statistics.mean == 0.0
                ):
                    message = (
                        f"run_to_precision: target {target!r} is zero on all "
                        f"{statistics.count} trajectories; the relative "
                        "precision rule cannot converge on an all-zero "
                        "stream — stopping early (consider run_rare_event)"
                    )
                    warnings.warn(message, RuntimeWarning, stacklevel=2)
                    logger.warning(
                        kv(
                            "run_to_precision all-zero cap hit",
                            target=target,
                            samples=statistics.count,
                        )
                    )
                    break
                batch = self.sample(batch_size)
                for trajectory in batch:
                    statistics.add(extractor(trajectory))
                if accumulator is None:
                    collected.extend(batch)
                else:
                    accumulator.extend(batch)
                if reporter is not None:
                    reporter.update(
                        self._convergence_event(
                            statistics, rule, start, done=False
                        )
                    )
            run_span.set_attribute("n_samples", statistics.count)
            if reporter is not None:
                reporter.update(
                    self._convergence_event(statistics, rule, start, done=True)
                )
            if accumulator is None:
                summary = self._summarize(collected, confidence)
                return MonteCarloResult(
                    summary=summary, trajectories=tuple(collected)
                )
            built = accumulator.finalize()
            return MonteCarloResult(
                summary=self._summarize(built, confidence), batch=built
            )

    @staticmethod
    def _convergence_event(
        statistics: RunningStatistics,
        rule: RelativePrecisionRule,
        start: float,
        done: bool,
    ) -> ProgressEvent:
        """Progress event describing how converged a sequential run is."""
        half_width = None
        relative_half_width = None
        if statistics.count >= 2:
            interval = statistics.confidence_interval(rule.confidence)
            half_width = interval.half_width
            if statistics.mean != 0.0:
                relative_half_width = interval.relative_half_width
        elapsed = _time.perf_counter() - start
        rate = statistics.count / elapsed if elapsed > 0 else None
        return ProgressEvent(
            phase="mc.run_to_precision",
            completed=statistics.count,
            elapsed_seconds=elapsed,
            rate_per_sec=rate,
            estimate=statistics.mean if statistics.count else None,
            ci_half_width=half_width,
            relative_half_width=relative_half_width,
            target=rule.relative_error,
            done=done,
        )
