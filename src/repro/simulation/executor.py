"""Trajectory execution of a fault maintenance tree.

:class:`FMTSimulator` simulates one life of the system at a time:

* every basic event walks through its degradation phases with
  exponential sojourns, accelerated multiplicatively by active rate
  dependencies (RDEP);
* gate states are propagated through the DAG on every component change;
  priority-AND gates use exact order-sensitive semantics;
* inspection modules fire periodically, detect targets at or past their
  threshold phase, and schedule the module's maintenance action (after
  an optional planning delay); targets found failed are replaced
  correctively;
* repair modules fire periodically and apply their action to all
  targets regardless of condition;
* a system (top-event) failure triggers the strategy's failure
  response: corrective renewal of the whole asset after a repair time
  (``on_system_failure="replace"``) or an absorbing stop
  (``"none"``);
* every priced occurrence is accumulated into a
  :class:`~repro.maintenance.costs.CostBreakdown`.

Determinism: trajectories are a pure function of the model, strategy,
configuration, and the :class:`numpy.random.Generator` passed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import Gate, PandGate
from repro.core.tree import FaultMaintenanceTree
from repro.errors import SimulationError, ValidationError
from repro.maintenance.actions import MaintenanceAction
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import instrumentation as _obs
from repro.observability.instrumentation import Instrumentation
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.engine import Engine, EngineSnapshot, ScheduledEvent
from repro.simulation.trace import ComponentEvent, Trajectory

__all__ = ["FMTSimulator", "SimulationConfig", "SimulatorSnapshot"]

logger = get_logger(__name__)

# Same-time event ordering: component transitions first, then system
# restoration, then time-based repairs, then inspections, then the
# delayed actions inspections scheduled earlier.
_PRIO_TRANSITION = 0
_PRIO_RESTORE = 1
_PRIO_REPAIR = 2
_PRIO_INSPECTION = 3
_PRIO_ACTION = 4


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level configuration of the simulator.

    Parameters
    ----------
    horizon:
        Length of each simulated trajectory, in years.
    cost_model:
        Prices for inspections, actions, failures and downtime.
        Defaults to an all-zero model (KPIs other than cost are
        unaffected).
    record_events:
        When true, every component-level event is appended to
        :attr:`repro.simulation.trace.Trajectory.events` — needed by the
        synthetic incident database, expensive for large replication
        counts otherwise.
    instrumentation:
        Optional :class:`~repro.observability.instrumentation.Instrumentation`
        receiving event/action counters and the per-trajectory
        ``sim.simulate.seconds`` timer.  Purely observational: results
        are bit-identical with or without it.  When None, the ambient
        instrumentation (:func:`repro.observability.current`) is used
        if one is active.
    """

    horizon: float
    cost_model: CostModel = field(default_factory=CostModel)
    record_events: bool = False
    instrumentation: Optional[Instrumentation] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")


@dataclass(frozen=True)
class SimulatorSnapshot:
    """Frozen mid-run image of an :class:`FMTSimulator`.

    Produced by :meth:`FMTSimulator.snapshot`, consumed by
    :meth:`FMTSimulator.restore`.  One snapshot can seed any number of
    restores — each restore gets its own trajectory copy and a freshly
    rebuilt event calendar, so clones never share mutable state.  The
    original :class:`ScheduledEvent` handles are kept only as identity
    keys for rewiring (see :meth:`Engine.restore`).
    """

    engine: EngineSnapshot
    phase: Dict[str, int]
    accel: Dict[str, float]
    state: Dict[str, bool]
    fail_time: Dict[str, Optional[float]]
    transition: Dict[str, Optional[ScheduledEvent]]
    pending_actions: Dict[str, Dict[str, ScheduledEvent]]
    system_down: bool
    down_since: float
    trajectory: Trajectory


class FMTSimulator:
    """Simulates trajectories of one (tree, strategy) pair.

    The constructor precomputes the static structure (parent map, RDEP
    index, module target lists); :meth:`simulate` then runs one
    trajectory per call using only the provided RNG for randomness.
    """

    def __init__(
        self,
        tree: FaultMaintenanceTree,
        strategy: Optional[MaintenanceStrategy] = None,
        config: Optional[SimulationConfig] = None,
        horizon: Optional[float] = None,
    ):
        if config is None:
            if horizon is None:
                raise ValidationError("give either config= or horizon=")
            config = SimulationConfig(horizon=horizon)
        elif horizon is not None and horizon != config.horizon:
            raise ValidationError("horizon= conflicts with config.horizon")
        self.strategy = strategy if strategy is not None else MaintenanceStrategy.none()
        self.tree = self.strategy.apply(tree)
        self.config = config

        self._events: Dict[str, BasicEvent] = self.tree.basic_events
        self._top_name = self.tree.top.name
        self._parents: Dict[str, Tuple[str, ...]] = {
            name: self.tree.parents_of(name) for name in self.tree.nodes
        }
        self._rdeps_by_trigger: Dict[str, List[RateDependency]] = {}
        self._rdeps_by_target: Dict[str, List[RateDependency]] = {}
        for dep in self.tree.dependencies:
            self._rdeps_by_trigger.setdefault(dep.trigger, []).append(dep)
            for target in dep.targets:
                self._rdeps_by_target.setdefault(target, []).append(dep)

        # ----- per-run state (reset by _reset) -----
        self._instr: Optional[Instrumentation] = config.instrumentation
        self._engine = Engine(instrumentation=self._instr)
        self._rng: np.random.Generator = np.random.default_rng(0)
        self._phase: Dict[str, int] = {}
        self._accel: Dict[str, float] = {}
        self._transition: Dict[str, Optional[ScheduledEvent]] = {}
        self._state: Dict[str, bool] = {}
        self._fail_time: Dict[str, Optional[float]] = {}
        self._pending_actions: Dict[str, Dict[str, ScheduledEvent]] = {}
        self._system_down = False
        self._down_since = 0.0
        self._trajectory = Trajectory(horizon=config.horizon)

    # ------------------------------------------------------------------
    # Pickling (worker processes)
    # ------------------------------------------------------------------
    # Per-run state holds event-callback closures and ScheduledEvent
    # handles, which do not pickle; a worker always starts its runs
    # with _reset, so ship the static structure only and re-create
    # pristine per-run state on the other side.
    _PER_RUN_ATTRS = (
        "_instr",
        "_engine",
        "_rng",
        "_phase",
        "_accel",
        "_transition",
        "_state",
        "_fail_time",
        "_pending_actions",
        "_system_down",
        "_down_since",
        "_trajectory",
    )

    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in self._PER_RUN_ATTRS:
            state.pop(attr, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._instr = self.config.instrumentation
        self._engine = Engine(instrumentation=self._instr)
        self._rng = np.random.default_rng(0)
        self._phase = {}
        self._accel = {}
        self._transition = {}
        self._state = {}
        self._fail_time = {}
        self._pending_actions = {}
        self._system_down = False
        self._down_since = 0.0
        self._trajectory = Trajectory(horizon=self.config.horizon)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def simulate(self, rng: np.random.Generator) -> Trajectory:
        """Run one trajectory to the horizon and return its record."""
        self._reset(rng)
        if self._instr is None:
            self._engine.run_until(self.config.horizon)
            self._finalize()
        else:
            with self._instr.timer(_obs.TIMER_SIMULATE).time():
                self._engine.run_until(self.config.horizon)
                self._finalize()
            self._instr.count(_obs.SIM_TRAJECTORIES)
        if logger.isEnabledFor(10):  # logging.DEBUG, avoided on the hot path
            trajectory = self._trajectory
            logger.debug(
                kv(
                    "trajectory done",
                    horizon=trajectory.horizon,
                    failures=trajectory.n_failures,
                    downtime=trajectory.downtime,
                    inspections=trajectory.n_inspections,
                    preventive=trajectory.n_preventive_actions,
                    corrective=trajectory.n_corrective_replacements,
                )
            )
        return self._trajectory

    # ------------------------------------------------------------------
    # Stepwise driving and state forking (importance splitting)
    # ------------------------------------------------------------------
    # None of the methods below are touched by simulate(); a crude
    # Monte Carlo run draws exactly the same random numbers in the same
    # order whether or not this block exists (bit-identity guarantee,
    # regression-tested in tests/test_rareevent.py).

    @property
    def now(self) -> float:
        """Current simulation clock of the active run."""
        return self._engine.now

    @property
    def phases(self) -> Dict[str, int]:
        """Live degradation phase per basic event (treat as read-only)."""
        return self._phase

    @property
    def states(self) -> Dict[str, bool]:
        """Live failed-state per tree node (treat as read-only)."""
        return self._state

    @property
    def system_failed(self) -> bool:
        """Whether the top event has occurred in the active run."""
        return bool(self._trajectory.failure_times)

    @property
    def trajectory(self) -> Trajectory:
        """The record of the active run (mutated as the run advances)."""
        return self._trajectory

    def begin(self, rng: np.random.Generator) -> None:
        """Initialise a stepwise run; drive it with :meth:`step`.

        Equivalent to the setup :meth:`simulate` performs before its
        event loop.  Use :meth:`finish` to close the trajectory record.
        """
        self._reset(rng)

    def step(self) -> bool:
        """Execute the next event within the horizon.

        Returns False once the calendar is exhausted, the next event
        lies past the horizon, or an absorbing stop was requested —
        i.e. exactly when :meth:`Engine.run_until` would have returned.
        """
        if self._engine.stopped:
            return False
        next_time = self._engine.peek_time()
        if next_time is None or next_time > self.config.horizon:
            return False
        return self._engine.step()

    def finish(self) -> Trajectory:
        """Run the remaining events to the horizon and close the record."""
        if not self._engine.stopped:
            self._engine.run_until(self.config.horizon)
        self._finalize()
        return self._trajectory

    def snapshot(self) -> SimulatorSnapshot:
        """Capture the complete mid-run state of the simulator.

        The snapshot is independent of the run's future: it stays valid
        after the run advances, so a splitting driver can take one
        snapshot at a level up-crossing and restore it several times.
        """
        return SimulatorSnapshot(
            engine=self._engine.snapshot(),
            phase=dict(self._phase),
            accel=dict(self._accel),
            state=dict(self._state),
            fail_time=dict(self._fail_time),
            transition=dict(self._transition),
            pending_actions={
                name: dict(handles)
                for name, handles in self._pending_actions.items()
            },
            system_down=self._system_down,
            down_since=self._down_since,
            trajectory=self._trajectory.copy(),
        )

    def restore(
        self,
        snapshot: SimulatorSnapshot,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Rewind the simulator to ``snapshot`` (cloning a trajectory).

        ``rng`` optionally swaps in a fresh random stream for the
        resumed timeline; combine with :meth:`resample_transitions` so
        the clone diverges from its parent.  All scheduled-event handles
        (degradation transitions, pending work orders) are rewired to
        the restored calendar; handles whose event already executed or
        was cancelled before the snapshot resolve to None/are dropped.
        """
        mapping = self._engine.restore(snapshot.engine)
        self._phase = dict(snapshot.phase)
        self._accel = dict(snapshot.accel)
        self._state = dict(snapshot.state)
        self._fail_time = dict(snapshot.fail_time)
        self._transition = {
            name: (mapping.get(id(handle)) if handle is not None else None)
            for name, handle in snapshot.transition.items()
        }
        self._pending_actions = {
            name: {
                module: new_handle
                for module, handle in handles.items()
                if (new_handle := mapping.get(id(handle))) is not None
            }
            for name, handles in snapshot.pending_actions.items()
        }
        self._system_down = snapshot.system_down
        self._down_since = snapshot.down_since
        self._trajectory = snapshot.trajectory.copy()
        if rng is not None:
            self._rng = rng

    def resample_transitions(self) -> None:
        """Redraw every pending degradation jump from the current RNG.

        Exponential sojourns are memoryless, so replacing a pending
        phase-jump time with a fresh draw at the same rate leaves the
        trajectory distribution unchanged — this is how restored clones
        are decorrelated from their parent (and from each other).
        Deterministic events (inspections, repairs, work orders,
        restoration) are *not* resampled: their times are part of the
        schedule, not of the stochastic state.
        """
        for name in self._events:
            if self._transition[name] is not None:
                self._cancel_transition(name)
                self._schedule_transition(name)

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------
    def _reset(self, rng: np.random.Generator) -> None:
        instr = self.config.instrumentation
        self._instr = instr if instr is not None else _obs.current()
        self._engine = Engine(instrumentation=self._instr)
        self._rng = rng
        self._phase = {name: 0 for name in self._events}
        self._accel = {name: 1.0 for name in self._events}
        self._transition = {name: None for name in self._events}
        self._state = {name: False for name in self.tree.nodes}
        self._fail_time = {name: None for name in self.tree.nodes}
        self._pending_actions = {name: {} for name in self._events}
        self._system_down = False
        self._down_since = 0.0
        self._trajectory = Trajectory(horizon=self.config.horizon)

        for name in self._events:
            self._schedule_transition(name)
        for module in self.tree.inspections:
            self._schedule_inspection(module, self._first_tick(module))
        for module in self.tree.repairs:
            self._schedule_repair(module, self._first_tick(module))

    def _first_tick(self, module) -> float:
        if module.timing == "exponential":
            return self._rng.exponential(module.period)
        return module.offset

    def _next_tick(self, module) -> float:
        if module.timing == "exponential":
            return self._engine.now + self._rng.exponential(module.period)
        return self._engine.now + module.period

    def _finalize(self) -> None:
        if self._system_down:
            elapsed = self.config.horizon - self._down_since
            if elapsed > 0.0:
                self._trajectory.downtime += elapsed
                self._charge_downtime(self._down_since, self.config.horizon)

    # ------------------------------------------------------------------
    # Degradation dynamics
    # ------------------------------------------------------------------
    def _schedule_transition(self, name: str) -> None:
        """Schedule the next phase jump of component ``name``."""
        phase = self._phase[name]
        event = self._events[name]
        if phase >= event.phases:
            self._transition[name] = None
            return
        rate = event.phase_rates[phase] * self._accel[name]
        delay = self._rng.exponential(1.0 / rate)
        self._transition[name] = self._engine.schedule_after(
            delay, lambda n=name: self._on_phase_jump(n), _PRIO_TRANSITION
        )

    def _on_phase_jump(self, name: str) -> None:
        event = self._events[name]
        self._phase[name] += 1
        if self._instr is not None:
            self._instr.count(_obs.SIM_PHASE_JUMPS)
        if self._phase[name] >= event.phases:
            self._transition[name] = None
            if self._instr is not None:
                self._instr.count(_obs.SIM_COMPONENT_FAILURES)
            self._record(name, "failure", phase=self._phase[name])
            self._set_component_state(name, failed=True)
        else:
            self._schedule_transition(name)

    def _cancel_transition(self, name: str) -> None:
        pending = self._transition[name]
        if pending is not None:
            pending.cancel()
            self._transition[name] = None

    def _set_phase(self, name: str, phase: int) -> None:
        """Force component ``name`` to ``phase`` (maintenance restore)."""
        event = self._events[name]
        if not 0 <= phase <= event.phases:
            raise SimulationError(f"{name}: phase {phase} out of range")
        was_failed = self._phase[name] >= event.phases
        self._cancel_transition(name)
        self._phase[name] = phase
        self._schedule_transition(name)
        now_failed = phase >= event.phases
        if was_failed != now_failed:
            self._set_component_state(name, failed=now_failed)

    # ------------------------------------------------------------------
    # State propagation
    # ------------------------------------------------------------------
    def _set_component_state(self, name: str, failed: bool) -> None:
        if self._state[name] == failed:
            return
        self._state[name] = failed
        self._fail_time[name] = self._engine.now if failed else None
        self._propagate_from(name)

    def _propagate_from(self, origin: str) -> None:
        """Recompute gate states upward from ``origin``; handle effects."""
        changed = [origin]
        self._apply_rdep_effects(origin)
        index = 0
        while index < len(changed):
            current = changed[index]
            index += 1
            for parent_name in self._parents[current]:
                parent = self.tree.element(parent_name)
                assert isinstance(parent, Gate)
                new_state = self._evaluate_gate(parent)
                if new_state == self._state[parent_name]:
                    continue
                self._state[parent_name] = new_state
                self._fail_time[parent_name] = (
                    self._engine.now if new_state else None
                )
                self._apply_rdep_effects(parent_name)
                if parent_name == self._top_name and new_state:
                    self._on_system_failure()
                changed.append(parent_name)

    def _evaluate_gate(self, gate: Gate) -> bool:
        if isinstance(gate, PandGate):
            times = [
                self._fail_time[child.name] if self._state[child.name] else None
                for child in gate.children
            ]
            return gate.evaluate_ordered(times)
        return gate.evaluate([self._state[child.name] for child in gate.children])

    def _apply_rdep_effects(self, trigger_name: str) -> None:
        for dep in self._rdeps_by_trigger.get(trigger_name, ()):
            for target in dep.targets:
                self._update_accel(target)

    def _update_accel(self, target: str) -> None:
        factor = 1.0
        for dep in self._rdeps_by_target.get(target, ()):
            if self._state[dep.trigger]:
                factor *= dep.factor
        if factor == self._accel[target]:
            return
        self._accel[target] = factor
        if self._instr is not None:
            self._instr.count(_obs.SIM_RDEP_ACCELERATIONS)
        # Exponential sojourns are memoryless: rescheduling the pending
        # jump with the new rate realises the rate change exactly.
        if self._transition[target] is not None:
            self._cancel_transition(target)
            self._schedule_transition(target)

    # ------------------------------------------------------------------
    # System failure response
    # ------------------------------------------------------------------
    def _on_system_failure(self) -> None:
        now = self._engine.now
        if self._instr is not None:
            self._instr.count(_obs.SIM_SYSTEM_FAILURES)
        self._trajectory.failure_times.append(now)
        self._record(self._top_name, "system_failure")
        cost_model = self.config.cost_model
        self._trajectory.costs.failures += (
            cost_model.system_failure * cost_model.discount_factor(now)
        )

        if self.strategy.on_system_failure == "none":
            # Absorbing: the system stays down until the horizon.
            self._system_down = True
            self._down_since = now
            self._engine.stop()
            return

        self._system_down = True
        self._down_since = now
        self._trajectory.n_corrective_replacements += 1
        # The asset is being replaced: nothing degrades, planned work on
        # the old asset is moot.
        for name in self._events:
            self._cancel_transition(name)
        for pending in self._pending_actions.values():
            for handle in pending.values():
                handle.cancel()
            pending.clear()
        self._engine.schedule_after(
            self.strategy.system_repair_time, self._on_system_restored, _PRIO_RESTORE
        )

    def _on_system_restored(self) -> None:
        now = self._engine.now
        if self._instr is not None:
            self._instr.count(_obs.SIM_SYSTEM_RESTORATIONS)
        elapsed = now - self._down_since
        self._trajectory.downtime += elapsed
        self._charge_downtime(self._down_since, now)
        self._system_down = False
        self._record(self._top_name, "system_restored")
        for name in self._events:
            self._phase[name] = 0
            if self._state[name]:
                self._set_component_state(name, failed=False)
            self._schedule_transition(name)

    def _charge_downtime(self, start: float, end: float) -> None:
        self._trajectory.costs.downtime += (
            self.config.cost_model.discounted_downtime_cost(start, end)
        )

    # ------------------------------------------------------------------
    # Inspection modules
    # ------------------------------------------------------------------
    def _schedule_inspection(self, module: InspectionModule, time: float) -> None:
        if time > self.config.horizon:
            return
        self._engine.schedule(
            time, lambda m=module: self._on_inspection(m), _PRIO_INSPECTION
        )

    def _on_inspection(self, module: InspectionModule) -> None:
        self._schedule_inspection(module, self._next_tick(module))
        if self._system_down:
            return
        cost_model = self.config.cost_model
        self._trajectory.n_inspections += 1
        if self._instr is not None:
            self._instr.count(_obs.SIM_INSPECTIONS)
        self._trajectory.costs.inspections += cost_model.visit_cost(
            module.name
        ) * cost_model.discount_factor(self._engine.now)
        for target in module.targets:
            if self._state[target]:
                if module.detect_failures:
                    self._corrective_replace(target)
                continue
            event = self._events[target]
            threshold = event.threshold
            assert threshold is not None  # enforced by tree validation
            if self._phase[target] < threshold:
                continue
            if (
                module.detection_probability < 1.0
                and self._rng.random() >= module.detection_probability
            ):
                continue  # imperfect inspection missed the degradation
            if self._instr is not None:
                self._instr.count(_obs.SIM_DETECTIONS)
            self._record(target, "detection", phase=self._phase[target])
            if module.name in self._pending_actions[target]:
                continue
            if module.delay <= 0.0:
                self._perform_action(module, target)
            else:
                handle = self._engine.schedule_after(
                    module.delay,
                    lambda m=module, t=target: self._on_delayed_action(m, t),
                    _PRIO_ACTION,
                )
                self._pending_actions[target][module.name] = handle

    def _on_delayed_action(self, module: InspectionModule, target: str) -> None:
        self._pending_actions[target].pop(module.name, None)
        if self._system_down:
            return
        if self._state[target]:
            # The component failed while the work order was pending;
            # the crew replaces it instead.
            self._corrective_replace(target)
            return
        self._perform_action(module, target)

    def _perform_action(self, module, target: str) -> None:
        action: MaintenanceAction = module.action
        cost_model = self.config.cost_model
        cost = cost_model.action_cost(
            target, action.kind
        ) * cost_model.discount_factor(self._engine.now)
        self._trajectory.costs.preventive += cost
        self._trajectory.n_preventive_actions += 1
        if self._instr is not None:
            self._instr.count(_obs.SIM_PREVENTIVE_ACTIONS)
        new_phase = action.resulting_phase(self._phase[target])
        self._record(target, action.kind, phase=new_phase)
        self._set_phase(target, new_phase)

    def _corrective_replace(self, target: str) -> None:
        cost_model = self.config.cost_model
        cost = cost_model.action_cost(
            target, "replace", corrective=True
        ) * cost_model.discount_factor(self._engine.now)
        self._trajectory.costs.corrective += cost
        self._trajectory.n_corrective_replacements += 1
        if self._instr is not None:
            self._instr.count(_obs.SIM_CORRECTIVE_REPLACEMENTS)
        self._record(target, "replace", corrective=True, phase=0)
        self._set_phase(target, 0)

    # ------------------------------------------------------------------
    # Repair modules
    # ------------------------------------------------------------------
    def _schedule_repair(self, module: RepairModule, time: float) -> None:
        if time > self.config.horizon:
            return
        self._engine.schedule(
            time, lambda m=module: self._on_repair(m), _PRIO_REPAIR
        )

    def _on_repair(self, module: RepairModule) -> None:
        self._schedule_repair(module, self._next_tick(module))
        if self._system_down:
            return
        if self._instr is not None:
            self._instr.count(_obs.SIM_REPAIR_ROUNDS)
        for target in module.targets:
            self._perform_action(module, target)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(
        self,
        component: str,
        kind: str,
        corrective: bool = False,
        phase: Optional[int] = None,
    ) -> None:
        if not self.config.record_events:
            return
        self._trajectory.events.append(
            ComponentEvent(
                time=self._engine.now,
                component=component,
                kind=kind,
                corrective=corrective,
                phase=phase,
            )
        )
