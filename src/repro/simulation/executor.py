"""Trajectory execution of a fault maintenance tree.

:class:`FMTSimulator` simulates one life of the system at a time:

* every basic event walks through its degradation phases with
  exponential sojourns, accelerated multiplicatively by active rate
  dependencies (RDEP);
* gate states are propagated through the DAG on every component change;
  priority-AND gates use exact order-sensitive semantics;
* inspection modules fire periodically, detect targets at or past their
  threshold phase, and schedule the module's maintenance action (after
  an optional planning delay); targets found failed are replaced
  correctively;
* repair modules fire periodically and apply their action to all
  targets regardless of condition;
* a system (top-event) failure triggers the strategy's failure
  response: corrective renewal of the whole asset after a repair time
  (``on_system_failure="replace"``) or an absorbing stop
  (``"none"``);
* every priced occurrence is accumulated into a
  :class:`~repro.maintenance.costs.CostBreakdown`.

Determinism: trajectories are a pure function of the model, strategy,
configuration, and the :class:`numpy.random.Generator` passed in.

Hot-path design (docs/performance.md): the constructor precomputes
static lookup tables — per-phase rates and their reciprocals, per-gate
failed-children thresholds for O(1) incremental re-evaluation, fully
resolved inspection/repair plans with prices and callbacks — and
:meth:`_reset` restores per-run state by copying prototype dicts.
Every optimization is **bit-identical** to the reference
implementation: the RNG stream is consumed in exactly the same order
(regression-locked by ``tests/test_golden_trajectory.py``).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import Gate, OrGate, PandGate, VotingGate
from repro.core.tree import FaultMaintenanceTree
from repro.errors import SimulationError, ValidationError
from repro.maintenance.actions import MaintenanceAction
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import instrumentation as _obs
from repro.observability.instrumentation import Instrumentation
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.engine import Engine, EngineSnapshot, ScheduledEvent
from repro.simulation.trace import ComponentEvent, Trajectory

__all__ = [
    "DEFAULT_CHUNK_TRAJECTORIES",
    "FMTSimulator",
    "SimulationConfig",
    "SimulatorSnapshot",
]

logger = get_logger(__name__)

# Same-time event ordering: component transitions first, then system
# restoration, then time-based repairs, then inspections, then the
# delayed actions inspections scheduled earlier.
_PRIO_TRANSITION = 0
_PRIO_RESTORE = 1
_PRIO_REPAIR = 2
_PRIO_INSPECTION = 3
_PRIO_ACTION = 4

#: Default trajectories simulated per lockstep pass of the vectorized
#: kernel.  Large enough to amortize the per-epoch numpy dispatch
#: overhead, small enough that the per-event jump matrices stay
#: cache-friendly (~1 MB per 4096-row chunk on the EI-joint model).
#: Lives here (not in :mod:`repro.simulation.vectorized`) so the config
#: dataclass can reference it without a circular import.
DEFAULT_CHUNK_TRAJECTORIES = 4096


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level configuration of the simulator.

    Parameters
    ----------
    horizon:
        Length of each simulated trajectory, in years.
    cost_model:
        Prices for inspections, actions, failures and downtime.
        Defaults to an all-zero model (KPIs other than cost are
        unaffected).
    record_events:
        When true, every component-level event is appended to
        :attr:`repro.simulation.trace.Trajectory.events` — needed by the
        synthetic incident database, expensive for large replication
        counts otherwise.
    instrumentation:
        Optional :class:`~repro.observability.instrumentation.Instrumentation`
        receiving event/action counters and the per-trajectory
        ``sim.simulate.seconds`` timer.  Purely observational: results
        are bit-identical with or without it.  When None, the ambient
        instrumentation (:func:`repro.observability.current`) is used
        if one is active.
    kernel:
        Trajectory sampler used by the batch drivers: ``"object"``
        (default) walks the per-object event calendar of this class;
        ``"vectorized"`` runs lockstep struct-of-arrays chunks
        (:mod:`repro.simulation.vectorized`) where the model allows and
        falls back to the object engine where it does not.  The
        vectorized kernel is distributionally equivalent but not
        bit-identical to the object path, and it produces no
        component-level events (``record_events`` requires
        ``"object"``).
    chunk_trajectories:
        Trajectories per lockstep pass of the vectorized kernel
        (ignored by the object kernel).  Any integer >= 1 is accepted —
        powers of two are not required.  The vectorized kernel's
        results are not invariant to this value (each chunk draws its
        own seed stream), so the study cache key folds it in whenever
        it differs from the default.
    """

    horizon: float
    cost_model: CostModel = field(default_factory=CostModel)
    record_events: bool = False
    instrumentation: Optional[Instrumentation] = field(
        default=None, compare=False, repr=False
    )
    kernel: str = "object"
    chunk_trajectories: int = DEFAULT_CHUNK_TRAJECTORIES

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")
        if self.kernel not in ("object", "vectorized"):
            raise ValidationError(
                f"kernel must be 'object' or 'vectorized', got {self.kernel!r}"
            )
        if self.kernel == "vectorized" and self.record_events:
            raise ValidationError(
                "record_events needs the object kernel: the vectorized "
                "kernel does not produce component-level event streams"
            )
        if (
            not isinstance(self.chunk_trajectories, int)
            or isinstance(self.chunk_trajectories, bool)
            or self.chunk_trajectories < 1
        ):
            raise ValidationError(
                "chunk_trajectories must be an integer >= 1, got "
                f"{self.chunk_trajectories!r}"
            )


@dataclass(frozen=True)
class SimulatorSnapshot:
    """Frozen mid-run image of an :class:`FMTSimulator`.

    Produced by :meth:`FMTSimulator.snapshot`, consumed by
    :meth:`FMTSimulator.restore`.  One snapshot can seed any number of
    restores — each restore gets its own trajectory copy and a freshly
    rebuilt event calendar, so clones never share mutable state.  The
    original :class:`ScheduledEvent` handles are kept only as identity
    keys for rewiring (see :meth:`Engine.restore`).
    """

    engine: EngineSnapshot
    phase: Dict[str, int]
    accel: Dict[str, float]
    state: Dict[str, bool]
    fail_time: Dict[str, Optional[float]]
    transition: Dict[str, Optional[ScheduledEvent]]
    pending_actions: Dict[str, Dict[str, ScheduledEvent]]
    system_down: bool
    down_since: float
    trajectory: Trajectory


class _ModulePlan:
    """Fully resolved execution plan of one inspection/repair module.

    Everything the per-tick handler needs — period, prices after
    cost-model resolution, target thresholds, the reschedule callback —
    is resolved once at simulator construction instead of per visit.
    """

    __slots__ = (
        "module",
        "name",
        "period",
        "offset",
        "exponential",
        "delay",
        "detect_failures",
        "detection_probability",
        "visit_cost",
        "targets",
        "action",
        "action_kind",
        "action_cost",
        "callback",
    )

    def __init__(self, module, cost_model: CostModel, events: Dict[str, BasicEvent]):
        self.module = module
        self.name = module.name
        self.period = module.period
        self.offset = module.offset
        self.exponential = module.timing == "exponential"
        self.action: MaintenanceAction = module.action
        self.action_kind = module.action.kind
        self.action_cost = {
            target: cost_model.action_cost(target, module.action.kind)
            for target in module.targets
        }
        self.callback: Optional[Callable[[], None]] = None  # bound per simulator
        if isinstance(module, InspectionModule):
            self.delay = module.delay
            self.detect_failures = module.detect_failures
            self.detection_probability = module.detection_probability
            self.visit_cost = cost_model.visit_cost(module.name)
            # (target, detection threshold) pairs; thresholds are
            # guaranteed non-None by tree validation.
            self.targets = tuple(
                (target, events[target].threshold) for target in module.targets
            )
        else:
            self.delay = 0.0
            self.detect_failures = False
            self.detection_probability = 1.0
            self.visit_cost = 0.0
            self.targets = tuple((target, None) for target in module.targets)


class FMTSimulator:
    """Simulates trajectories of one (tree, strategy) pair.

    The constructor precomputes the static structure (parent map, RDEP
    index, module target lists, hot-path lookup tables);
    :meth:`simulate` then runs one trajectory per call using only the
    provided RNG for randomness.  :meth:`clone` derives additional
    simulators that share the validated static structure without
    re-running strategy application or tree validation.
    """

    def __init__(
        self,
        tree: FaultMaintenanceTree,
        strategy: Optional[MaintenanceStrategy] = None,
        config: Optional[SimulationConfig] = None,
        horizon: Optional[float] = None,
    ):
        if config is None:
            if horizon is None:
                raise ValidationError("give either config= or horizon=")
            config = SimulationConfig(horizon=horizon)
        elif horizon is not None and horizon != config.horizon:
            raise ValidationError("horizon= conflicts with config.horizon")
        self.strategy = strategy if strategy is not None else MaintenanceStrategy.none()
        self.tree = self.strategy.apply(tree)
        self.config = config

        self._events: Dict[str, BasicEvent] = self.tree.basic_events
        self._top_name = self.tree.top.name
        self._parents: Dict[str, Tuple[str, ...]] = {
            name: self.tree.parents_of(name) for name in self.tree.nodes
        }
        self._rdeps_by_trigger: Dict[str, List[RateDependency]] = {}
        self._rdeps_by_target: Dict[str, List[RateDependency]] = {}
        for dep in self.tree.dependencies:
            self._rdeps_by_trigger.setdefault(dep.trigger, []).append(dep)
            for target in dep.targets:
                self._rdeps_by_target.setdefault(target, []).append(dep)

        self._build_static_tables()
        self._build_plans()
        self._init_per_run_state()

    # ------------------------------------------------------------------
    # Static precomputation (hot-path lookup tables)
    # ------------------------------------------------------------------
    def _build_static_tables(self) -> None:
        """Derive the read-only tables the event handlers index into."""
        events = self._events
        self._rates: Dict[str, Tuple[float, ...]] = {
            name: tuple(event.phase_rates) for name, event in events.items()
        }
        self._inv_rates: Dict[str, Tuple[float, ...]] = {
            name: tuple(1.0 / rate for rate in rates)
            for name, rates in self._rates.items()
        }
        self._n_phases: Dict[str, int] = {
            name: event.phases for name, event in events.items()
        }

        # Incremental gate re-evaluation: every monotone gate (AND, OR,
        # voting, inhibit) is summarised by the number of failed
        # children that makes it fail; its live failed-children count
        # is then maintained by the propagation pass, making each gate
        # update O(1) instead of O(children).  Priority-AND is order
        # sensitive and keeps exact full evaluation (threshold None).
        gate_threshold: Dict[str, Optional[int]] = {}
        count_children: Dict[str, Tuple[str, ...]] = {}
        for name in self.tree.nodes:
            element = self.tree.element(name)
            if not isinstance(element, Gate):
                continue
            if isinstance(element, PandGate):
                gate_threshold[name] = None
            elif isinstance(element, VotingGate):
                gate_threshold[name] = element.k
            elif isinstance(element, OrGate):
                gate_threshold[name] = 1
            else:  # AND / inhibit: all children must have failed
                gate_threshold[name] = len(element.children)
            if gate_threshold[name] is not None:
                count_children[name] = tuple(
                    child.name for child in element.children
                )
        self._count_children = count_children
        # Per node: the gates it feeds, with their update recipe.
        self._parent_info: Dict[
            str, Tuple[Tuple[str, Gate, Optional[int]], ...]
        ] = {
            name: tuple(
                (parent, self.tree.element(parent), gate_threshold[parent])
                for parent in self._parents[name]
            )
            for name in self.tree.nodes
        }

        cost_model = self.config.cost_model
        self._discount_rate = cost_model.discount_rate
        self._corrective_cost: Dict[str, float] = {
            name: cost_model.action_cost(name, "replace", corrective=True)
            for name in events
        }
        self._horizon = self.config.horizon
        self._recording = self.config.record_events

        # Per-run state prototypes: _reset() copies these (C-speed dict
        # copy) instead of rebuilding comprehensions per trajectory.
        self._phase0 = {name: 0 for name in events}
        self._accel0 = {name: 1.0 for name in events}
        self._transition0: Dict[str, Optional[ScheduledEvent]] = {
            name: None for name in events
        }
        self._state0 = {name: False for name in self.tree.nodes}
        self._fail0: Dict[str, Optional[float]] = {
            name: None for name in self.tree.nodes
        }
        self._counts0 = {name: 0 for name in count_children}

    def _build_plans(self) -> None:
        """Resolve module plans and per-simulator callbacks.

        Callbacks close over ``self``, so clones and unpickled copies
        must rebuild them (a clone executing the prototype's bound
        methods would corrupt the prototype's run state).
        """
        cost_model = self.config.cost_model
        self._jump_cb: Dict[str, Callable[[], None]] = {
            name: partial(self._on_phase_jump, name) for name in self._events
        }
        self._inspection_plans: List[_ModulePlan] = []
        for module in self.tree.inspections:
            plan = _ModulePlan(module, cost_model, self._events)
            plan.callback = partial(self._on_inspection, plan)
            self._inspection_plans.append(plan)
        self._repair_plans: List[_ModulePlan] = []
        for module in self.tree.repairs:
            plan = _ModulePlan(module, cost_model, self._events)
            plan.callback = partial(self._on_repair, plan)
            self._repair_plans.append(plan)

    def _init_per_run_state(self) -> None:
        """Create pristine per-run state (no RNG activity)."""
        self._instr: Optional[Instrumentation] = self.config.instrumentation
        self._sim_timer = (
            None if self._instr is None
            else self._instr.timer(_obs.TIMER_SIMULATE)
        )
        self._engine = Engine(instrumentation=self._instr)
        # The engine lives as long as the simulator (reset in place per
        # run), so its schedule entry points can be cached once.
        self._schedule = self._engine.schedule
        self._schedule_after = self._engine.schedule_after
        self._set_rng(np.random.default_rng(0))
        self._phase: Dict[str, int] = dict(self._phase0)
        self._accel: Dict[str, float] = dict(self._accel0)
        self._transition: Dict[str, Optional[ScheduledEvent]] = dict(
            self._transition0
        )
        self._state: Dict[str, bool] = dict(self._state0)
        self._fail_time: Dict[str, Optional[float]] = dict(self._fail0)
        self._gate_counts: Dict[str, int] = dict(self._counts0)
        self._pending_actions: Dict[str, Dict[str, ScheduledEvent]] = {
            name: {} for name in self._events
        }
        self._system_down = False
        self._down_since = 0.0
        self._trajectory = Trajectory(
            horizon=self.config.horizon,
            events_recorded=self.config.record_events,
        )
        self._zero_tallies()

    # Per-event counters are batched as plain int tallies and folded
    # into the registry once per trajectory (flush_instrumentation):
    # a registry.count() per event costs ~4x an int increment, which
    # blows the <=5% instrumented-run overhead budget on models with
    # hundreds of events per trajectory.  Inspections and preventive
    # actions go one step further: the trajectory record already
    # counts them unconditionally, so their flush values are derived
    # from baselines instead of tallied — zero extra work per visit on
    # the single hottest callback (_on_inspection).
    _TALLY_COUNTERS = (
        ("_n_phase_jumps", _obs.SIM_PHASE_JUMPS),
        ("_n_component_failures", _obs.SIM_COMPONENT_FAILURES),
        ("_n_rdep_accelerations", _obs.SIM_RDEP_ACCELERATIONS),
        ("_n_system_failures", _obs.SIM_SYSTEM_FAILURES),
        ("_n_system_restorations", _obs.SIM_SYSTEM_RESTORATIONS),
        ("_n_detections", _obs.SIM_DETECTIONS),
        ("_n_corrective", _obs.SIM_CORRECTIVE_REPLACEMENTS),
        ("_n_repair_rounds", _obs.SIM_REPAIR_ROUNDS),
    )

    def _zero_tallies(self) -> None:
        for attr, _ in self._TALLY_COUNTERS:
            setattr(self, attr, 0)
        # Carries + trajectory baselines for the derived counters
        # (restore() folds pre-rewind deltas into the carries).
        self._n_inspections = 0
        self._n_preventive_actions = 0
        self._insp_base = 0
        self._prev_base = 0

    def flush_instrumentation(self) -> None:
        """Fold the batched event tallies into the attached registry.

        ``simulate`` calls this automatically; step-driven runs (the
        importance-splitting drivers) must call it once the stepping is
        over, or the trailing tallies of the final segment would never
        reach the registry.  Always safe to call: with no registry
        attached or nothing tallied it is a no-op.
        """
        self._engine.flush_counts()
        trajectory = self._trajectory
        inspections = (
            self._n_inspections + trajectory.n_inspections - self._insp_base
        )
        preventive = (
            self._n_preventive_actions
            + trajectory.n_preventive_actions
            - self._prev_base
        )
        instr = self._instr
        if instr is not None:
            count = instr.count
            if inspections:
                count(_obs.SIM_INSPECTIONS, inspections)
            if preventive:
                count(_obs.SIM_PREVENTIVE_ACTIONS, preventive)
            for attr, name in self._TALLY_COUNTERS:
                n = getattr(self, attr)
                if n:
                    count(name, n)
                    setattr(self, attr, 0)
        self._n_inspections = 0
        self._n_preventive_actions = 0
        self._insp_base = trajectory.n_inspections
        self._prev_base = trajectory.n_preventive_actions

    def _set_rng(self, rng: np.random.Generator) -> None:
        """Install ``rng`` and cache its hot samplers.

        The bound-method caches (``_rng_exponential``, ``_rng_random``)
        are the "per-event distribution samplers": every draw goes
        through them, so a swap here is the only thing needed to keep
        draw order identical to direct ``self._rng.<dist>`` calls.
        """
        self._rng = rng
        self._rng_exponential = rng.exponential
        self._rng_random = rng.random

    # ------------------------------------------------------------------
    # Cloning and pickling (prototype reuse, worker processes)
    # ------------------------------------------------------------------
    # Per-run state holds event-callback closures and ScheduledEvent
    # handles, which do not pickle; a worker always starts its runs
    # with _reset, so ship the static structure only and re-create
    # pristine per-run state on the other side.  The plan/callback
    # tables are rebuilt rather than shipped: they close over self.
    _PER_RUN_ATTRS = (
        "_instr",
        "_sim_timer",
        "_engine",
        "_schedule",
        "_schedule_after",
        "_rng",
        "_rng_exponential",
        "_rng_random",
        "_phase",
        "_accel",
        "_transition",
        "_state",
        "_fail_time",
        "_gate_counts",
        "_pending_actions",
        "_system_down",
        "_down_since",
        "_trajectory",
        # batched event tallies, carries and baselines (_zero_tallies)
        "_n_phase_jumps",
        "_n_component_failures",
        "_n_rdep_accelerations",
        "_n_system_failures",
        "_n_system_restorations",
        "_n_inspections",
        "_n_detections",
        "_n_preventive_actions",
        "_n_corrective",
        "_n_repair_rounds",
        "_insp_base",
        "_prev_base",
    )

    _REBUILT_ATTRS = ("_jump_cb", "_inspection_plans", "_repair_plans")

    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in self._PER_RUN_ATTRS + self._REBUILT_ATTRS:
            state.pop(attr, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._build_plans()
        self._init_per_run_state()

    def clone(self) -> "FMTSimulator":
        """A fresh simulator sharing this one's validated structure.

        Skips strategy application, tree validation and static-table
        construction — the clone references the same immutable tables —
        while per-run state and the ``self``-bound callbacks are its
        own.  Behaviour is bit-identical to a newly constructed
        simulator with the same arguments.
        """
        new = object.__new__(type(self))
        new.__setstate__(self.__getstate__())
        return new

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def simulate(self, rng: np.random.Generator) -> Trajectory:
        """Run one trajectory to the horizon and return its record."""
        self._reset(rng)
        if self._instr is None:
            self._engine.run_until(self._horizon)
            self._finalize()
        else:
            # Timed inline (not via Timer.time()): the contextmanager
            # plus the per-call registry lookup cost more than the
            # whole rest of the per-trajectory telemetry.
            start = _time.perf_counter()
            self._engine.run_until(self._horizon)
            self._finalize()
            self._sim_timer.observe(_time.perf_counter() - start)
            self._instr.count(_obs.SIM_TRAJECTORIES)
            self.flush_instrumentation()
        if logger.isEnabledFor(10):  # logging.DEBUG, avoided on the hot path
            trajectory = self._trajectory
            logger.debug(
                kv(
                    "trajectory done",
                    horizon=trajectory.horizon,
                    failures=trajectory.n_failures,
                    downtime=trajectory.downtime,
                    inspections=trajectory.n_inspections,
                    preventive=trajectory.n_preventive_actions,
                    corrective=trajectory.n_corrective_replacements,
                )
            )
        return self._trajectory

    # ------------------------------------------------------------------
    # Stepwise driving and state forking (importance splitting)
    # ------------------------------------------------------------------
    # None of the methods below are touched by simulate(); a crude
    # Monte Carlo run draws exactly the same random numbers in the same
    # order whether or not this block exists (bit-identity guarantee,
    # regression-tested in tests/test_rareevent.py).

    @property
    def now(self) -> float:
        """Current simulation clock of the active run."""
        return self._engine.now

    @property
    def phases(self) -> Dict[str, int]:
        """Live degradation phase per basic event (treat as read-only)."""
        return self._phase

    @property
    def states(self) -> Dict[str, bool]:
        """Live failed-state per tree node (treat as read-only)."""
        return self._state

    @property
    def system_failed(self) -> bool:
        """Whether the top event has occurred in the active run."""
        return bool(self._trajectory.failure_times)

    @property
    def trajectory(self) -> Trajectory:
        """The record of the active run (mutated as the run advances)."""
        return self._trajectory

    def begin(self, rng: np.random.Generator) -> None:
        """Initialise a stepwise run; drive it with :meth:`step`.

        Equivalent to the setup :meth:`simulate` performs before its
        event loop.  Use :meth:`finish` to close the trajectory record.
        """
        self._reset(rng)

    def step(self) -> bool:
        """Execute the next event within the horizon.

        Returns False once the calendar is exhausted, the next event
        lies past the horizon, or an absorbing stop was requested —
        i.e. exactly when :meth:`Engine.run_until` would have returned.
        """
        if self._engine.stopped:
            return False
        next_time = self._engine.peek_time()
        if next_time is None or next_time > self._horizon:
            return False
        return self._engine.step()

    def finish(self) -> Trajectory:
        """Run the remaining events to the horizon and close the record."""
        if not self._engine.stopped:
            self._engine.run_until(self._horizon)
        self._finalize()
        return self._trajectory

    def snapshot(self) -> SimulatorSnapshot:
        """Capture the complete mid-run state of the simulator.

        The snapshot is independent of the run's future: it stays valid
        after the run advances, so a splitting driver can take one
        snapshot at a level up-crossing and restore it several times.
        """
        return SimulatorSnapshot(
            engine=self._engine.snapshot(),
            phase=dict(self._phase),
            accel=dict(self._accel),
            state=dict(self._state),
            fail_time=dict(self._fail_time),
            transition=dict(self._transition),
            pending_actions={
                name: dict(handles)
                for name, handles in self._pending_actions.items()
            },
            system_down=self._system_down,
            down_since=self._down_since,
            trajectory=self._trajectory.copy(),
        )

    def restore(
        self,
        snapshot: SimulatorSnapshot,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Rewind the simulator to ``snapshot`` (cloning a trajectory).

        ``rng`` optionally swaps in a fresh random stream for the
        resumed timeline; combine with :meth:`resample_transitions` so
        the clone diverges from its parent.  All scheduled-event handles
        (degradation transitions, pending work orders) are rewired to
        the restored calendar; handles whose event already executed or
        was cancelled before the snapshot resolve to None/are dropped.
        """
        # The abandoned timeline's inspections/actions really happened:
        # fold their deltas into the carries before the trajectory
        # record rewinds to the snapshot's counts.
        self._n_inspections += self._trajectory.n_inspections - self._insp_base
        self._n_preventive_actions += (
            self._trajectory.n_preventive_actions - self._prev_base
        )
        mapping = self._engine.restore(snapshot.engine)
        self._phase = dict(snapshot.phase)
        self._accel = dict(snapshot.accel)
        self._state = dict(snapshot.state)
        self._fail_time = dict(snapshot.fail_time)
        # The incremental gate counters are derived state: rebuild them
        # from the restored child states.
        state = self._state
        self._gate_counts = {
            gate: sum(1 for child in children if state[child])
            for gate, children in self._count_children.items()
        }
        self._transition = {
            name: (mapping.get(id(handle)) if handle is not None else None)
            for name, handle in snapshot.transition.items()
        }
        self._pending_actions = {
            name: {
                module: new_handle
                for module, handle in handles.items()
                if (new_handle := mapping.get(id(handle))) is not None
            }
            for name, handles in snapshot.pending_actions.items()
        }
        self._system_down = snapshot.system_down
        self._down_since = snapshot.down_since
        self._trajectory = snapshot.trajectory.copy()
        self._insp_base = self._trajectory.n_inspections
        self._prev_base = self._trajectory.n_preventive_actions
        if rng is not None:
            self._set_rng(rng)

    def resample_transitions(self) -> None:
        """Redraw every pending degradation jump from the current RNG.

        Exponential sojourns are memoryless, so replacing a pending
        phase-jump time with a fresh draw at the same rate leaves the
        trajectory distribution unchanged — this is how restored clones
        are decorrelated from their parent (and from each other).
        Deterministic events (inspections, repairs, work orders,
        restoration) are *not* resampled: their times are part of the
        schedule, not of the stochastic state.
        """
        for name in self._events:
            if self._transition[name] is not None:
                self._cancel_transition(name)
                self._schedule_transition(name)

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------
    def _reset(self, rng: np.random.Generator) -> None:
        # Fold any tallies stranded by an abandoned step-driven run
        # into the *outgoing* registry before swapping in the new one.
        self.flush_instrumentation()
        instr = self.config.instrumentation
        self._instr = instr if instr is not None else _obs.current()
        self._sim_timer = (
            None if self._instr is None
            else self._instr.timer(_obs.TIMER_SIMULATE)
        )
        self._engine.reset(instrumentation=self._instr)
        self._set_rng(rng)
        self._phase = dict(self._phase0)
        self._accel = dict(self._accel0)
        self._transition = dict(self._transition0)
        self._state = dict(self._state0)
        self._fail_time = dict(self._fail0)
        self._gate_counts = dict(self._counts0)
        self._pending_actions = {name: {} for name in self._events}
        self._system_down = False
        self._down_since = 0.0
        self._trajectory = Trajectory(
            horizon=self._horizon,
            events_recorded=self.config.record_events,
        )
        self._zero_tallies()

        for name in self._events:
            self._schedule_transition(name)
        for plan in self._inspection_plans:
            self._schedule_tick(plan, self._first_tick(plan), _PRIO_INSPECTION)
        for plan in self._repair_plans:
            self._schedule_tick(plan, self._first_tick(plan), _PRIO_REPAIR)

    def _first_tick(self, plan: _ModulePlan) -> float:
        if plan.exponential:
            return self._rng_exponential(plan.period)
        return plan.offset

    def _next_tick(self, plan: _ModulePlan) -> float:
        if plan.exponential:
            return self._engine.now + self._rng_exponential(plan.period)
        return self._engine.now + plan.period

    def _schedule_tick(self, plan: _ModulePlan, time: float, priority: int) -> None:
        if time > self._horizon:
            return
        self._schedule(time, plan.callback, priority)

    def _finalize(self) -> None:
        if self._system_down:
            elapsed = self._horizon - self._down_since
            if elapsed > 0.0:
                self._trajectory.downtime += elapsed
                self._charge_downtime(self._down_since, self._horizon)

    def _discount_factor(self, time: float) -> float:
        # Mirrors CostModel.discount_factor exactly (bit-identity);
        # inlined here so the undiscounted common case costs one
        # comparison instead of a method call plus math.exp.
        rate = self._discount_rate
        if rate == 0.0:
            return 1.0
        return math.exp(-rate * time)

    # ------------------------------------------------------------------
    # Degradation dynamics
    # ------------------------------------------------------------------
    def _schedule_transition(self, name: str) -> None:
        """Schedule the next phase jump of component ``name``."""
        phase = self._phase[name]
        inv_rates = self._inv_rates[name]
        if phase >= len(inv_rates):
            self._transition[name] = None
            return
        accel = self._accel[name]
        if accel == 1.0:
            # rate * 1.0 == rate exactly, so the precomputed reciprocal
            # is bit-identical to 1.0 / (rate * accel).
            scale = inv_rates[phase]
        else:
            scale = 1.0 / (self._rates[name][phase] * accel)
        delay = self._rng_exponential(scale)
        self._transition[name] = self._schedule_after(
            delay, self._jump_cb[name], _PRIO_TRANSITION
        )

    def _on_phase_jump(self, name: str) -> None:
        phase = self._phase[name] + 1
        self._phase[name] = phase
        if self._instr is not None:
            self._n_phase_jumps += 1
        if phase >= self._n_phases[name]:
            self._transition[name] = None
            if self._instr is not None:
                self._n_component_failures += 1
            if self._recording:
                self._record(name, "failure", phase=phase)
            self._set_component_state(name, failed=True)
        else:
            self._schedule_transition(name)

    def _cancel_transition(self, name: str) -> None:
        pending = self._transition[name]
        if pending is not None:
            pending.cancel()
            self._transition[name] = None

    def _set_phase(self, name: str, phase: int) -> None:
        """Force component ``name`` to ``phase`` (maintenance restore)."""
        n_phases = self._n_phases[name]
        if not 0 <= phase <= n_phases:
            raise SimulationError(f"{name}: phase {phase} out of range")
        was_failed = self._phase[name] >= n_phases
        self._cancel_transition(name)
        self._phase[name] = phase
        self._schedule_transition(name)
        now_failed = phase >= n_phases
        if was_failed != now_failed:
            self._set_component_state(name, failed=now_failed)

    # ------------------------------------------------------------------
    # State propagation
    # ------------------------------------------------------------------
    def _set_component_state(self, name: str, failed: bool) -> None:
        if self._state[name] == failed:
            return
        self._state[name] = failed
        self._fail_time[name] = self._engine.now if failed else None
        self._propagate_from(name, 1 if failed else -1)

    def _propagate_from(self, origin: str, delta: int) -> None:
        """Recompute gate states upward from ``origin``; handle effects.

        ``delta`` is the origin's state change (+1 failed, -1 restored).
        Monotone gates update their failed-children count in O(1); only
        priority-AND gates re-evaluate their children.  Deltas are
        recorded at flip time (not read back from the state dict), so
        shared gates in a DAG that flip more than once during one
        propagation stay exact.
        """
        state = self._state
        fail_time = self._fail_time
        counts = self._gate_counts
        parent_info = self._parent_info
        now = self._engine.now
        top = self._top_name
        changed: List[Tuple[str, int]] = [(origin, delta)]
        self._apply_rdep_effects(origin)
        index = 0
        while index < len(changed):
            current, delta = changed[index]
            index += 1
            for parent_name, gate, threshold in parent_info[current]:
                if threshold is not None:
                    count = counts[parent_name] + delta
                    counts[parent_name] = count
                    new_state = count >= threshold
                else:
                    new_state = self._evaluate_pand(gate)
                if new_state == state[parent_name]:
                    continue
                state[parent_name] = new_state
                fail_time[parent_name] = now if new_state else None
                self._apply_rdep_effects(parent_name)
                if parent_name == top and new_state:
                    self._on_system_failure()
                changed.append((parent_name, 1 if new_state else -1))

    def _evaluate_pand(self, gate: PandGate) -> bool:
        """Exact order-sensitive priority-AND evaluation."""
        state = self._state
        fail_time = self._fail_time
        previous = -math.inf
        for child in gate.children:
            child_name = child.name
            if not state[child_name]:
                return False
            time = fail_time[child_name]
            if time < previous:
                return False
            previous = time
        return True

    def _evaluate_gate(self, gate: Gate) -> bool:
        """Full (non-incremental) gate evaluation; kept for cross-checks."""
        if isinstance(gate, PandGate):
            times = [
                self._fail_time[child.name] if self._state[child.name] else None
                for child in gate.children
            ]
            return gate.evaluate_ordered(times)
        return gate.evaluate([self._state[child.name] for child in gate.children])

    def _apply_rdep_effects(self, trigger_name: str) -> None:
        for dep in self._rdeps_by_trigger.get(trigger_name, ()):
            for target in dep.targets:
                self._update_accel(target)

    def _update_accel(self, target: str) -> None:
        factor = 1.0
        for dep in self._rdeps_by_target.get(target, ()):
            if self._state[dep.trigger]:
                factor *= dep.factor
        if factor == self._accel[target]:
            return
        self._accel[target] = factor
        if self._instr is not None:
            self._n_rdep_accelerations += 1
        # Exponential sojourns are memoryless: rescheduling the pending
        # jump with the new rate realises the rate change exactly.
        if self._transition[target] is not None:
            self._cancel_transition(target)
            self._schedule_transition(target)

    # ------------------------------------------------------------------
    # System failure response
    # ------------------------------------------------------------------
    def _on_system_failure(self) -> None:
        now = self._engine.now
        if self._instr is not None:
            self._n_system_failures += 1
        self._trajectory.failure_times.append(now)
        if self._recording:
            self._record(self._top_name, "system_failure")
        cost_model = self.config.cost_model
        self._trajectory.costs.failures += (
            cost_model.system_failure * self._discount_factor(now)
        )

        if self.strategy.on_system_failure == "none":
            # Absorbing: the system stays down until the horizon.
            self._system_down = True
            self._down_since = now
            self._engine.stop()
            return

        self._system_down = True
        self._down_since = now
        self._trajectory.n_corrective_replacements += 1
        # The asset is being replaced: nothing degrades, planned work on
        # the old asset is moot.
        for name in self._events:
            self._cancel_transition(name)
        for pending in self._pending_actions.values():
            for handle in pending.values():
                handle.cancel()
            pending.clear()
        self._engine.schedule_after(
            self.strategy.system_repair_time, self._on_system_restored, _PRIO_RESTORE
        )

    def _on_system_restored(self) -> None:
        now = self._engine.now
        if self._instr is not None:
            self._n_system_restorations += 1
        elapsed = now - self._down_since
        self._trajectory.downtime += elapsed
        self._charge_downtime(self._down_since, now)
        self._system_down = False
        if self._recording:
            self._record(self._top_name, "system_restored")
        for name in self._events:
            self._phase[name] = 0
            if self._state[name]:
                self._set_component_state(name, failed=False)
            self._schedule_transition(name)

    def _charge_downtime(self, start: float, end: float) -> None:
        self._trajectory.costs.downtime += (
            self.config.cost_model.discounted_downtime_cost(start, end)
        )

    # ------------------------------------------------------------------
    # Inspection modules
    # ------------------------------------------------------------------
    def _on_inspection(self, plan: _ModulePlan) -> None:
        now = self._engine.now
        # Reschedule first (inlined _next_tick/_schedule_tick): the
        # exponential-timing RNG draw happens before any detection
        # draws of this visit, exactly as in the reference code.
        if plan.exponential:
            next_time = now + self._rng_exponential(plan.period)
        else:
            next_time = now + plan.period
        if next_time <= self._horizon:
            self._schedule(next_time, plan.callback, _PRIO_INSPECTION)
        if self._system_down:
            return
        trajectory = self._trajectory
        trajectory.n_inspections += 1
        instr = self._instr
        rate = self._discount_rate
        trajectory.costs.inspections += plan.visit_cost * (
            1.0 if rate == 0.0 else math.exp(-rate * now)
        )
        state = self._state
        phase = self._phase
        pending_actions = self._pending_actions
        detection_probability = plan.detection_probability
        for target, threshold in plan.targets:
            if state[target]:
                if plan.detect_failures:
                    self._corrective_replace(target)
                continue
            if phase[target] < threshold:
                continue
            if (
                detection_probability < 1.0
                and self._rng_random() >= detection_probability
            ):
                continue  # imperfect inspection missed the degradation
            if instr is not None:
                self._n_detections += 1
            if self._recording:
                self._record(target, "detection", phase=phase[target])
            if plan.name in pending_actions[target]:
                continue
            if plan.delay <= 0.0:
                self._perform_action(plan, target)
            else:
                handle = self._schedule_after(
                    plan.delay,
                    partial(self._on_delayed_action, plan, target),
                    _PRIO_ACTION,
                )
                pending_actions[target][plan.name] = handle

    def _on_delayed_action(self, plan: _ModulePlan, target: str) -> None:
        self._pending_actions[target].pop(plan.name, None)
        if self._system_down:
            return
        if self._state[target]:
            # The component failed while the work order was pending;
            # the crew replaces it instead.
            self._corrective_replace(target)
            return
        self._perform_action(plan, target)

    def _perform_action(self, plan: _ModulePlan, target: str) -> None:
        trajectory = self._trajectory
        trajectory.costs.preventive += plan.action_cost[
            target
        ] * self._discount_factor(self._engine.now)
        trajectory.n_preventive_actions += 1
        new_phase = plan.action.resulting_phase(self._phase[target])
        if self._recording:
            self._record(target, plan.action_kind, phase=new_phase)
        self._set_phase(target, new_phase)

    def _corrective_replace(self, target: str) -> None:
        trajectory = self._trajectory
        trajectory.costs.corrective += self._corrective_cost[
            target
        ] * self._discount_factor(self._engine.now)
        trajectory.n_corrective_replacements += 1
        if self._instr is not None:
            self._n_corrective += 1
        if self._recording:
            self._record(target, "replace", corrective=True, phase=0)
        self._set_phase(target, 0)

    # ------------------------------------------------------------------
    # Repair modules
    # ------------------------------------------------------------------
    def _on_repair(self, plan: _ModulePlan) -> None:
        now = self._engine.now
        if plan.exponential:
            next_time = now + self._rng_exponential(plan.period)
        else:
            next_time = now + plan.period
        if next_time <= self._horizon:
            self._schedule(next_time, plan.callback, _PRIO_REPAIR)
        if self._system_down:
            return
        if self._instr is not None:
            self._n_repair_rounds += 1
        for target, _ in plan.targets:
            self._perform_action(plan, target)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(
        self,
        component: str,
        kind: str,
        corrective: bool = False,
        phase: Optional[int] = None,
    ) -> None:
        if not self._recording:
            return
        self._trajectory.events.append(
            ComponentEvent(
                time=self._engine.now,
                component=component,
                kind=kind,
                corrective=corrective,
                phase=phase,
            )
        )
