"""Zero-copy shared-memory transport for parallel KPI columns.

The pickled parallel path ships every worker chunk's
:class:`~repro.simulation.batch.TrajectoryBatch` columns over the
result pipe — a serialize/deserialize/copy per chunk.  This module
replaces the pipe with one ``multiprocessing.shared_memory`` segment
sized up front from the chunk plan: workers write their KPI columns
directly into the segment at their chunk's row offset, ship back only
a tiny :class:`ShmChunkHandle`, and the driver materializes the final
batch with one copy out of the segment — no column bytes are ever
pickled.

Layout
------
One segment holds, back to back:

* ten fixed-width columns of length ``n_total`` (trajectory count):
  ``downtime``, the five :data:`~repro.simulation.batch.COST_FIELDS`
  cost columns, the three maintenance counters, and ``n_failures`` —
  80 bytes per trajectory;
* a failure-times region, partitioned per chunk at
  ``FAILURE_SLOTS_PER_ROW`` ``float64`` slots per trajectory.

Failure times are the only variable-length material.  A chunk whose
trajectories fail more often than the reserved slots allow falls back
to pickling *that chunk's* times through the handle (lossless, just
slower); every fixed column still travels through the segment.

Lifecycle
---------
The driver owns the segment: :class:`ShmBatchWriter` creates it and
``close()`` (idempotent, called from a ``finally``) unlinks it even
when a worker crashes mid-dispatch.  Workers attach by name, write,
and detach per chunk; they never unlink.  On platforms or filesystems
without shared-memory support the caller simply keeps using the
pickled path (:func:`shared_memory_available`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.simulation.batch import COST_FIELDS, TrajectoryBatch

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "FAILURE_SLOTS_PER_ROW",
    "ShmChunkSpec",
    "ShmChunkHandle",
    "ShmBatchWriter",
    "write_chunk_batch",
    "shared_memory_available",
]

#: ``float64`` failure-time slots reserved per trajectory.  Maintained
#: models average well under one system failure per run; four slots
#: make per-chunk overflow (and hence the pickled fallback) rare
#: without bloating the segment.
FAILURE_SLOTS_PER_ROW = 4

#: Fixed column plan: (name, dtype) in write order.  ``downtime`` and
#: the cost columns are float64; counters and ``n_failures`` are int64.
#: The order is load-bearing only for offset computation — both sides
#: derive offsets from this one table.
_COLUMNS: Tuple[Tuple[str, np.dtype], ...] = tuple(
    [("downtime", np.dtype(np.float64))]
    + [(f"cost_{field}", np.dtype(np.float64)) for field in COST_FIELDS]
    + [
        ("n_inspections", np.dtype(np.int64)),
        ("n_preventive_actions", np.dtype(np.int64)),
        ("n_corrective_replacements", np.dtype(np.int64)),
        ("n_failures", np.dtype(np.int64)),
    ]
)

_ROW_BYTES = sum(dtype.itemsize for _, dtype in _COLUMNS)


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` can be used here."""
    return shared_memory is not None


@dataclass(frozen=True)
class ShmChunkSpec:
    """A worker's write window into the shared segment (picklable).

    ``n_total`` lets the worker re-derive the column layout; the rest
    addresses this chunk's rows and its failure-time partition
    (``ft_offset``/``ft_capacity`` in ``float64`` elements relative to
    the failure-times region).
    """

    name: str
    n_total: int
    row_start: int
    n_rows: int
    ft_offset: int
    ft_capacity: int


@dataclass(frozen=True)
class ShmChunkHandle:
    """What a worker ships back instead of its columns: the packed
    failure-time count, plus the times themselves only when the
    chunk's reserved slots overflowed."""

    n_rows: int
    n_times: int
    overflow_times: Optional[np.ndarray] = None


def _column_views(
    buf: memoryview, n_total: int
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Column name -> full-length array view, plus the failure region.

    Views alias the segment buffer — callers must drop every view
    before closing the segment (``SharedMemory.close`` refuses while
    exported buffers exist).
    """
    views: Dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype in _COLUMNS:
        views[name] = np.frombuffer(
            buf, dtype=dtype, count=n_total, offset=offset
        )
        offset += n_total * dtype.itemsize
    ft_region = np.frombuffer(buf, dtype=np.float64, offset=offset)
    return views, ft_region


def _attach(name: str):
    """Attach to an existing segment.

    With fork-started workers (the Linux default this project runs on)
    the worker shares the driver's resource tracker, so the attach-side
    registration is a set-level no-op and the driver's ``unlink`` is
    the single deregistration — the tracker stays a crash safety net
    that unlinks the segment if the whole process tree dies.
    """
    return shared_memory.SharedMemory(name=name)


def write_chunk_batch(batch: TrajectoryBatch, spec: ShmChunkSpec) -> ShmChunkHandle:
    """Worker side: scatter one chunk's batch into the segment.

    The fixed columns land at ``[row_start, row_start + n_rows)``; the
    packed failure times land in the chunk's partition when they fit,
    else travel back pickled on the handle.  Returns the handle the
    driver folds.
    """
    if len(batch) != spec.n_rows:
        raise SimulationError(
            f"chunk produced {len(batch)} trajectories but the shared "
            f"segment reserved {spec.n_rows}"
        )
    shm = _attach(spec.name)
    try:
        _scatter(shm.buf, batch, spec)
    finally:
        shm.close()
    times = batch.failure_times
    overflow = times if len(times) > spec.ft_capacity else None
    return ShmChunkHandle(
        n_rows=spec.n_rows, n_times=len(times), overflow_times=overflow
    )


def _scatter(buf: memoryview, batch: TrajectoryBatch, spec: ShmChunkSpec) -> None:
    # Separate helper so every buffer-aliasing view dies with this
    # frame, letting the caller close the segment.
    views, ft_region = _column_views(buf, spec.n_total)
    rows = slice(spec.row_start, spec.row_start + spec.n_rows)
    views["downtime"][rows] = batch.downtime
    for field in COST_FIELDS:
        views[f"cost_{field}"][rows] = batch.costs[field]
    views["n_inspections"][rows] = batch.n_inspections
    views["n_preventive_actions"][rows] = batch.n_preventive_actions
    views["n_corrective_replacements"][rows] = batch.n_corrective_replacements
    views["n_failures"][rows] = batch.n_failures
    times = batch.failure_times
    if len(times) <= spec.ft_capacity:
        ft_region[spec.ft_offset:spec.ft_offset + len(times)] = times


class ShmBatchWriter:
    """Driver side: one segment sized from the chunk plan.

    Parameters
    ----------
    horizon:
        The batch horizon (workers never write it; the driver pins it).
    chunk_sizes:
        Trajectory count per dispatched chunk, in seed order — exactly
        the plan ``_chunk_seeds`` produced.
    slots_per_row:
        Failure-time slots reserved per trajectory.
    """

    def __init__(
        self,
        horizon: float,
        chunk_sizes: Sequence[int],
        slots_per_row: int = FAILURE_SLOTS_PER_ROW,
    ):
        if shared_memory is None:  # pragma: no cover - platform guard
            raise SimulationError("shared memory is not available here")
        if not chunk_sizes or min(chunk_sizes) < 1:
            raise ValidationError(
                f"chunk plan must hold positive sizes, got {list(chunk_sizes)}"
            )
        self.horizon = float(horizon)
        self.chunk_sizes = [int(size) for size in chunk_sizes]
        self.n_total = sum(self.chunk_sizes)
        self._specs: List[ShmChunkSpec] = []
        ft_offset = 0
        row_start = 0
        for size in self.chunk_sizes:
            capacity = size * slots_per_row
            self._specs.append(
                ShmChunkSpec(
                    name="",  # patched below once the segment exists
                    n_total=self.n_total,
                    row_start=row_start,
                    n_rows=size,
                    ft_offset=ft_offset,
                    ft_capacity=capacity,
                )
            )
            row_start += size
            ft_offset += capacity
        total_bytes = self.n_total * _ROW_BYTES + ft_offset * 8
        self._shm = shared_memory.SharedMemory(create=True, size=total_bytes)
        self._specs = [
            ShmChunkSpec(
                name=self._shm.name,
                n_total=spec.n_total,
                row_start=spec.row_start,
                n_rows=spec.n_rows,
                ft_offset=spec.ft_offset,
                ft_capacity=spec.ft_capacity,
            )
            for spec in self._specs
        ]

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    def spec(self, index: int) -> ShmChunkSpec:
        """The write window for chunk ``index`` (seed order)."""
        return self._specs[index]

    @property
    def specs(self) -> List[ShmChunkSpec]:
        return list(self._specs)

    def finalize(self, handles: Sequence[ShmChunkHandle]) -> TrajectoryBatch:
        """Materialize the batch: one copy out of the segment.

        ``handles`` must be in chunk (seed) order.  Fixed columns are
        read straight from the segment; failure times are compacted
        from the per-chunk partitions (or the pickled overflow) into
        one packed array.  The returned batch owns its memory — it
        stays valid after :meth:`close`.
        """
        if len(handles) != len(self._specs):
            raise SimulationError(
                f"expected {len(self._specs)} chunk handles, got {len(handles)}"
            )
        if self._shm is None:
            raise SimulationError("shared segment already closed")
        return self._gather(handles)

    def _gather(self, handles: Sequence[ShmChunkHandle]) -> TrajectoryBatch:
        views, ft_region = _column_views(self._shm.buf, self.n_total)
        total_times = sum(handle.n_times for handle in handles)
        failure_times = np.empty(total_times, dtype=np.float64)
        pos = 0
        for spec, handle in zip(self._specs, handles):
            if handle.overflow_times is not None:
                chunk_times = handle.overflow_times
            else:
                chunk_times = ft_region[
                    spec.ft_offset:spec.ft_offset + handle.n_times
                ]
            failure_times[pos:pos + handle.n_times] = chunk_times
            pos += handle.n_times
        offsets = np.zeros(self.n_total + 1, dtype=np.int64)
        np.cumsum(views["n_failures"], out=offsets[1:])
        batch = TrajectoryBatch(
            horizon=self.horizon,
            failure_times=failure_times,
            failure_offsets=offsets,
            downtime=views["downtime"].copy(),
            costs={
                field: views[f"cost_{field}"].copy() for field in COST_FIELDS
            },
            n_inspections=views["n_inspections"].copy(),
            n_preventive_actions=views["n_preventive_actions"].copy(),
            n_corrective_replacements=views["n_corrective_replacements"].copy(),
        )
        del views, ft_region
        return batch

    def close(self) -> None:
        """Release and unlink the segment (idempotent, crash-safe)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmBatchWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._shm is None else self._shm.name
        return (
            f"ShmBatchWriter(n={self.n_total}, "
            f"chunks={len(self.chunk_sizes)}, segment={state})"
        )
