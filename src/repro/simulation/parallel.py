"""Multiprocessing support for Monte Carlo replication.

Trajectories are embarrassingly parallel; this module fans batches out
to worker processes.  Reproducibility is preserved exactly: the child
RNG streams are derived from the root seed in the same order a serial
run would use them, so ``run_parallel`` returns **bit-identical KPIs**
to :meth:`repro.simulation.montecarlo.MonteCarlo.run` with the same
seed (the test suite asserts this).

The simulator object is pickled once per worker; per-trajectory work
ships only a :class:`numpy.random.SeedSequence`.  A worker process
dying (OOM-kill, segfault, ``os._exit``) surfaces as a
:class:`~repro.errors.SimulationError` instead of a hang or an opaque
pool exception.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.executor import FMTSimulator
from repro.simulation.trace import Trajectory

__all__ = ["simulate_batch", "sample_parallel", "default_process_count"]

logger = get_logger(__name__)

#: Default cap on the automatic fan-out: beyond this, per-worker
#: simulator unpickling and IPC overhead outweigh extra cores for the
#: replication counts this project runs.
MAX_DEFAULT_PROCESSES = 8

# Module-level worker state: initialised once per process, so the
# (potentially large) simulator is unpickled a single time.
_WORKER_SIMULATOR: Optional[FMTSimulator] = None


def default_process_count(n_tasks: Optional[int] = None) -> int:
    """Fan-out used when the caller does not pick one.

    ``os.cpu_count()`` capped at :data:`MAX_DEFAULT_PROCESSES`, and at
    ``n_tasks`` when given (no point spawning more workers than there
    are trajectories).  Always >= 1.
    """
    count = min(os.cpu_count() or 1, MAX_DEFAULT_PROCESSES)
    if n_tasks is not None:
        count = min(count, n_tasks)
    return max(1, count)


def _init_worker(simulator: FMTSimulator) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def simulate_batch(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> List[Trajectory]:
    """Simulate one trajectory per seed, in-process."""
    return [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]


def _worker_batch(seeds: Sequence[np.random.SeedSequence]) -> List[Trajectory]:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch(_WORKER_SIMULATOR, seeds)


def sample_parallel(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
) -> List[Trajectory]:
    """Simulate one trajectory per seed across worker processes.

    Results are returned in seed order (hence identical to a serial
    run over the same seeds, regardless of worker scheduling).

    Raises
    ------
    SimulationError
        If a worker process dies (the pool is then unusable); the
        original pool exception is chained as ``__cause__``.
    """
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch(simulator, seeds)
    if chunk_size is None:
        chunk_size = max(1, len(seeds) // (processes * 4))
    elif chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        seeds[start:start + chunk_size]
        for start in range(0, len(seeds), chunk_size)
    ]
    logger.debug(
        kv(
            "sample_parallel dispatch",
            trajectories=len(seeds),
            processes=processes,
            chunks=len(chunks),
            chunk_size=chunk_size,
        )
    )
    results: List[Trajectory] = []
    with ProcessPoolExecutor(
        max_workers=processes,
        initializer=_init_worker,
        initargs=(simulator,),
    ) as pool:
        try:
            for batch in pool.map(_worker_batch, chunks):
                results.extend(batch)
        except BrokenProcessPool as exc:
            logger.error(
                kv(
                    "worker process crashed",
                    processes=processes,
                    completed=len(results),
                    total=len(seeds),
                )
            )
            raise SimulationError(
                "a Monte Carlo worker process terminated abruptly "
                f"(completed {len(results)}/{len(seeds)} trajectories); "
                "rerun with processes=1 to reproduce the failure in-process"
            ) from exc
    return results
