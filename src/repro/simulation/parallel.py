"""Multiprocessing support for Monte Carlo replication.

Trajectories are embarrassingly parallel; this module fans batches out
to worker processes.  Reproducibility is preserved exactly: the child
RNG streams are derived from the root seed in the same order a serial
run would use them, so ``run_parallel`` returns **bit-identical KPIs**
to :meth:`repro.simulation.montecarlo.MonteCarlo.run` with the same
seed (the test suite asserts this).

The simulator object is pickled once per worker; per-trajectory work
ships only a :class:`numpy.random.SeedSequence`.  Results come back in
one of two shapes:

* :func:`sample_parallel` — full :class:`~repro.simulation.trace.
  Trajectory` object lists (needed when events or the objects
  themselves are kept);
* :func:`sample_parallel_batch` — packed
  :class:`~repro.simulation.batch.TrajectoryBatch` columns.  Workers
  reduce each trajectory to its KPI scalars immediately, so the pipe
  carries a few numpy arrays per chunk (~an order of magnitude fewer
  bytes than pickled object lists) and the driver folds them into one
  accumulator instead of materializing ``n_runs`` Python objects.

A worker process dying (OOM-kill, segfault, ``os._exit``) surfaces as
a :class:`~repro.errors.SimulationError` instead of a hang or an
opaque pool exception.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.executor import FMTSimulator
from repro.simulation.trace import Trajectory

__all__ = [
    "simulate_batch",
    "simulate_batch_columns",
    "sample_parallel",
    "sample_parallel_batch",
    "default_process_count",
    "SharedSimulationPool",
]

logger = get_logger(__name__)

#: Default cap on the automatic fan-out: beyond this, per-worker
#: simulator unpickling and IPC overhead outweigh extra cores for the
#: replication counts this project runs.
MAX_DEFAULT_PROCESSES = 8

# Module-level worker state: initialised once per process, so the
# (potentially large) simulator is unpickled a single time.
_WORKER_SIMULATOR: Optional[FMTSimulator] = None


def _available_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's CPUs even when a cgroup
    quota or CPU affinity mask (containers, CI runners, ``taskset``)
    restricts the process to far fewer — spawning workers for CPUs we
    cannot use only adds pickling and scheduling overhead.  The
    affinity mask (where the platform exposes one) is authoritative.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            affinity = 0
        if affinity:
            return affinity
    return os.cpu_count() or 1


def default_process_count(n_tasks: Optional[int] = None) -> int:
    """Fan-out used when the caller does not pick one.

    The schedulable CPU count (see :func:`_available_cpu_count`) capped
    at :data:`MAX_DEFAULT_PROCESSES`, and at ``n_tasks`` when given (no
    point spawning more workers than there are trajectories).  Always
    >= 1.
    """
    count = min(_available_cpu_count(), MAX_DEFAULT_PROCESSES)
    if n_tasks is not None:
        count = min(count, n_tasks)
    return max(1, count)


def _init_worker(simulator: FMTSimulator) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def simulate_batch(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> List[Trajectory]:
    """Simulate one trajectory per seed, in-process."""
    return [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]


def simulate_batch_columns(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> TrajectoryBatch:
    """Simulate one trajectory per seed, reduced to batch columns.

    Each trajectory object is folded into the accumulator as soon as
    it is produced and becomes garbage immediately — resident memory
    is one trajectory plus the columns, regardless of ``len(seeds)``.
    """
    accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
    simulate = simulator.simulate
    add = accumulator.add
    for seed in seeds:
        add(simulate(np.random.default_rng(seed)))
    return accumulator.finalize()


def _worker_batch(seeds: Sequence[np.random.SeedSequence]) -> List[Trajectory]:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch(_WORKER_SIMULATOR, seeds)


def _worker_batch_columns(
    seeds: Sequence[np.random.SeedSequence],
) -> TrajectoryBatch:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch_columns(_WORKER_SIMULATOR, seeds)


# Shared-pool worker state: simulators cached by payload digest, so one
# pool can serve many different studies and each worker unpickles a
# given simulator at most once.
_SHARED_SIMULATORS: Dict[str, FMTSimulator] = {}

#: Cached simulators kept per shared-pool worker before the cache is
#: cleared; a study sweep touches a handful of simulators, and an
#: unbounded cache would pin every model a long-lived pool ever saw.
MAX_CACHED_SIMULATORS = 16


def _shared_simulator(digest: str, blob: bytes) -> FMTSimulator:
    simulator = _SHARED_SIMULATORS.get(digest)
    if simulator is None:
        if len(_SHARED_SIMULATORS) >= MAX_CACHED_SIMULATORS:
            _SHARED_SIMULATORS.clear()
        simulator = pickle.loads(blob)
        _SHARED_SIMULATORS[digest] = simulator
    return simulator


def _shared_worker_batch(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence]],
) -> List[Trajectory]:
    digest, blob, seeds = payload
    return simulate_batch(_shared_simulator(digest, blob), seeds)


def _shared_worker_batch_columns(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence]],
) -> TrajectoryBatch:
    digest, blob, seeds = payload
    return simulate_batch_columns(_shared_simulator(digest, blob), seeds)


class SharedSimulationPool:
    """A process pool reusable across many (simulator, seeds) studies.

    ``sample_parallel`` normally spins up a dedicated pool whose
    workers are initialised with one pickled simulator — fine for a
    single large run, wasteful when an experiment sweep performs many
    medium runs back to back.  A shared pool is created once, sized
    once, and serves every study of a sweep: tasks carry the pickled
    simulator plus its digest, and workers cache unpickled simulators
    by digest, so repeated studies of the same model pay the transfer
    but not the unpickling.

    Results are bit-identical to a dedicated pool and to a serial run
    (the trajectories are functions of the seeds alone).  The pool is
    lazy — no processes exist until the first parallel study — and a
    worker crash poisons only the current executor: the next study
    transparently gets a fresh one.
    """

    def __init__(self, processes: Optional[int] = None):
        if processes is None:
            processes = default_process_count()
        elif processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._executor is None:
            logger.debug(kv("shared pool start", processes=self.processes))
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def invalidate(self) -> None:
        """Discard a (possibly broken) executor; next use starts fresh."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the workers (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SharedSimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "idle" if self._executor is None else "running"
        return f"SharedSimulationPool(processes={self.processes}, {state})"


def _chunk_seeds(
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int],
) -> Tuple[List[Sequence[np.random.SeedSequence]], int]:
    if chunk_size is None:
        chunk_size = max(1, len(seeds) // (processes * 4))
    elif chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        seeds[start:start + chunk_size]
        for start in range(0, len(seeds), chunk_size)
    ]
    return chunks, chunk_size


def _dispatch_chunks(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int],
    pool: Optional[SharedSimulationPool],
    as_batch: bool,
) -> Iterator:
    """Yield per-chunk worker results in seed order.

    Shared machinery behind :func:`sample_parallel` and
    :func:`sample_parallel_batch`; ``as_batch`` selects the worker
    entry point (object lists vs packed columns).
    """
    chunks, chunk_size = _chunk_seeds(seeds, processes, chunk_size)
    logger.debug(
        kv(
            "sample_parallel dispatch",
            trajectories=len(seeds),
            processes=processes,
            chunks=len(chunks),
            chunk_size=chunk_size,
            shared=pool is not None,
            as_batch=as_batch,
        )
    )
    completed = 0
    try:
        if pool is not None:
            blob = pickle.dumps(simulator, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            payloads = [(digest, blob, chunk) for chunk in chunks]
            worker = (
                _shared_worker_batch_columns if as_batch else _shared_worker_batch
            )
            for index, result in enumerate(pool.executor().map(worker, payloads)):
                completed += len(chunks[index])
                yield result
        else:
            with ProcessPoolExecutor(
                max_workers=processes,
                initializer=_init_worker,
                initargs=(simulator,),
            ) as executor:
                worker = _worker_batch_columns if as_batch else _worker_batch
                for index, result in enumerate(executor.map(worker, chunks)):
                    completed += len(chunks[index])
                    yield result
    except BrokenProcessPool as exc:
        if pool is not None:
            pool.invalidate()
        logger.error(
            kv(
                "worker process crashed",
                processes=processes,
                completed=completed,
                total=len(seeds),
            )
        )
        raise SimulationError(
            "a Monte Carlo worker process terminated abruptly "
            f"(completed {completed}/{len(seeds)} trajectories); "
            "rerun with processes=1 to reproduce the failure in-process"
        ) from exc


def sample_parallel(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
    pool: Optional[SharedSimulationPool] = None,
) -> List[Trajectory]:
    """Simulate one trajectory per seed across worker processes.

    Results are returned in seed order (hence identical to a serial
    run over the same seeds, regardless of worker scheduling).  When a
    :class:`SharedSimulationPool` is given its workers are reused and
    ``processes`` is taken from the pool; otherwise a dedicated pool is
    created for this call.

    Raises
    ------
    SimulationError
        If a worker process dies (the pool is then unusable); the
        original pool exception is chained as ``__cause__``.
    """
    if pool is not None:
        processes = pool.processes
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch(simulator, seeds)
    results: List[Trajectory] = []
    for chunk in _dispatch_chunks(
        simulator, seeds, processes, chunk_size, pool, as_batch=False
    ):
        results.extend(chunk)
    return results


def sample_parallel_batch(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
    pool: Optional[SharedSimulationPool] = None,
) -> TrajectoryBatch:
    """Like :func:`sample_parallel`, returning packed batch columns.

    Workers ship :class:`~repro.simulation.batch.TrajectoryBatch`
    columns instead of pickled object lists, and the driver folds them
    into one accumulator in seed order — the resulting batch's columns
    (and hence every KPI computed from them) are bit-identical to
    ``TrajectoryBatch.from_trajectories(sample_parallel(...))``, while
    resident memory stays O(columns) and the pipe carries an order of
    magnitude fewer bytes per trajectory.
    """
    if pool is not None:
        processes = pool.processes
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch_columns(simulator, seeds)
    accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
    for chunk in _dispatch_chunks(
        simulator, seeds, processes, chunk_size, pool, as_batch=True
    ):
        accumulator.add_batch(chunk)
    return accumulator.finalize()
