"""Multiprocessing support for Monte Carlo replication.

Trajectories are embarrassingly parallel; this module fans batches out
to worker processes.  Reproducibility is preserved exactly: the child
RNG streams are derived from the root seed in the same order a serial
run would use them, so ``run_parallel`` returns **bit-identical KPIs**
to :meth:`repro.simulation.montecarlo.MonteCarlo.run` with the same
seed (the test suite asserts this).

The simulator object is pickled once per worker; per-trajectory work
ships only a :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.simulation.executor import FMTSimulator
from repro.simulation.trace import Trajectory

__all__ = ["simulate_batch", "sample_parallel"]

# Module-level worker state: initialised once per process, so the
# (potentially large) simulator is unpickled a single time.
_WORKER_SIMULATOR: Optional[FMTSimulator] = None


def _init_worker(simulator: FMTSimulator) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def simulate_batch(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> List[Trajectory]:
    """Simulate one trajectory per seed, in-process."""
    return [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]


def _worker_batch(seeds: Sequence[np.random.SeedSequence]) -> List[Trajectory]:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch(_WORKER_SIMULATOR, seeds)


def sample_parallel(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
) -> List[Trajectory]:
    """Simulate one trajectory per seed across worker processes.

    Results are returned in seed order (hence identical to a serial
    run over the same seeds, regardless of worker scheduling).
    """
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch(simulator, seeds)
    if chunk_size is None:
        chunk_size = max(1, len(seeds) // (processes * 4))
    chunks = [
        seeds[start:start + chunk_size]
        for start in range(0, len(seeds), chunk_size)
    ]
    results: List[Trajectory] = []
    with ProcessPoolExecutor(
        max_workers=processes,
        initializer=_init_worker,
        initargs=(simulator,),
    ) as pool:
        for batch in pool.map(_worker_batch, chunks):
            results.extend(batch)
    return results
