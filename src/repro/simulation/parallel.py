"""Multiprocessing support for Monte Carlo replication.

Trajectories are embarrassingly parallel; this module fans batches out
to worker processes.  Reproducibility is preserved exactly: the child
RNG streams are derived from the root seed in the same order a serial
run would use them, so ``run_parallel`` returns **bit-identical KPIs**
to :meth:`repro.simulation.montecarlo.MonteCarlo.run` with the same
seed (the test suite asserts this).

The simulator object is pickled once per worker; per-trajectory work
ships only a :class:`numpy.random.SeedSequence`.  A worker process
dying (OOM-kill, segfault, ``os._exit``) surfaces as a
:class:`~repro.errors.SimulationError` instead of a hang or an opaque
pool exception.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.observability.logging_setup import get_logger, kv
from repro.simulation.executor import FMTSimulator
from repro.simulation.trace import Trajectory

__all__ = [
    "simulate_batch",
    "sample_parallel",
    "default_process_count",
    "SharedSimulationPool",
]

logger = get_logger(__name__)

#: Default cap on the automatic fan-out: beyond this, per-worker
#: simulator unpickling and IPC overhead outweigh extra cores for the
#: replication counts this project runs.
MAX_DEFAULT_PROCESSES = 8

# Module-level worker state: initialised once per process, so the
# (potentially large) simulator is unpickled a single time.
_WORKER_SIMULATOR: Optional[FMTSimulator] = None


def default_process_count(n_tasks: Optional[int] = None) -> int:
    """Fan-out used when the caller does not pick one.

    ``os.cpu_count()`` capped at :data:`MAX_DEFAULT_PROCESSES`, and at
    ``n_tasks`` when given (no point spawning more workers than there
    are trajectories).  Always >= 1.
    """
    count = min(os.cpu_count() or 1, MAX_DEFAULT_PROCESSES)
    if n_tasks is not None:
        count = min(count, n_tasks)
    return max(1, count)


def _init_worker(simulator: FMTSimulator) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def simulate_batch(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> List[Trajectory]:
    """Simulate one trajectory per seed, in-process."""
    return [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]


def _worker_batch(seeds: Sequence[np.random.SeedSequence]) -> List[Trajectory]:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch(_WORKER_SIMULATOR, seeds)


# Shared-pool worker state: simulators cached by payload digest, so one
# pool can serve many different studies and each worker unpickles a
# given simulator at most once.
_SHARED_SIMULATORS: Dict[str, FMTSimulator] = {}

#: Cached simulators kept per shared-pool worker before the cache is
#: cleared; a study sweep touches a handful of simulators, and an
#: unbounded cache would pin every model a long-lived pool ever saw.
MAX_CACHED_SIMULATORS = 16


def _shared_worker_batch(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence]],
) -> List[Trajectory]:
    digest, blob, seeds = payload
    simulator = _SHARED_SIMULATORS.get(digest)
    if simulator is None:
        if len(_SHARED_SIMULATORS) >= MAX_CACHED_SIMULATORS:
            _SHARED_SIMULATORS.clear()
        simulator = pickle.loads(blob)
        _SHARED_SIMULATORS[digest] = simulator
    return simulate_batch(simulator, seeds)


class SharedSimulationPool:
    """A process pool reusable across many (simulator, seeds) studies.

    ``sample_parallel`` normally spins up a dedicated pool whose
    workers are initialised with one pickled simulator — fine for a
    single large run, wasteful when an experiment sweep performs many
    medium runs back to back.  A shared pool is created once, sized
    once, and serves every study of a sweep: tasks carry the pickled
    simulator plus its digest, and workers cache unpickled simulators
    by digest, so repeated studies of the same model pay the transfer
    but not the unpickling.

    Results are bit-identical to a dedicated pool and to a serial run
    (the trajectories are functions of the seeds alone).  The pool is
    lazy — no processes exist until the first parallel study — and a
    worker crash poisons only the current executor: the next study
    transparently gets a fresh one.
    """

    def __init__(self, processes: Optional[int] = None):
        if processes is None:
            processes = default_process_count()
        elif processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._executor is None:
            logger.debug(kv("shared pool start", processes=self.processes))
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def invalidate(self) -> None:
        """Discard a (possibly broken) executor; next use starts fresh."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the workers (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SharedSimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "idle" if self._executor is None else "running"
        return f"SharedSimulationPool(processes={self.processes}, {state})"


def sample_parallel(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
    pool: Optional[SharedSimulationPool] = None,
) -> List[Trajectory]:
    """Simulate one trajectory per seed across worker processes.

    Results are returned in seed order (hence identical to a serial
    run over the same seeds, regardless of worker scheduling).  When a
    :class:`SharedSimulationPool` is given its workers are reused and
    ``processes`` is taken from the pool; otherwise a dedicated pool is
    created for this call.

    Raises
    ------
    SimulationError
        If a worker process dies (the pool is then unusable); the
        original pool exception is chained as ``__cause__``.
    """
    if pool is not None:
        processes = pool.processes
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch(simulator, seeds)
    if chunk_size is None:
        chunk_size = max(1, len(seeds) // (processes * 4))
    elif chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        seeds[start:start + chunk_size]
        for start in range(0, len(seeds), chunk_size)
    ]
    logger.debug(
        kv(
            "sample_parallel dispatch",
            trajectories=len(seeds),
            processes=processes,
            chunks=len(chunks),
            chunk_size=chunk_size,
            shared=pool is not None,
        )
    )
    results: List[Trajectory] = []
    try:
        if pool is not None:
            blob = pickle.dumps(simulator, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            payloads = [(digest, blob, chunk) for chunk in chunks]
            for batch in pool.executor().map(_shared_worker_batch, payloads):
                results.extend(batch)
        else:
            with ProcessPoolExecutor(
                max_workers=processes,
                initializer=_init_worker,
                initargs=(simulator,),
            ) as executor:
                for batch in executor.map(_worker_batch, chunks):
                    results.extend(batch)
    except BrokenProcessPool as exc:
        if pool is not None:
            pool.invalidate()
        logger.error(
            kv(
                "worker process crashed",
                processes=processes,
                completed=len(results),
                total=len(seeds),
            )
        )
        raise SimulationError(
            "a Monte Carlo worker process terminated abruptly "
            f"(completed {len(results)}/{len(seeds)} trajectories); "
            "rerun with processes=1 to reproduce the failure in-process"
        ) from exc
    return results
