"""Multiprocessing support for Monte Carlo replication.

Trajectories are embarrassingly parallel; this module fans batches out
to worker processes.  Reproducibility is preserved exactly: the child
RNG streams are derived from the root seed in the same order a serial
run would use them, so ``run_parallel`` returns **bit-identical KPIs**
to :meth:`repro.simulation.montecarlo.MonteCarlo.run` with the same
seed (the test suite asserts this).

The simulator object is pickled once per worker; per-trajectory work
ships only a :class:`numpy.random.SeedSequence`.  Results come back in
one of two shapes:

* :func:`sample_parallel` — full :class:`~repro.simulation.trace.
  Trajectory` object lists (needed when events or the objects
  themselves are kept);
* :func:`sample_parallel_batch` — packed
  :class:`~repro.simulation.batch.TrajectoryBatch` columns.  Workers
  reduce each trajectory to its KPI scalars immediately, and — where
  POSIX shared memory is available — scatter the columns straight into
  one pre-sized ``multiprocessing.shared_memory`` segment at their
  chunk's row offset (:mod:`repro.simulation.shm`), so the result pipe
  carries only a tiny per-chunk handle and the driver materializes the
  final batch with a single copy out of the segment (zero-copy fold;
  bit-identical to the pickled fallback, which remains for hosts
  without ``/dev/shm``).

A worker process dying (OOM-kill, segfault, ``os._exit``) surfaces as
a :class:`~repro.errors.SimulationError` instead of a hang or an
opaque pool exception.

Telemetry round-trip
--------------------
When the driver runs with telemetry attached (metrics, spans, or a
progress reporter — see :class:`WorkerTelemetry`), each task addition-
ally carries a tiny :class:`ChunkExtras` and each worker wraps its
chunk in a fresh per-chunk :class:`~repro.observability.
instrumentation.Instrumentation` and a ``worker.chunk`` span parented
to the dispatching span's shipped
:class:`~repro.observability.spans.SpanContext`.  The chunk result
then ships ``(payload, worker registry, span record, pid, wall
seconds)`` back; the driver folds the registry into the parent one
(:meth:`MetricsRegistry.merge`), feeds the span record to the ambient
collector, emits a progress event, and finally publishes per-worker
utilization gauges (``sim.worker.<n>.chunks`` / ``.trajectories`` /
``.busy_seconds`` plus ``sim.workers``).  With no telemetry attached
the legacy payload-only protocol is used — zero extra bytes on the
pipe, zero worker-side overhead.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.observability.instrumentation import (
    SIM_WORKER_PREFIX,
    SIM_WORKERS,
    Instrumentation,
)
from repro.observability.logging_setup import get_logger, kv
from repro.observability.progress import ProgressEvent
from repro.observability.spans import Span, SpanCollector
from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.executor import FMTSimulator
from repro.simulation.shm import (
    ShmBatchWriter,
    ShmChunkSpec,
    shared_memory_available,
    write_chunk_batch,
)
from repro.simulation.trace import Trajectory

__all__ = [
    "simulate_batch",
    "simulate_batch_columns",
    "sample_parallel",
    "sample_parallel_batch",
    "default_process_count",
    "SharedSimulationPool",
    "WorkerTelemetry",
]

logger = get_logger(__name__)

#: Default cap on the automatic fan-out: beyond this, per-worker
#: simulator unpickling and IPC overhead outweigh extra cores for the
#: replication counts this project runs.
MAX_DEFAULT_PROCESSES = 8

# Module-level worker state: initialised once per process, so the
# (potentially large) simulator is unpickled a single time.
_WORKER_SIMULATOR: Optional[FMTSimulator] = None


def _available_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's CPUs even when a cgroup
    quota or CPU affinity mask (containers, CI runners, ``taskset``)
    restricts the process to far fewer — spawning workers for CPUs we
    cannot use only adds pickling and scheduling overhead.  The
    affinity mask (where the platform exposes one) is authoritative.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            affinity = 0
        if affinity:
            return affinity
    return os.cpu_count() or 1


def default_process_count(n_tasks: Optional[int] = None) -> int:
    """Fan-out used when the caller does not pick one.

    The schedulable CPU count (see :func:`_available_cpu_count`) capped
    at :data:`MAX_DEFAULT_PROCESSES`, and at ``n_tasks`` when given (no
    point spawning more workers than there are trajectories).  Always
    >= 1.
    """
    count = min(_available_cpu_count(), MAX_DEFAULT_PROCESSES)
    if n_tasks is not None:
        count = min(count, n_tasks)
    return max(1, count)


def _init_worker(simulator: FMTSimulator) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = simulator


def simulate_batch(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> List[Trajectory]:
    """Simulate one trajectory per seed, in-process."""
    return [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]


def simulate_batch_columns(
    simulator: FMTSimulator, seeds: Sequence[np.random.SeedSequence]
) -> TrajectoryBatch:
    """Simulate one trajectory per seed, reduced to batch columns.

    Each trajectory object is folded into the accumulator as soon as
    it is produced and becomes garbage immediately — resident memory
    is one trajectory plus the columns, regardless of ``len(seeds)``.

    With ``SimulationConfig(kernel="vectorized")`` the chunk is routed
    through the lockstep kernel instead (which itself falls back to the
    object engine for non-vectorizable models) — this is the single
    dispatch point shared by the in-process path and every worker
    entrypoint.
    """
    if simulator.config.kernel == "vectorized":
        from repro.simulation.vectorized import simulate_batch_columns_vectorized

        return simulate_batch_columns_vectorized(simulator, seeds)
    accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
    simulate = simulator.simulate
    add = accumulator.add
    for seed in seeds:
        add(simulate(np.random.default_rng(seed)))
    return accumulator.finalize()


def _worker_batch(seeds: Sequence[np.random.SeedSequence]) -> List[Trajectory]:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch(_WORKER_SIMULATOR, seeds)


def _worker_batch_columns(
    seeds: Sequence[np.random.SeedSequence],
) -> TrajectoryBatch:
    assert _WORKER_SIMULATOR is not None
    return simulate_batch_columns(_WORKER_SIMULATOR, seeds)


def _worker_batch_columns_shm(
    task: Tuple[Sequence[np.random.SeedSequence], ShmChunkSpec],
):
    assert _WORKER_SIMULATOR is not None
    seeds, spec = task
    return write_chunk_batch(
        simulate_batch_columns(_WORKER_SIMULATOR, seeds), spec
    )


# ----------------------------------------------------------------------
# Telemetry round-trip
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkExtras:
    """Per-task telemetry envelope shipped to a worker.

    Picklable and tiny: the parent span's serialized
    :class:`~repro.observability.spans.SpanContext` (or None when
    tracing is off), whether to collect a per-chunk metrics registry,
    the chunk's ordinal, and the result representation.
    """

    span_parent: Optional[Dict[str, str]]
    collect_metrics: bool
    chunk_index: int
    as_batch: bool
    #: Shared-memory write window for this chunk's columns; None keeps
    #: the pickled result representation.
    shm: Optional[ShmChunkSpec] = None


@dataclass
class ChunkResult:
    """What a telemetry-enabled worker ships back per chunk."""

    payload: Any  # List[Trajectory] or TrajectoryBatch
    registry: Optional[Any]  # MetricsRegistry, when metrics were collected
    span: Optional[Dict[str, Any]]  # completed span record
    pid: int
    n_trajectories: int
    seconds: float


@dataclass(frozen=True)
class WorkerTelemetry:
    """Driver-side telemetry configuration for one parallel dispatch.

    Built by :meth:`MonteCarlo.run_parallel` from the explicit/ambient
    instrumentation, span collector, and progress reporter; ``None``
    everywhere means the dispatch uses the legacy payload-only
    protocol.
    """

    instrumentation: Optional[Instrumentation] = None
    collector: Optional[SpanCollector] = None
    span_parent: Optional[Dict[str, str]] = None
    progress: Optional[Any] = None  # ProgressReporter
    phase: str = "mc.run_parallel"

    @property
    def active(self) -> bool:
        """Whether any telemetry sink is attached."""
        return (
            self.instrumentation is not None
            or self.collector is not None
            or self.progress is not None
        )


def _run_chunk_with_telemetry(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    extras: ChunkExtras,
) -> ChunkResult:
    """Worker-side chunk execution with per-chunk telemetry.

    The chunk simulates into a *fresh* registry (temporarily swapped
    into the simulator config) so long-lived workers ship deltas, not
    cumulative totals — the driver can then fold every chunk without
    double counting.  Strictly passive: the trajectories are the same
    with or without collection.
    """
    span = None
    if extras.span_parent is not None:
        span = Span.start(
            "worker.chunk",
            parent=extras.span_parent,
            attributes={
                "chunk": extras.chunk_index,
                "n_trajectories": len(seeds),
                "pid": os.getpid(),
            },
        )
    run = simulate_batch_columns if extras.as_batch else simulate_batch
    start = time.perf_counter()
    registry = None
    if extras.collect_metrics:
        instrumentation = Instrumentation()
        registry = instrumentation.registry
        original = simulator.config
        simulator.config = replace(original, instrumentation=instrumentation)
        try:
            payload = run(simulator, seeds)
        finally:
            simulator.config = original
    else:
        payload = run(simulator, seeds)
    if extras.shm is not None and extras.as_batch:
        # Columns go through the shared segment; only the tiny handle
        # rides the result pipe.
        payload = write_chunk_batch(payload, extras.shm)
    seconds = time.perf_counter() - start
    return ChunkResult(
        payload=payload,
        registry=registry,
        span=span.end().to_dict() if span is not None else None,
        pid=os.getpid(),
        n_trajectories=len(seeds),
        seconds=seconds,
    )


def _worker_chunk_telemetry(
    task: Tuple[Sequence[np.random.SeedSequence], ChunkExtras],
) -> ChunkResult:
    assert _WORKER_SIMULATOR is not None
    seeds, extras = task
    return _run_chunk_with_telemetry(_WORKER_SIMULATOR, seeds, extras)


# Shared-pool worker state: simulators cached by payload digest, so one
# pool can serve many different studies and each worker unpickles a
# given simulator at most once.
_SHARED_SIMULATORS: Dict[str, FMTSimulator] = {}

#: Cached simulators kept per shared-pool worker before the cache is
#: cleared; a study sweep touches a handful of simulators, and an
#: unbounded cache would pin every model a long-lived pool ever saw.
MAX_CACHED_SIMULATORS = 16


def _shared_simulator(digest: str, blob: bytes) -> FMTSimulator:
    simulator = _SHARED_SIMULATORS.get(digest)
    if simulator is None:
        if len(_SHARED_SIMULATORS) >= MAX_CACHED_SIMULATORS:
            _SHARED_SIMULATORS.clear()
        simulator = pickle.loads(blob)
        _SHARED_SIMULATORS[digest] = simulator
    return simulator


def _shared_worker_batch(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence]],
) -> List[Trajectory]:
    digest, blob, seeds = payload
    return simulate_batch(_shared_simulator(digest, blob), seeds)


def _shared_worker_batch_columns(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence]],
) -> TrajectoryBatch:
    digest, blob, seeds = payload
    return simulate_batch_columns(_shared_simulator(digest, blob), seeds)


def _shared_worker_batch_columns_shm(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence], ShmChunkSpec],
):
    digest, blob, seeds, spec = payload
    return write_chunk_batch(
        simulate_batch_columns(_shared_simulator(digest, blob), seeds), spec
    )


def _shared_worker_chunk_telemetry(
    payload: Tuple[str, bytes, Sequence[np.random.SeedSequence], ChunkExtras],
) -> ChunkResult:
    digest, blob, seeds, extras = payload
    return _run_chunk_with_telemetry(_shared_simulator(digest, blob), seeds, extras)


class SharedSimulationPool:
    """A process pool reusable across many (simulator, seeds) studies.

    ``sample_parallel`` normally spins up a dedicated pool whose
    workers are initialised with one pickled simulator — fine for a
    single large run, wasteful when an experiment sweep performs many
    medium runs back to back.  A shared pool is created once, sized
    once, and serves every study of a sweep: tasks carry the pickled
    simulator plus its digest, and workers cache unpickled simulators
    by digest, so repeated studies of the same model pay the transfer
    but not the unpickling.

    Results are bit-identical to a dedicated pool and to a serial run
    (the trajectories are functions of the seeds alone).  The pool is
    lazy — no processes exist until the first parallel study — and a
    worker crash poisons only the current executor: the next study
    transparently gets a fresh one.
    """

    def __init__(self, processes: Optional[int] = None):
        if processes is None:
            processes = default_process_count()
        elif processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._executor is None:
            logger.debug(kv("shared pool start", processes=self.processes))
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def invalidate(self) -> None:
        """Discard a (possibly broken) executor; next use starts fresh."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the workers (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SharedSimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "idle" if self._executor is None else "running"
        return f"SharedSimulationPool(processes={self.processes}, {state})"


def _chunk_seeds(
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int],
) -> Tuple[List[Sequence[np.random.SeedSequence]], int]:
    if chunk_size is None:
        chunk_size = max(1, len(seeds) // (processes * 4))
    elif chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        seeds[start:start + chunk_size]
        for start in range(0, len(seeds), chunk_size)
    ]
    return chunks, chunk_size


class _TelemetryFold:
    """Driver-side accumulator folding returning chunk telemetry.

    Merges worker registries into the parent instrumentation, routes
    span records to the collector, emits progress events, and — once
    the dispatch completes — publishes per-worker utilization gauges.
    """

    def __init__(self, telemetry: WorkerTelemetry, total: int):
        self.telemetry = telemetry
        self.total = total
        self.completed = 0
        self.start = time.perf_counter()
        # pid -> [chunks, trajectories, busy seconds], ordinal by first
        # appearance in (deterministic) seed-order completion.
        self.workers: "Dict[int, List[float]]" = {}

    def fold(self, result: ChunkResult) -> Any:
        telemetry = self.telemetry
        self.completed += result.n_trajectories
        stats = self.workers.setdefault(result.pid, [0, 0, 0.0])
        stats[0] += 1
        stats[1] += result.n_trajectories
        stats[2] += result.seconds
        if telemetry.instrumentation is not None and result.registry is not None:
            telemetry.instrumentation.registry.merge(result.registry)
        if telemetry.collector is not None and result.span is not None:
            telemetry.collector.add_record(result.span)
        if telemetry.progress is not None:
            elapsed = time.perf_counter() - self.start
            rate = self.completed / elapsed if elapsed > 0 else None
            remaining = self.total - self.completed
            telemetry.progress.update(
                ProgressEvent(
                    phase=telemetry.phase,
                    completed=self.completed,
                    total=self.total,
                    elapsed_seconds=elapsed,
                    rate_per_sec=rate,
                    eta_seconds=(remaining / rate) if rate else None,
                    done=self.completed >= self.total,
                )
            )
        return result.payload

    def finish(self) -> None:
        instrumentation = self.telemetry.instrumentation
        if instrumentation is None or not self.workers:
            return
        instrumentation.set_gauge(SIM_WORKERS, len(self.workers))
        for ordinal, pid in enumerate(self.workers):
            chunks, trajectories, busy = self.workers[pid]
            prefix = f"{SIM_WORKER_PREFIX}.{ordinal}"
            instrumentation.set_gauge(f"{prefix}.chunks", chunks)
            instrumentation.set_gauge(f"{prefix}.trajectories", trajectories)
            instrumentation.set_gauge(f"{prefix}.busy_seconds", busy)


def _dispatch_chunks(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int],
    pool: Optional[SharedSimulationPool],
    as_batch: bool,
    telemetry: Optional[WorkerTelemetry] = None,
    prechunked: Optional[List[Sequence[np.random.SeedSequence]]] = None,
    shm_writer: Optional[ShmBatchWriter] = None,
) -> Iterator:
    """Yield per-chunk worker payloads in seed order.

    Shared machinery behind :func:`sample_parallel` and
    :func:`sample_parallel_batch`; ``as_batch`` selects the worker
    representation (object lists vs packed columns).  With an active
    :class:`WorkerTelemetry`, tasks carry :class:`ChunkExtras`, workers
    return :class:`ChunkResult`, and the telemetry is folded driver-
    side as each chunk completes.  With a :class:`ShmBatchWriter`
    (batch representation only) each task carries its chunk's
    :class:`~repro.simulation.shm.ShmChunkSpec`, workers scatter their
    columns into the shared segment, and the yielded payloads are
    :class:`~repro.simulation.shm.ShmChunkHandle` records.
    """
    if telemetry is not None and not telemetry.active:
        telemetry = None
    if prechunked is not None:
        chunks = prechunked
    else:
        chunks, chunk_size = _chunk_seeds(seeds, processes, chunk_size)
    logger.debug(
        kv(
            "sample_parallel dispatch",
            trajectories=len(seeds),
            processes=processes,
            chunks=len(chunks),
            chunk_size=max(len(chunk) for chunk in chunks) if chunks else 0,
            shared=pool is not None,
            as_batch=as_batch,
            telemetry=telemetry is not None,
            shm=shm_writer is not None,
        )
    )
    fold = (
        _TelemetryFold(telemetry, len(seeds)) if telemetry is not None else None
    )
    extras = None
    if telemetry is not None:
        extras = [
            ChunkExtras(
                span_parent=telemetry.span_parent,
                collect_metrics=telemetry.instrumentation is not None,
                chunk_index=index,
                as_batch=as_batch,
                shm=(
                    shm_writer.spec(index) if shm_writer is not None else None
                ),
            )
            for index in range(len(chunks))
        ]
    completed = 0
    try:
        if pool is not None:
            blob = pickle.dumps(simulator, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            if extras is not None:
                payloads: List[Tuple] = [
                    (digest, blob, chunk, extra)
                    for chunk, extra in zip(chunks, extras)
                ]
                worker = _shared_worker_chunk_telemetry
            elif shm_writer is not None:
                payloads = [
                    (digest, blob, chunk, shm_writer.spec(index))
                    for index, chunk in enumerate(chunks)
                ]
                worker = _shared_worker_batch_columns_shm
            else:
                payloads = [(digest, blob, chunk) for chunk in chunks]
                worker = (
                    _shared_worker_batch_columns
                    if as_batch
                    else _shared_worker_batch
                )
            for index, result in enumerate(pool.executor().map(worker, payloads)):
                completed += len(chunks[index])
                yield fold.fold(result) if fold is not None else result
        else:
            with ProcessPoolExecutor(
                max_workers=processes,
                initializer=_init_worker,
                initargs=(simulator,),
            ) as executor:
                if extras is not None:
                    tasks: Sequence = list(zip(chunks, extras))
                    worker = _worker_chunk_telemetry
                elif shm_writer is not None:
                    tasks = [
                        (chunk, shm_writer.spec(index))
                        for index, chunk in enumerate(chunks)
                    ]
                    worker = _worker_batch_columns_shm
                else:
                    tasks = chunks
                    worker = _worker_batch_columns if as_batch else _worker_batch
                for index, result in enumerate(executor.map(worker, tasks)):
                    completed += len(chunks[index])
                    yield fold.fold(result) if fold is not None else result
        if fold is not None:
            fold.finish()
    except BrokenProcessPool as exc:
        if pool is not None:
            pool.invalidate()
        logger.error(
            kv(
                "worker process crashed",
                processes=processes,
                completed=completed,
                total=len(seeds),
            )
        )
        raise SimulationError(
            "a Monte Carlo worker process terminated abruptly "
            f"(completed {completed}/{len(seeds)} trajectories); "
            "rerun with processes=1 to reproduce the failure in-process"
        ) from exc


def sample_parallel(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
    pool: Optional[SharedSimulationPool] = None,
    telemetry: Optional[WorkerTelemetry] = None,
) -> List[Trajectory]:
    """Simulate one trajectory per seed across worker processes.

    Results are returned in seed order (hence identical to a serial
    run over the same seeds, regardless of worker scheduling).  When a
    :class:`SharedSimulationPool` is given its workers are reused and
    ``processes`` is taken from the pool; otherwise a dedicated pool is
    created for this call.  ``telemetry`` opts into the worker
    metric/span/progress round-trip (see the module docstring) —
    trajectories are bit-identical with or without it.

    Raises
    ------
    SimulationError
        If a worker process dies (the pool is then unusable); the
        original pool exception is chained as ``__cause__``.
    """
    if pool is not None:
        processes = pool.processes
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch(simulator, seeds)
    results: List[Trajectory] = []
    for chunk in _dispatch_chunks(
        simulator, seeds, processes, chunk_size, pool, as_batch=False,
        telemetry=telemetry,
    ):
        results.extend(chunk)
    return results


def sample_parallel_batch(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    processes: int,
    chunk_size: Optional[int] = None,
    pool: Optional[SharedSimulationPool] = None,
    telemetry: Optional[WorkerTelemetry] = None,
    use_shared_memory: Optional[bool] = None,
) -> TrajectoryBatch:
    """Like :func:`sample_parallel`, returning packed batch columns.

    Workers ship :class:`~repro.simulation.batch.TrajectoryBatch`
    columns instead of pickled object lists — the resulting batch's
    columns (and hence every KPI computed from them) are bit-identical
    to ``TrajectoryBatch.from_trajectories(sample_parallel(...))``,
    while resident memory stays O(columns).

    By default (``use_shared_memory=None`` → on where supported) the
    columns never ride the result pipe at all: the driver pre-sizes one
    ``multiprocessing.shared_memory`` segment from the chunk plan,
    workers scatter their columns into it at their chunk's row offset,
    and the driver materializes the final batch with a single copy out
    of the segment (see :mod:`repro.simulation.shm`).  The segment is
    unlinked in a ``finally`` even when a worker crashes.  Pass
    ``use_shared_memory=False`` to force the pickled fold — the result
    is bit-identical either way (the test suite asserts it).
    """
    if pool is not None:
        processes = pool.processes
    if processes < 1:
        raise ValidationError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return simulate_batch_columns(simulator, seeds)
    if chunk_size is None and simulator.config.kernel == "vectorized":
        from repro.simulation.vectorized import vectorized_fallback_reason

        if vectorized_fallback_reason(simulator) is None:
            # Lockstep workers amortize per-chunk costs (kernel
            # compile, epoch table walk) over chunk rows, so the 4x
            # oversubscription that load-balances object workers only
            # shrinks their chunks.  One chunk per worker, capped at
            # the configured lockstep chunk size.
            chunk_size = min(
                simulator.config.chunk_trajectories,
                -(-len(seeds) // processes),
            ) or 1
    chunks, _ = _chunk_seeds(seeds, processes, chunk_size)
    writer = None
    if use_shared_memory is None:
        use_shared_memory = shared_memory_available()
    if use_shared_memory and shared_memory_available():
        try:
            writer = ShmBatchWriter(
                simulator.config.horizon, [len(chunk) for chunk in chunks]
            )
        except OSError as exc:  # pragma: no cover - constrained /dev/shm
            logger.warning(
                kv("shared-memory segment unavailable", error=repr(exc))
            )
            writer = None
    try:
        if writer is not None:
            handles = list(
                _dispatch_chunks(
                    simulator, seeds, processes, chunk_size, pool,
                    as_batch=True, telemetry=telemetry, prechunked=chunks,
                    shm_writer=writer,
                )
            )
            return writer.finalize(handles)
        accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
        for chunk in _dispatch_chunks(
            simulator, seeds, processes, chunk_size, pool, as_batch=True,
            telemetry=telemetry, prechunked=chunks,
        ):
            accumulator.add_batch(chunk)
        return accumulator.finalize()
    finally:
        if writer is not None:
            writer.close()
