"""Generic discrete-event simulation core.

A minimal, fast event calendar: events are ``(time, priority, seq)``
ordered, cancellable, and executed by callback.  Determinism is exact:
given the same schedule calls, execution order is identical, because
ties on time are broken first by an explicit integer priority and then
by insertion sequence.

Hot-path design (see docs/performance.md): the heap holds plain
``(time, priority, seq, handle)`` tuples, so every sift comparison is a
C-level tuple comparison that is decided by the unique ``seq`` before
ever touching the handle — no Python ``__lt__`` dispatch on the hot
path.  Cancellation is lazy: a cancelled handle stays in the heap and
is discarded when it surfaces.  ``run_until`` inlines the pop/execute
loop instead of calling :meth:`step` per event.

The engine knows nothing about fault trees; :mod:`repro.simulation.executor`
builds FMT semantics on top of it.
"""

from __future__ import annotations

import heapq
import math
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.observability.instrumentation import (
    EVENTS_CANCELLED,
    EVENTS_EXECUTED,
    EVENTS_SCHEDULED,
    Instrumentation,
)

__all__ = ["Engine", "EngineSnapshot", "ScheduledEvent"]


class ScheduledEvent:
    """Handle to a scheduled event; allows cancellation.

    Instances are created by :meth:`Engine.schedule`; user code should
    treat them as opaque except for :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        # Back-link so cancel() can keep the engine's live pending
        # count exact; detached once the event executes or cancels.
        self._engine = engine

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already executed."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None  # break reference cycles early
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        """Deprecated: the calendar no longer orders events by handle.

        Heap entries are plain ``(time, priority, seq, handle)`` tuples
        whose unique ``seq`` decides every comparison, so this method is
        never called by the engine anymore.  It is kept as a shim for
        code that sorted handles directly.
        """
        warnings.warn(
            "ScheduledEvent ordering is deprecated; compare "
            "(event.time, event.priority, event.seq) tuples instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time:g}, prio={self.priority}, {state})"


class EngineSnapshot:
    """Frozen image of an :class:`Engine` calendar at one instant.

    Produced by :meth:`Engine.snapshot` and consumed by
    :meth:`Engine.restore`.  The callback of every live event is
    captured *by reference at snapshot time*, so the snapshot stays
    valid even after the originating run executes or cancels those
    events.  The original :class:`ScheduledEvent` objects are retained
    only as identity keys for handle rewiring (see ``restore``).
    """

    __slots__ = ("now", "seq", "events")

    def __init__(
        self,
        now: float,
        seq: int,
        events: Tuple[Tuple[float, int, int, Callable[[], None], "ScheduledEvent"], ...],
    ):
        self.now = now
        self.seq = seq
        self.events = events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineSnapshot(now={self.now:g}, |events|={len(self.events)})"


class Engine:
    """Event calendar with a simulation clock.

    The clock starts at 0.0 and only moves forward.  Scheduling an event
    in the past raises :class:`~repro.errors.SimulationError` — a bug in
    the caller, never a condition to silently repair.
    """

    __slots__ = (
        "_queue", "_seq", "now", "_running", "_stopped", "_pending",
        "_instr", "_seq_base", "_pending_base", "_cancel_base",
        "_n_cancelled", "_sched_carry", "_exec_carry",
    )

    def __init__(self, instrumentation: Optional[Instrumentation] = None):
        # Heap of (time, priority, seq, handle) tuples; `seq` is unique,
        # so tuple comparison never reaches the handle.
        self._queue: List[Tuple[float, int, int, ScheduledEvent]] = []
        self._seq = 0
        self.now = 0.0
        self._running = False
        self._stopped = False
        self._pending = 0
        self._instr = instrumentation
        # Event counters are *derived*, not tallied on the hot path:
        # the scheduling sequence number and the O(1) pending count
        # already move with every event, so flush_counts() recovers
        #   scheduled = seq delta,
        #   executed  = scheduled - cancelled - pending delta
        # from baselines recorded at the previous flush.  Cancellation
        # is the one genuinely rare operation that keeps an explicit
        # tally; the *_carry fields absorb deltas that restore() would
        # otherwise rewind away.  This is what keeps fully instrumented
        # runs inside the 5% overhead budget enforced by
        # tests/test_telemetry.py: zero extra work per event.
        self._seq_base = 0
        self._pending_base = 0
        self._cancel_base = 0
        self._n_cancelled = 0
        self._sched_carry = 0
        self._exec_carry = 0

    def reset(self, instrumentation: Optional[Instrumentation] = None) -> None:
        """Return the engine to its pristine state, reusing the queue.

        Equivalent to constructing a fresh :class:`Engine` but without
        reallocating; the preallocated heap list is cleared in place.
        Handles of the abandoned calendar are detached first, so a
        stale ``cancel()`` cannot corrupt the new run's bookkeeping.
        Pending event tallies are flushed to the outgoing
        instrumentation before it is swapped out.
        """
        self.flush_counts()
        for entry in self._queue:
            entry[3]._engine = None
        self._queue.clear()
        self._seq = 0
        self.now = 0.0
        self._running = False
        self._stopped = False
        self._pending = 0
        self._seq_base = 0
        self._pending_base = 0
        self._instr = instrumentation

    def flush_counts(self) -> None:
        """Fold the event counters derived since the last flush into
        the instrumentation.

        Called automatically at the end of :meth:`run_until` and on
        :meth:`reset`; stepwise drivers (importance splitting) that
        abandon a run mid-calendar flush through
        :meth:`~repro.simulation.executor.FMTSimulator.flush_instrumentation`.
        """
        scheduled = self._sched_carry + (self._seq - self._seq_base)
        cancelled = self._n_cancelled
        # pending moved by scheduled - cancelled - executed since the
        # last flush, so executed falls out of the other three.
        executed = (
            self._exec_carry
            + (self._seq - self._seq_base)
            - (cancelled - self._cancel_base)
            - (self._pending - self._pending_base)
        )
        instr = self._instr
        if instr is not None:
            if scheduled:
                instr.count(EVENTS_SCHEDULED, scheduled)
            if cancelled:
                instr.count(EVENTS_CANCELLED, cancelled)
            if executed:
                instr.count(EVENTS_EXECUTED, executed)
        self._seq_base = self._seq
        self._pending_base = self._pending
        self._cancel_base = 0
        self._n_cancelled = 0
        self._sched_carry = 0
        self._exec_carry = 0

    def schedule(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run at simulation time ``time``.

        Lower ``priority`` values run first among same-time events; ties
        beyond that preserve scheduling order.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at time {time}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:g} before now={self.now:g}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, priority, seq, callback, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._pending += 1
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback, priority)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was requested since the last run/restore.

        Stepwise drivers (importance splitting) check this between
        :meth:`step` calls to honour an absorbing stop exactly like
        :meth:`run_until` does.
        """
        return self._stopped

    @property
    def pending(self) -> int:
        """Number of non-cancelled events in the calendar.

        Maintained incrementally by ``schedule``/``cancel``/``step``,
        so reading it is O(1) even mid-run with a large calendar.
        """
        return self._pending

    def _note_cancelled(self) -> None:
        """Bookkeeping callback from :meth:`ScheduledEvent.cancel`."""
        self._pending -= 1
        if self._instr is not None:
            self._n_cancelled += 1

    def snapshot(self) -> EngineSnapshot:
        """Capture the calendar, clock and sequence counter.

        The snapshot is independent of the engine's future: executing
        or cancelling events afterwards does not invalidate it, so one
        snapshot can seed many :meth:`restore` calls (trajectory
        cloning for importance splitting).
        """
        events = tuple(
            (time, priority, seq, event.callback, event)
            for time, priority, seq, event in self._queue
            if not event.cancelled and event.callback is not None
        )
        return EngineSnapshot(self.now, self._seq, events)

    def restore(self, snapshot: EngineSnapshot) -> Dict[int, ScheduledEvent]:
        """Reset the engine to ``snapshot``; returns a handle rewiring map.

        Every live event of the snapshot is recreated as a *fresh*
        :class:`ScheduledEvent` (same time/priority/seq/callback), so
        cancelling a pre-restore handle afterwards cannot corrupt the
        restored calendar: all events of the abandoned timeline are
        detached from this engine first, which keeps the O(1)
        :attr:`pending` count exact across restore+cancel sequences.

        Returns
        -------
        dict
            ``id(original_event) -> new_event`` for every event in the
            snapshot, letting callers holding old handles (e.g. the
            simulator's transition map) swap them for live ones.
        """
        # The abandoned timeline's events really happened: fold its
        # scheduled/executed deltas into the carries before seq and
        # pending rewind to snapshot values.
        scheduled = self._seq - self._seq_base
        self._sched_carry += scheduled
        self._exec_carry += (
            scheduled
            - (self._n_cancelled - self._cancel_base)
            - (self._pending - self._pending_base)
        )
        self._cancel_base = self._n_cancelled
        for entry in self._queue:
            # Detach the abandoned timeline: a later cancel() on one of
            # these stale handles must be a no-op for this engine.
            entry[3]._engine = None
        mapping: Dict[int, ScheduledEvent] = {}
        queue: List[Tuple[float, int, int, ScheduledEvent]] = []
        for time, priority, seq, callback, original in snapshot.events:
            event = ScheduledEvent(time, priority, seq, callback, self)
            queue.append((time, priority, seq, event))
            mapping[id(original)] = event
        heapq.heapify(queue)
        self._queue = queue
        self._pending = len(queue)
        self.now = snapshot.now
        self._seq = snapshot.seq
        self._seq_base = snapshot.seq
        self._pending_base = self._pending
        self._running = False
        self._stopped = False
        return mapping

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if empty."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        return queue[0][0]

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
        if not queue:
            return False
        time, _, _, event = heapq.heappop(queue)
        event._engine = None  # executed: a later cancel() must not decrement
        self._pending -= 1
        self.now = time
        callback = event.callback
        event.callback = None
        assert callback is not None
        callback()
        return True

    def run_until(self, t_end: float) -> None:
        """Execute all events with time <= ``t_end``; clock ends at ``t_end``.

        Re-entrant calls are rejected (an event callback must not drive
        the engine it runs in).
        """
        if self._running:
            raise SimulationError("run_until() called from within an event")
        if t_end < self.now:
            raise SimulationError(
                f"t_end={t_end:g} is before current time {self.now:g}"
            )
        self._running = True
        self._stopped = False
        # The pop/execute loop is inlined (rather than calling step())
        # and binds the queue and heappop locally: this loop bounds the
        # throughput of every Monte Carlo study in the repo.  Callbacks
        # push onto the same list object, so the local alias stays
        # valid; only restore() rebinds self._queue, and it cannot run
        # mid-loop (re-entrance is rejected above).
        queue = self._queue
        heappop = heapq.heappop
        instr = self._instr
        try:
            while not self._stopped:
                while queue and queue[0][3].cancelled:
                    heappop(queue)
                if not queue or queue[0][0] > t_end:
                    break
                time, _, _, event = heappop(queue)
                event._engine = None
                self._pending -= 1
                self.now = time
                callback = event.callback
                event.callback = None
                callback()
        finally:
            self._running = False
            if instr is not None:
                self.flush_counts()
        if not self._stopped:
            self.now = t_end

    def _drop_cancelled(self) -> None:
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
