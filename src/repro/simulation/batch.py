"""Columnar trajectory batches: KPI material as numpy arrays.

A :class:`TrajectoryBatch` holds everything the KPI estimators in
:mod:`repro.simulation.metrics` consume — first-failure time, failure
count, the packed system-failure times, downtime, the per-category cost
columns and the maintenance-action counters — as flat numpy arrays
instead of one Python :class:`~repro.simulation.trace.Trajectory`
object per run.  Two things follow:

* ``summarize()`` and ``reliability_curve()`` run vectorized over the
  columns (bit-identical to the per-object reference implementation;
  see the module docstring of :mod:`repro.simulation.metrics`);
* a study that does not keep its trajectories holds ~100 bytes per run
  instead of a ~1 kB Python object graph, and worker processes ship a
  handful of arrays over the pipe instead of pickling object lists.

A :class:`TrajectoryAccumulator` builds a batch incrementally as
trajectories are produced (the streaming path used by
:meth:`repro.simulation.montecarlo.MonteCarlo.run` when trajectories
are not kept), or whole worker batches can be folded in with
:meth:`TrajectoryAccumulator.add_batch`.  Component-level *events* are
deliberately not part of a batch — anything that needs the event
stream (``availability_curve``, incident databases) keeps working on
``Trajectory`` objects.
"""

from __future__ import annotations

from array import array
from itertools import chain
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown
from repro.simulation.trace import Trajectory

__all__ = ["TrajectoryBatch", "TrajectoryAccumulator", "COST_FIELDS"]

#: Cost categories carried as batch columns, in
#: :class:`~repro.maintenance.costs.CostBreakdown` field order (the
#: order also fixes the ``total`` summation order — see
#: :attr:`TrajectoryBatch.cost_total`).
COST_FIELDS = ("inspections", "preventive", "corrective", "failures", "downtime")

_COUNT_FIELDS = (
    "n_inspections",
    "n_preventive_actions",
    "n_corrective_replacements",
)


class TrajectoryBatch:
    """KPI-relevant material of many trajectories, as columns.

    Parameters
    ----------
    horizon:
        Common trajectory length in years (a batch never mixes
        horizons).
    failure_times:
        All system-failure times, packed back to back in trajectory
        order (``float64``).
    failure_offsets:
        ``int64`` array of length ``n + 1``; trajectory ``i``'s failure
        times are ``failure_times[failure_offsets[i]:failure_offsets[i + 1]]``.
    downtime:
        Total down years per trajectory (``float64``).
    costs:
        One ``float64`` column per :data:`COST_FIELDS` category.
    n_inspections / n_preventive_actions / n_corrective_replacements:
        ``int64`` counter columns.
    """

    __slots__ = (
        "horizon",
        "failure_times",
        "failure_offsets",
        "downtime",
        "costs",
        "n_inspections",
        "n_preventive_actions",
        "n_corrective_replacements",
    )

    def __init__(
        self,
        horizon: float,
        failure_times: np.ndarray,
        failure_offsets: np.ndarray,
        downtime: np.ndarray,
        costs: Dict[str, np.ndarray],
        n_inspections: np.ndarray,
        n_preventive_actions: np.ndarray,
        n_corrective_replacements: np.ndarray,
    ):
        self.horizon = float(horizon)
        self.failure_times = np.ascontiguousarray(failure_times, dtype=np.float64)
        self.failure_offsets = np.ascontiguousarray(failure_offsets, dtype=np.int64)
        self.downtime = np.ascontiguousarray(downtime, dtype=np.float64)
        self.costs = {
            field: np.ascontiguousarray(costs[field], dtype=np.float64)
            for field in COST_FIELDS
        }
        self.n_inspections = np.ascontiguousarray(n_inspections, dtype=np.int64)
        self.n_preventive_actions = np.ascontiguousarray(
            n_preventive_actions, dtype=np.int64
        )
        self.n_corrective_replacements = np.ascontiguousarray(
            n_corrective_replacements, dtype=np.int64
        )
        self._validate()

    def _validate(self) -> None:
        n = len(self.downtime)
        if len(self.failure_offsets) != n + 1:
            raise ValidationError(
                f"failure_offsets must have length n + 1 = {n + 1}, "
                f"got {len(self.failure_offsets)}"
            )
        if n and (
            self.failure_offsets[0] != 0
            or self.failure_offsets[-1] != len(self.failure_times)
            or np.any(np.diff(self.failure_offsets) < 0)
        ):
            raise ValidationError("failure_offsets are not a valid prefix scan")
        for field in COST_FIELDS:
            if len(self.costs[field]) != n:
                raise ValidationError(
                    f"cost column {field!r} has length "
                    f"{len(self.costs[field])}, expected {n}"
                )
        for field in _COUNT_FIELDS:
            if len(getattr(self, field)) != n:
                raise ValidationError(
                    f"counter column {field!r} has length "
                    f"{len(getattr(self, field))}, expected {n}"
                )

    # ------------------------------------------------------------------
    # Shape and derived columns
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.downtime)

    @property
    def n_runs(self) -> int:
        """Number of trajectories in the batch."""
        return len(self.downtime)

    @property
    def n_failures(self) -> np.ndarray:
        """Per-trajectory system-failure counts (``int64``)."""
        return np.diff(self.failure_offsets)

    @property
    def first_failure(self) -> np.ndarray:
        """First system-failure time per trajectory; ``inf`` if none."""
        counts = self.n_failures
        first = np.full(len(self), np.inf)
        has = counts > 0
        first[has] = self.failure_times[self.failure_offsets[:-1][has]]
        return first

    @property
    def availability(self) -> np.ndarray:
        """Per-trajectory up fraction (same formula as
        :attr:`repro.simulation.trace.Trajectory.availability`)."""
        if self.horizon <= 0.0:
            return np.ones(len(self))
        return np.maximum(0.0, 1.0 - self.downtime / self.horizon)

    @property
    def cost_total(self) -> np.ndarray:
        """Per-trajectory total cost, summed in
        :attr:`~repro.maintenance.costs.CostBreakdown.total` field
        order so the floats match the object path bit-for-bit."""
        total = self.costs["inspections"] + self.costs["preventive"]
        total += self.costs["corrective"]
        total += self.costs["failures"]
        total += self.costs["downtime"]
        return total

    def failure_times_of(self, index: int) -> np.ndarray:
        """View of trajectory ``index``'s system-failure times."""
        start, end = self.failure_offsets[index], self.failure_offsets[index + 1]
        return self.failure_times[start:end]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the batch's columns."""
        arrays: List[np.ndarray] = [
            self.failure_times,
            self.failure_offsets,
            self.downtime,
            self.n_inspections,
            self.n_preventive_actions,
            self.n_corrective_replacements,
        ]
        arrays.extend(self.costs.values())
        return sum(a.nbytes for a in arrays)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_trajectories(
        cls, trajectories: Sequence[Trajectory]
    ) -> "TrajectoryBatch":
        """Convert a trajectory sequence in one pass over the objects.

        Raises
        ------
        ValidationError
            If ``trajectories`` is empty or horizons are inconsistent.
        """
        if not trajectories:
            raise ValidationError(
                "TrajectoryBatch.from_trajectories() needs at least one trajectory"
            )
        horizon = trajectories[0].horizon
        if any(t.horizon != horizon for t in trajectories):
            raise ValidationError("trajectories have inconsistent horizons")
        n = len(trajectories)
        failure_lists = [t.failure_times for t in trajectories]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter(map(len, failure_lists), dtype=np.int64, count=n),
            out=offsets[1:],
        )
        packed = np.fromiter(
            chain.from_iterable(failure_lists),
            dtype=np.float64,
            count=int(offsets[-1]),
        )
        cost_rows = [t.costs for t in trajectories]
        costs = {
            field: np.fromiter(
                (getattr(c, field) for c in cost_rows), dtype=np.float64, count=n
            )
            for field in COST_FIELDS
        }
        return cls(
            horizon=horizon,
            failure_times=packed,
            failure_offsets=offsets,
            downtime=np.fromiter(
                (t.downtime for t in trajectories), dtype=np.float64, count=n
            ),
            costs=costs,
            n_inspections=np.fromiter(
                (t.n_inspections for t in trajectories), dtype=np.int64, count=n
            ),
            n_preventive_actions=np.fromiter(
                (t.n_preventive_actions for t in trajectories),
                dtype=np.int64,
                count=n,
            ),
            n_corrective_replacements=np.fromiter(
                (t.n_corrective_replacements for t in trajectories),
                dtype=np.int64,
                count=n,
            ),
        )

    def to_trajectories(self) -> List[Trajectory]:
        """Rebuild plain :class:`Trajectory` objects from the columns.

        Events are not part of a batch, so the reconstructed objects
        carry ``events_recorded=False`` — event-dependent consumers
        (``availability_curve``, incident databases) reject them
        rather than silently reporting an always-up system.
        """
        out: List[Trajectory] = []
        offsets = self.failure_offsets
        for i in range(len(self)):
            trajectory = Trajectory(
                horizon=self.horizon, events_recorded=False
            )
            trajectory.failure_times = self.failure_times[
                offsets[i]:offsets[i + 1]
            ].tolist()
            trajectory.downtime = float(self.downtime[i])
            trajectory.costs = CostBreakdown(
                **{field: float(self.costs[field][i]) for field in COST_FIELDS}
            )
            trajectory.n_inspections = int(self.n_inspections[i])
            trajectory.n_preventive_actions = int(self.n_preventive_actions[i])
            trajectory.n_corrective_replacements = int(
                self.n_corrective_replacements[i]
            )
            out.append(trajectory)
        return out

    @classmethod
    def merge(cls, batches: Sequence["TrajectoryBatch"]) -> "TrajectoryBatch":
        """Concatenate batches in order (horizons must agree)."""
        if not batches:
            raise ValidationError("TrajectoryBatch.merge() needs at least one batch")
        accumulator = TrajectoryAccumulator(horizon=batches[0].horizon)
        for batch in batches:
            accumulator.add_batch(batch)
        return accumulator.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrajectoryBatch(n={len(self)}, horizon={self.horizon:g}, "
            f"failures={len(self.failure_times)})"
        )


class TrajectoryAccumulator:
    """Streaming builder of a :class:`TrajectoryBatch`.

    Trajectory objects are reduced to their column scalars as they
    arrive (:meth:`add`) and can then be garbage collected — the
    accumulator's resident size is the columns themselves, independent
    of how expensive the trajectories were to produce.  Worker batches
    fold in wholesale via :meth:`add_batch` (a ``memcpy``, no Python
    per-trajectory work).

    ``horizon`` may be pinned at construction or inferred from the
    first trajectory; a mismatching later horizon raises, mirroring
    :func:`repro.simulation.metrics.summarize`.
    """

    def __init__(self, horizon: Optional[float] = None):
        self._horizon = None if horizon is None else float(horizon)
        self._failure_times = array("d")
        self._lengths = array("q")
        self._downtime = array("d")
        self._costs = {field: array("d") for field in COST_FIELDS}
        self._counts = {field: array("q") for field in _COUNT_FIELDS}

    def __len__(self) -> int:
        return len(self._downtime)

    @property
    def horizon(self) -> Optional[float]:
        """The pinned/inferred horizon, or None while still empty."""
        return self._horizon

    def _check_horizon(self, horizon: float) -> None:
        if self._horizon is None:
            self._horizon = float(horizon)
        elif horizon != self._horizon:
            raise ValidationError("trajectories have inconsistent horizons")

    def add(self, trajectory: Trajectory) -> None:
        """Fold one trajectory's KPI material into the columns."""
        self._check_horizon(trajectory.horizon)
        times = trajectory.failure_times
        self._lengths.append(len(times))
        if times:
            self._failure_times.extend(times)
        self._downtime.append(trajectory.downtime)
        costs = trajectory.costs
        columns = self._costs
        columns["inspections"].append(costs.inspections)
        columns["preventive"].append(costs.preventive)
        columns["corrective"].append(costs.corrective)
        columns["failures"].append(costs.failures)
        columns["downtime"].append(costs.downtime)
        counts = self._counts
        counts["n_inspections"].append(trajectory.n_inspections)
        counts["n_preventive_actions"].append(trajectory.n_preventive_actions)
        counts["n_corrective_replacements"].append(
            trajectory.n_corrective_replacements
        )

    def extend(self, trajectories: Iterable[Trajectory]) -> None:
        """Fold many trajectories (see :meth:`add`)."""
        for trajectory in trajectories:
            self.add(trajectory)

    def add_batch(self, batch: TrajectoryBatch) -> None:
        """Fold a whole batch in (columns are appended via memcpy)."""
        if len(batch) == 0:
            return
        self._check_horizon(batch.horizon)
        self._failure_times.frombytes(batch.failure_times.tobytes())
        self._lengths.frombytes(batch.n_failures.tobytes())
        self._downtime.frombytes(batch.downtime.tobytes())
        for field in COST_FIELDS:
            self._costs[field].frombytes(batch.costs[field].tobytes())
        for field in _COUNT_FIELDS:
            self._counts[field].frombytes(getattr(batch, field).tobytes())

    def build(self) -> TrajectoryBatch:
        """Materialize the accumulated columns as a batch.

        The accumulator stays usable afterwards (the batch owns copies
        of the columns); the build transiently holds both the growable
        buffers and their numpy copies — use :meth:`finalize` when the
        accumulator is done for a peak of one representation only.
        """
        return self._materialize(destructive=False)

    def finalize(self) -> TrajectoryBatch:
        """Materialize destructively: each column buffer is released as
        soon as it has been copied, so the peak footprint is one
        representation plus a single column instead of two full
        representations.  The accumulator comes out empty (the horizon
        stays pinned) and may keep accumulating afterwards.
        """
        return self._materialize(destructive=True)

    def _materialize(self, destructive: bool) -> TrajectoryBatch:
        if self._horizon is None:
            raise ValidationError(
                "cannot build an empty batch without a pinned horizon"
            )
        n = len(self._downtime)

        def take(holder, key, dtype, fresh):
            column = np.array(holder[key], dtype=dtype)
            if destructive:
                holder[key] = array(fresh)
            return column

        scalars = {
            "lengths": self._lengths,
            "failure_times": self._failure_times,
            "downtime": self._downtime,
        }
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(take(scalars, "lengths", np.int64, "q"), out=offsets[1:])
        failure_times = take(scalars, "failure_times", np.float64, "d")
        downtime = take(scalars, "downtime", np.float64, "d")
        if destructive:
            self._lengths = scalars["lengths"]
            self._failure_times = scalars["failure_times"]
            self._downtime = scalars["downtime"]
        costs = {
            field: take(self._costs, field, np.float64, "d")
            for field in COST_FIELDS
        }
        counts = {
            field: take(self._counts, field, np.int64, "q")
            for field in _COUNT_FIELDS
        }
        return TrajectoryBatch(
            horizon=self._horizon,
            failure_times=failure_times,
            failure_offsets=offsets,
            downtime=downtime,
            costs=costs,
            n_inspections=counts["n_inspections"],
            n_preventive_actions=counts["n_preventive_actions"],
            n_corrective_replacements=counts["n_corrective_replacements"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        horizon = "?" if self._horizon is None else f"{self._horizon:g}"
        return f"TrajectoryAccumulator(n={len(self)}, horizon={horizon})"
