"""Lockstep vectorized trajectory kernel.

The object engine (:class:`~repro.simulation.executor.FMTSimulator`)
walks one trajectory at a time through a discrete-event calendar.  This
module simulates N trajectories *in lockstep* as struct-of-arrays
columns: phase-jump chains are batch-sampled as Erlang cumulative sums,
gate evaluation is compiled into numpy selection kernels over
per-component failure-time columns, and the only per-trajectory Python
left is the chunk loop itself.

The kernel exploits a structural property of the simulated process:
between two *deterministic* calendar points (the merged inspection /
repair tick epochs), the system evolves purely by component degradation
— components only move toward failure, never away.  Over such an
interval the entire future of each component is one pre-sampled jump
chain, every monotone gate's failure time is a min/max/k-th-smallest
selection over its children's failure times, a priority-AND fires at
its last child's failure time iff the children's failure times are
non-decreasing, and RDEP rate switches happen exactly at trigger
failure times and are realised by memoryless re-draws of the target
chains.  Everything stochastic therefore vectorizes; everything
non-vectorizable is deterministic and shared across the batch.

Models whose event times are *per-trajectory random* on the calendar —
exponentially timed modules, inspection work-order delays — or whose
failure-time composition needs historical gate flip times (PAND gates
over subtrees, RDEPs triggered by gates, chained RDEPs) break the
lockstep property.  :func:`vectorized_fallback_reason` classifies them
up front, and the driver then runs the batch through the object engine
instead — bit-identical to the plain object path, which stays the
correctness oracle (see :mod:`repro.simulation.differential` for the
distributional-equivalence harness).

Determinism: for a fixed chunk layout the kernel is a pure function of
the model and the seed sequence (chunk ``i`` draws from a child of its
first seed).  Results are *distributionally* equivalent to — but not
bit-identical with — the object engine, and they are not invariant to
the chunk size.  Studies that need bit-level reproducibility against
golden fixtures keep ``kernel="object"``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gates import OrGate, PandGate, VotingGate
from repro.errors import SimulationError
from repro.observability import instrumentation as _obs
from repro.simulation.batch import COST_FIELDS, TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.executor import FMTSimulator

__all__ = [
    "DEFAULT_CHUNK_TRAJECTORIES",
    "VectorizedKernel",
    "iter_vectorized_batches",
    "simulate_batch_columns_vectorized",
    "vectorized_fallback_reason",
]

#: Default trajectories simulated per lockstep pass.  Large enough to
#: amortize the per-epoch numpy dispatch overhead, small enough that the
#: per-event jump matrices stay cache-friendly (~1 MB per 4096-row chunk
#: on the EI-joint model).
DEFAULT_CHUNK_TRAJECTORIES = 4096

#: Hard cap on wave iterations per inter-epoch interval — each
#: iteration commits at least one rate switch or system failure per
#: stuck row, so hitting the cap means a logic error, not a big model.
_MAX_WAVE_ITERATIONS = 10_000


# ----------------------------------------------------------------------
# Model classification
# ----------------------------------------------------------------------
def vectorized_fallback_reason(simulator: FMTSimulator) -> Optional[str]:
    """Why ``simulator``'s model cannot run on the lockstep kernel.

    Returns None when the model is fully vectorizable, otherwise a
    human-readable reason.  The driver (:func:`iter_vectorized_batches`)
    falls back to the object engine — the oracle — for any non-None
    reason, so a conservative classification costs throughput, never
    correctness.
    """
    tree = simulator.tree
    events = simulator._events
    for plan in simulator._inspection_plans + simulator._repair_plans:
        if plan.exponential:
            return (
                f"module {plan.name!r} uses exponential timing "
                "(per-trajectory tick times break the lockstep calendar)"
            )
        if plan.delay > 0.0:
            return (
                f"module {plan.name!r} schedules delayed work orders "
                "(per-trajectory action times break the lockstep calendar)"
            )
    targets = set()
    for dep in tree.dependencies:
        targets.update(dep.targets)
    for dep in tree.dependencies:
        if dep.trigger not in events:
            return (
                f"RDEP trigger {dep.trigger!r} is a gate (composed gate "
                "failure times do not track historical flip times)"
            )
        if dep.trigger in targets:
            return (
                f"RDEP trigger {dep.trigger!r} is itself rate-dependent "
                "(chained RDEPs invalidate the switch fixed point)"
            )
    for gate in tree.gates.values():
        if isinstance(gate, PandGate):
            for child in gate.children:
                if child.name not in events:
                    return (
                        f"PAND gate {gate.name!r} has gate child "
                        f"{child.name!r} (order checks need historical "
                        "flip times)"
                    )
    return None


# ----------------------------------------------------------------------
# Compiled model tables
# ----------------------------------------------------------------------
class _GateOp:
    """One compiled gate: a selection kernel over child value slots."""

    __slots__ = ("slot", "kind", "children", "k")

    # kind codes
    PAND = 0
    MIN = 1  # OR / VOT(k=1)
    MAX = 2  # AND / inhibit / VOT(k=n)
    KTH = 3  # VOT(1 < k < n)

    def __init__(self, slot: int, kind: int, children: Tuple[int, ...], k: int = 0):
        self.slot = slot
        self.kind = kind
        self.children = children
        self.k = k


class _PlanCols:
    """One module plan with names resolved to event column indices."""

    __slots__ = (
        "name",
        "is_inspection",
        "visit_cost",
        "detect_failures",
        "detection_probability",
        "restore_phases",
        "targets",  # tuples (event index, threshold, action cost, corrective cost)
    )

    def __init__(self, plan, index: Dict[str, int], corrective_cost: Dict[str, float],
                 is_inspection: bool):
        self.name = plan.name
        self.is_inspection = is_inspection
        self.visit_cost = plan.visit_cost
        self.detect_failures = plan.detect_failures
        self.detection_probability = plan.detection_probability
        self.restore_phases = plan.action.restore_phases
        self.targets = tuple(
            (
                index[target],
                threshold,
                plan.action_cost[target],
                corrective_cost[target],
            )
            for target, threshold in plan.targets
        )


class _ChunkState:
    """Struct-of-arrays state of one lockstep chunk (n rows)."""

    __slots__ = (
        "n",
        "jumps",  # per event: (n, K_e) absolute jump times, inf-padded
        "p0",  # per event: (n,) phase at the chain's draw point
        "F",  # (E, n) final-jump (component failure) times
        "down_until",
        "done",
        "downtime",
        "costs",
        "n_insp",
        "n_prev",
        "n_corr",
        "fail_rows",
        "fail_times",
        "path_t0",  # per RDEP target: (n,) draw time of the live chain
        "factor",  # per RDEP target: (n,) acceleration baked into it
    )

    def __init__(self, n: int, n_events: int, rdep_targets: Sequence[int]):
        self.n = n
        self.jumps: List[np.ndarray] = [None] * n_events  # type: ignore[list-item]
        self.p0: List[np.ndarray] = [None] * n_events  # type: ignore[list-item]
        self.F = np.zeros((n_events, n))
        self.down_until = np.zeros(n)
        self.done = np.zeros(n, dtype=bool)
        self.downtime = np.zeros(n)
        self.costs = {field: np.zeros(n) for field in COST_FIELDS}
        self.n_insp = np.zeros(n, dtype=np.int64)
        self.n_prev = np.zeros(n, dtype=np.int64)
        self.n_corr = np.zeros(n, dtype=np.int64)
        self.fail_rows: List[np.ndarray] = []
        self.fail_times: List[np.ndarray] = []
        self.path_t0 = {e: np.zeros(n) for e in rdep_targets}
        self.factor = {e: np.ones(n) for e in rdep_targets}


class VectorizedKernel:
    """Compiled lockstep sampler for one (tree, strategy, config).

    Construction compiles the simulator's static tables into numpy form
    (per-phase reciprocal-rate matrices, topologically ordered gate
    selection ops, RDEP dependency columns, the merged tick-epoch
    calendar); :meth:`simulate_chunk` then runs N trajectories per call
    using only the provided RNG.

    Raises
    ------
    SimulationError
        If the model is not vectorizable — callers are expected to
        check :func:`vectorized_fallback_reason` first.
    """

    def __init__(self, simulator: FMTSimulator):
        reason = vectorized_fallback_reason(simulator)
        if reason is not None:
            raise SimulationError(f"model is not vectorizable: {reason}")
        self.simulator = simulator
        self.horizon = simulator.config.horizon
        cost_model = simulator.config.cost_model
        self.discount_rate = cost_model.discount_rate
        self.downtime_per_year = cost_model.downtime_per_year
        self.system_failure_cost = cost_model.system_failure
        strategy = simulator.strategy
        self.absorbing = strategy.on_system_failure == "none"
        self.repair_time = strategy.system_repair_time
        self._compile_events(simulator)
        self._compile_gates(simulator)
        self._compile_rdeps(simulator)
        self._compile_calendar(simulator)

    # -- compilation ----------------------------------------------------
    def _compile_events(self, sim: FMTSimulator) -> None:
        self.names: List[str] = list(sim._events)
        self.index: Dict[str, int] = {
            name: e for e, name in enumerate(self.names)
        }
        self.n_events = len(self.names)
        self.K: List[int] = [sim._n_phases[name] for name in self.names]
        # inv_from[e][p] = the reciprocal rates of the remaining phases
        # p, p+1, ..., K-1, zero-padded: one row-indexed gather gives
        # the Erlang scale matrix for a whole batch of re-draws.
        self.inv_from: List[np.ndarray] = []
        for name in self.names:
            inv = np.asarray(sim._inv_rates[name])
            K = len(inv)
            table = np.zeros((K + 1, K))
            for p in range(K):
                table[p, : K - p] = inv[p:]
            self.inv_from.append(table)

    def _compile_gates(self, sim: FMTSimulator) -> None:
        tree = sim.tree
        slots = dict(self.index)
        ops: List[_GateOp] = []
        visiting: set = set()

        def visit(node) -> int:
            name = node.name
            if name in slots:
                return slots[name]
            visiting.add(name)
            children = tuple(visit(child) for child in node.children)
            visiting.discard(name)
            slot = self.n_events + len(ops)
            slots[name] = slot
            # isinstance dispatch mirrors the executor's threshold
            # derivation: PAND -> order-sensitive, VOT -> k, OR -> 1,
            # anything else (AND, inhibit) -> all children.
            if isinstance(node, PandGate):
                ops.append(_GateOp(slot, _GateOp.PAND, children))
            elif isinstance(node, VotingGate):
                if node.k == 1:
                    ops.append(_GateOp(slot, _GateOp.MIN, children))
                elif node.k == len(children):
                    ops.append(_GateOp(slot, _GateOp.MAX, children))
                else:
                    ops.append(_GateOp(slot, _GateOp.KTH, children, node.k))
            elif isinstance(node, OrGate):
                ops.append(_GateOp(slot, _GateOp.MIN, children))
            else:
                ops.append(_GateOp(slot, _GateOp.MAX, children))
            return slot

        self.top_slot = visit(tree.top)
        self.gate_ops = ops
        self.n_slots = self.n_events + len(ops)

    def _compile_rdeps(self, sim: FMTSimulator) -> None:
        # Per target event index: [(trigger event index, factor), ...].
        deps: Dict[int, List[Tuple[int, float]]] = {}
        for dep in sim.tree.dependencies:
            trig = self.index[dep.trigger]
            for target in dep.targets:
                deps.setdefault(self.index[target], []).append(
                    (trig, dep.factor)
                )
        self.rdep_deps = deps

    def _compile_calendar(self, sim: FMTSimulator) -> None:
        plans: Dict[float, List[Tuple[Tuple[int, int], _PlanCols]]] = {}
        groups = (
            (0, sim._repair_plans, False),  # repairs before inspections
            (1, sim._inspection_plans, True),  # (ties: engine priority)
        )
        for prio, plan_list, is_inspection in groups:
            for j, plan in enumerate(plan_list):
                cols = _PlanCols(
                    plan, self.index, sim._corrective_cost, is_inspection
                )
                # Tick times by repeated addition, exactly as the object
                # engine reschedules (now + period): the epochs of the
                # two paths are the same floats, so tick *counts* per
                # trajectory agree exactly.
                t = plan.offset
                while t <= self.horizon:
                    plans.setdefault(t, []).append(((prio, j), cols))
                    t += plan.period
        self.epochs: List[Tuple[float, List[_PlanCols]]] = [
            (t, [cols for _, cols in sorted(plans[t], key=lambda item: item[0])])
            for t in sorted(plans)
        ]

    # -- sampling primitives --------------------------------------------
    def _redraw(
        self,
        st: _ChunkState,
        e: int,
        rows: np.ndarray,
        t,
        phases: np.ndarray,
        factor: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Re-sample event ``e``'s remaining jump chain for ``rows``.

        ``t`` (scalar or per-row array) is the draw point, ``phases``
        the phase there, ``factor`` the acceleration in force.  Sojourn
        of phase p at acceleration a is Exp(rate_p * a), realised as
        ``standard_exponential() * inv_rate_p / a`` — memorylessness
        makes re-drawing at any point distributionally exact.
        """
        K = self.K[e]
        m = len(rows)
        scales = self.inv_from[e][phases]
        sojourns = rng.standard_exponential((m, K)) * scales
        if factor is not None:
            sojourns /= factor[:, None]
        cums = np.cumsum(sojourns, axis=1)
        t_arr = np.asarray(t, dtype=float)
        base = t_arr[:, None] if t_arr.ndim else t_arr
        jumps = base + cums
        remaining = K - phases
        # Pad the columns past the remaining phases with +inf — leaving
        # the zero-sojourn duplicates in place would overcount phases in
        # _phase_at.
        jumps[np.arange(K)[None, :] >= remaining[:, None]] = np.inf
        st.jumps[e][rows] = jumps
        st.p0[e][rows] = phases
        st.F[e][rows] = jumps[np.arange(m), remaining - 1]
        if e in self.rdep_deps:
            st.path_t0[e][rows] = t_arr
            st.factor[e][rows] = factor

    def _phase_at(self, st: _ChunkState, e: int, rows: np.ndarray, t) -> np.ndarray:
        """Degradation phase of event ``e`` at time ``t`` for ``rows``."""
        t_arr = np.asarray(t, dtype=float)
        bound = t_arr[:, None] if t_arr.ndim else t_arr
        return st.p0[e][rows] + np.count_nonzero(
            st.jumps[e][rows] <= bound, axis=1
        )

    def _current_factor(
        self, st: _ChunkState, e: int, rows: np.ndarray, t
    ) -> np.ndarray:
        """Acceleration of target ``e`` at time ``t``: the product over
        its dependencies whose trigger is failed (trigger failure times
        are the F column — triggers are pure basic events)."""
        fac = np.ones(len(rows))
        for trig, f in self.rdep_deps[e]:
            fac = fac * np.where(st.F[trig][rows] <= t, f, 1.0)
        return fac

    # -- cost mirrors ---------------------------------------------------
    def _discount(self, t: float) -> float:
        if self.discount_rate == 0.0:
            return 1.0
        return math.exp(-self.discount_rate * t)

    def _discount_arr(self, t: np.ndarray):
        if self.discount_rate == 0.0:
            return 1.0
        return np.exp(-self.discount_rate * t)

    def _downtime_cost(self, start, end):
        r = self.discount_rate
        if r == 0.0:
            return self.downtime_per_year * (np.asarray(end) - start)
        return (
            self.downtime_per_year
            * (np.exp(-r * np.asarray(start)) - np.exp(-r * np.asarray(end)))
            / r
        )

    # -- composition ----------------------------------------------------
    def _compose_top(self, st: _ChunkState) -> np.ndarray:
        """System failure time per row, given the current jump chains.

        Component slots carry the failure-time columns; each gate op
        selects from its children: OR = min, AND/inhibit = max, VOT(k)
        = k-th smallest, PAND = last child's failure time where the
        children's failure times are non-decreasing, else +inf.  All
        selections propagate *actual component failure times*, so a
        finite top value is the exact instant the object engine would
        raise the top event on the same chains.
        """
        vals: List[np.ndarray] = [None] * self.n_slots  # type: ignore[list-item]
        for e in range(self.n_events):
            vals[e] = st.F[e]
        for op in self.gate_ops:
            children = [vals[c] for c in op.children]
            if op.kind == _GateOp.MIN:
                v = np.minimum.reduce(children)
            elif op.kind == _GateOp.MAX:
                v = np.maximum.reduce(children)
            elif op.kind == _GateOp.KTH:
                v = np.partition(np.stack(children), op.k - 1, axis=0)[op.k - 1]
            else:  # PAND: non-decreasing order, fires at the last child
                ok = children[0] <= children[1]
                for a, b in zip(children[1:-1], children[2:]):
                    ok &= a <= b
                v = np.where(ok, children[-1], np.inf)
            vals[op.slot] = v
        return vals[self.top_slot]

    # -- inter-epoch advancement ----------------------------------------
    def _apply_switches(
        self, st: _ChunkState, live: np.ndarray, T: np.ndarray, t1: float,
        rng: np.random.Generator,
    ) -> bool:
        """Apply each live row's earliest pending RDEP rate switch.

        A switch candidate for a target is a trigger failure strictly
        after the target chain's draw point and no later than
        ``min(T, t1)`` — later triggers are preempted by the system
        failure at T (renewal re-draws everything) or belong to the
        next interval.  Only the earliest candidate per row is applied
        (simultaneously across targets sharing it); the caller then
        recomposes and calls again, which keeps the factor product
        exact when several triggers fail in sequence.
        """
        if not self.rdep_deps:
            return False
        bound = np.minimum(T, t1)
        taus: Dict[int, np.ndarray] = {}
        for tgt, deps in self.rdep_deps.items():
            cand = np.full(st.n, np.inf)
            t0 = st.path_t0[tgt]
            for trig, _ in deps:
                Ft = st.F[trig]
                eligible = live & (Ft > t0) & (Ft <= bound)
                cand = np.where(eligible & (Ft < cand), Ft, cand)
            taus[tgt] = cand
        row_min = np.minimum.reduce(list(taus.values()))
        hit = live & np.isfinite(row_min)
        if not hit.any():
            return False
        for tgt, cand in taus.items():
            apply = hit & (cand == row_min)
            if not apply.any():
                continue
            rows = np.flatnonzero(apply)
            tau = row_min[rows]
            fac = self._current_factor(st, tgt, rows, tau)
            up = st.F[tgt][rows] > tau
            if up.any():
                up_rows = rows[up]
                phases = self._phase_at(st, tgt, up_rows, tau[up])
                self._redraw(st, tgt, up_rows, tau[up], phases, fac[up], rng)
            # Failed targets get no re-draw (no pending transition to
            # reschedule) but must still advance their switch point, or
            # the same trigger would be re-found forever.
            down_rows = rows[~up]
            if len(down_rows):
                st.path_t0[tgt][down_rows] = tau[~up]
                st.factor[tgt][down_rows] = fac[~up]
        return True

    def _commit_failures(
        self, st: _ChunkState, live: np.ndarray, T: np.ndarray, t1: float,
        rng: np.random.Generator,
    ) -> bool:
        """Commit system failures at T <= t1 and apply the strategy's
        failure response (absorbing stop or corrective renewal)."""
        fail = live & (T <= t1)
        if not fail.any():
            return False
        rows = np.flatnonzero(fail)
        tf = T[rows]
        st.fail_rows.append(rows)
        st.fail_times.append(tf)
        st.costs["failures"][rows] += (
            self.system_failure_cost * self._discount_arr(tf)
        )
        if self.absorbing:
            st.done[rows] = True
            st.downtime[rows] += self.horizon - tf
            st.costs["downtime"][rows] += self._downtime_cost(tf, self.horizon)
            return True
        st.n_corr[rows] += 1
        du = tf + self.repair_time
        over = du > self.horizon
        over_rows = rows[over]
        if len(over_rows):
            # Repair completes past the horizon: the trajectory ends
            # down (the object path books this in _finalize).
            st.done[over_rows] = True
            st.downtime[over_rows] += self.horizon - tf[over]
            st.costs["downtime"][over_rows] += self._downtime_cost(
                tf[over], self.horizon
            )
        in_rows = rows[~over]
        if len(in_rows):
            du_in = du[~over]
            st.downtime[in_rows] += du_in - tf[~over]
            st.costs["downtime"][in_rows] += self._downtime_cost(
                tf[~over], du_in
            )
            st.down_until[in_rows] = du_in
            # Corrective renewal: the whole asset restarts as new.
            zeros = np.zeros(len(in_rows), dtype=np.int64)
            ones = np.ones(len(in_rows))
            for e in range(self.n_events):
                self._redraw(st, e, in_rows, du_in, zeros, ones, rng)
        return True

    def _advance(
        self, st: _ChunkState, t1: float, rng: np.random.Generator
    ) -> None:
        """Run all rows forward until no event remains at or before
        ``t1``: alternate earliest-switch application and failure
        commits until the composed system failure times clear ``t1``."""
        for _ in range(_MAX_WAVE_ITERATIONS):
            live = ~st.done
            if not live.any():
                return
            T = self._compose_top(st)
            if self._apply_switches(st, live, T, t1, rng):
                continue
            if self._commit_failures(st, live, T, t1, rng):
                continue
            return
        raise SimulationError(
            "vectorized kernel failed to converge advancing the chunk "
            f"to t={t1!r} (wave iteration cap exceeded)"
        )

    # -- epoch (tick) processing ----------------------------------------
    def _process_epoch(
        self,
        st: _ChunkState,
        t: float,
        plans: List[_PlanCols],
        rng: np.random.Generator,
    ) -> None:
        # System restoration (priority 1) precedes repair/inspection
        # ticks at the same instant, so rows restored exactly at t are
        # active; rows still down skip the visit (the object handlers
        # return early but the tick itself was still scheduled).
        active = ~st.done & (st.down_until <= t)
        if not active.any():
            return
        disc = self._discount(t)
        act_rows = np.flatnonzero(active)
        for plan in plans:
            if plan.is_inspection:
                self._inspect(st, t, plan, active, act_rows, disc, rng)
            else:
                self._repair(st, t, plan, act_rows, disc, rng)
        # End-of-epoch RDEP reconciliation: replacements above may have
        # un-failed trigger components, decelerating their targets.  The
        # object engine reschedules the pending target transition at the
        # very instant the trigger flips; by memorylessness, re-drawing
        # the chain at the same instant t with the settled factor is
        # distributionally identical.
        for tgt in self.rdep_deps:
            fac = self._current_factor(st, tgt, act_rows, t)
            changed = fac != st.factor[tgt][act_rows]
            if not changed.any():
                continue
            rows = act_rows[changed]
            new_fac = fac[changed]
            up = st.F[tgt][rows] > t
            if up.any():
                up_rows = rows[up]
                phases = self._phase_at(st, tgt, up_rows, t)
                self._redraw(st, tgt, up_rows, t, phases, new_fac[up], rng)
            down_rows = rows[~up]
            if len(down_rows):
                st.factor[tgt][down_rows] = new_fac[~up]
                st.path_t0[tgt][down_rows] = t

    def _inspect(
        self,
        st: _ChunkState,
        t: float,
        plan: _PlanCols,
        active: np.ndarray,
        act_rows: np.ndarray,
        disc: float,
        rng: np.random.Generator,
    ) -> None:
        st.n_insp[act_rows] += 1
        st.costs["inspections"][act_rows] += plan.visit_cost * disc
        dp = plan.detection_probability
        for e, threshold, action_cost, corrective_cost in plan.targets:
            failed = active & (st.F[e] <= t)
            if plan.detect_failures and failed.any():
                rows = np.flatnonzero(failed)
                st.costs["corrective"][rows] += corrective_cost * disc
                st.n_corr[rows] += 1
                fac = self._current_factor_or_ones(st, e, rows, t)
                self._redraw(
                    st, e, rows, t, np.zeros(len(rows), dtype=np.int64), fac, rng
                )
            candidates = np.flatnonzero(active & ~failed)
            if not len(candidates):
                continue
            phases = self._phase_at(st, e, candidates, t)
            selected = phases >= threshold
            if dp < 1.0:
                # Object draw: a visit *misses* when random() >= dp.
                selected &= rng.random(len(candidates)) < dp
            if not selected.any():
                continue
            rows = candidates[selected]
            st.costs["preventive"][rows] += action_cost * disc
            st.n_prev[rows] += 1
            self._apply_action(
                st, e, rows, t, phases[selected], plan.restore_phases, rng
            )

    def _repair(
        self,
        st: _ChunkState,
        t: float,
        plan: _PlanCols,
        act_rows: np.ndarray,
        disc: float,
        rng: np.random.Generator,
    ) -> None:
        # Time-based repairs apply the action to every target regardless
        # of condition — including failed ones, which come back at
        # phase K - restore_phases (restore_phases >= 1, so always < K).
        for e, _, action_cost, _ in plan.targets:
            st.costs["preventive"][act_rows] += action_cost * disc
            st.n_prev[act_rows] += 1
            phases = self._phase_at(st, e, act_rows, t)
            self._apply_action(
                st, e, act_rows, t, phases, plan.restore_phases, rng
            )

    def _apply_action(
        self,
        st: _ChunkState,
        e: int,
        rows: np.ndarray,
        t: float,
        phases: np.ndarray,
        restore_phases: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        """Mirror of _perform_action: restore the phase, re-draw the
        chain from ``t``.  The object engine re-draws the pending jump
        even when the phase is numerically unchanged (_set_phase always
        cancels and reschedules), so an unconditional re-draw matches."""
        if restore_phases is None:
            new_phases = np.zeros(len(rows), dtype=np.int64)
        else:
            new_phases = np.maximum(phases - restore_phases, 0)
        fac = self._current_factor_or_ones(st, e, rows, t)
        self._redraw(st, e, rows, t, new_phases, fac, rng)

    def _current_factor_or_ones(
        self, st: _ChunkState, e: int, rows: np.ndarray, t
    ) -> np.ndarray:
        if e in self.rdep_deps:
            return self._current_factor(st, e, rows, t)
        return np.ones(len(rows))

    # -- chunk driver ---------------------------------------------------
    def simulate_chunk(self, n: int, rng: np.random.Generator) -> TrajectoryBatch:
        """Simulate ``n`` trajectories in lockstep; returns their batch."""
        st = _ChunkState(n, self.n_events, tuple(self.rdep_deps))
        zeros = np.zeros(n, dtype=np.int64)
        ones = np.ones(n)
        all_rows = np.arange(n)
        for e in range(self.n_events):
            st.jumps[e] = np.empty((n, self.K[e]))
            st.p0[e] = np.zeros(n, dtype=np.int64)
            self._redraw(st, e, all_rows, 0.0, zeros, ones, rng)
        for t, plans in self.epochs:
            self._advance(st, t, rng)
            self._process_epoch(st, t, plans, rng)
        self._advance(st, self.horizon, rng)
        return self._build_batch(st)

    def _build_batch(self, st: _ChunkState) -> TrajectoryBatch:
        n = st.n
        if st.fail_rows:
            rows = np.concatenate(st.fail_rows)
            times = np.concatenate(st.fail_times)
            # Stable sort: appends are chronological per row, so the
            # per-trajectory failure-time slices come out ordered.
            order = np.argsort(rows, kind="stable")
            times = times[order]
            counts = np.bincount(rows, minlength=n)
        else:
            times = np.empty(0)
            counts = np.zeros(n, dtype=np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return TrajectoryBatch(
            horizon=self.horizon,
            failure_times=times,
            failure_offsets=offsets,
            downtime=st.downtime,
            costs=st.costs,
            n_inspections=st.n_insp,
            n_preventive_actions=st.n_prev,
            n_corrective_replacements=st.n_corr,
        )


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------
def iter_vectorized_batches(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    chunk_size: int = DEFAULT_CHUNK_TRAJECTORIES,
) -> Iterator[TrajectoryBatch]:
    """Yield one :class:`TrajectoryBatch` per lockstep chunk of seeds.

    Non-vectorizable models transparently run each seed through the
    object engine instead (bit-identical to ``kernel="object"``); fully
    vectorizable models derive each chunk's RNG from a child of the
    chunk's first seed, so results are deterministic for a fixed chunk
    layout but not bit-comparable with the object path.
    """
    n_total = len(seeds)
    if n_total == 0:
        return
    instr = simulator.config.instrumentation
    if instr is None:
        instr = _obs.current()
    reason = vectorized_fallback_reason(simulator)
    kernel = None if reason is not None else VectorizedKernel(simulator)
    for start in range(0, n_total, chunk_size):
        chunk = seeds[start : start + chunk_size]
        if kernel is None:
            accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
            for seed in chunk:
                accumulator.add(simulator.simulate(np.random.default_rng(seed)))
            batch = accumulator.finalize()
        else:
            rng = np.random.default_rng(chunk[0].spawn(1)[0])
            batch = kernel.simulate_chunk(len(chunk), rng)
            if instr is not None:
                instr.count(_obs.SIM_TRAJECTORIES, len(chunk))
        yield batch


def simulate_batch_columns_vectorized(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    chunk_size: int = DEFAULT_CHUNK_TRAJECTORIES,
) -> TrajectoryBatch:
    """Columnar results for ``seeds`` via the lockstep kernel.

    Drop-in counterpart of
    :func:`repro.simulation.parallel.simulate_batch_columns` for
    ``SimulationConfig(kernel="vectorized")`` simulators.
    """
    accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
    for batch in iter_vectorized_batches(simulator, seeds, chunk_size):
        accumulator.add_batch(batch)
    return accumulator.finalize()
