"""Lockstep vectorized trajectory kernel.

The object engine (:class:`~repro.simulation.executor.FMTSimulator`)
walks one trajectory at a time through a discrete-event calendar.  This
module simulates N trajectories *in lockstep* as struct-of-arrays
columns: phase-jump chains are batch-sampled as Erlang cumulative sums,
gate evaluation is compiled into numpy selection kernels over
per-component failure-time columns, and the only per-trajectory Python
left is the chunk loop itself.

The kernel exploits a structural property of the simulated process:
between two *deterministic* calendar points (the merged inspection /
repair tick epochs), the system evolves purely by component degradation
— components only move toward failure, never away.  Over such an
interval the entire future of each component is one pre-sampled jump
chain, every monotone gate's failure time is a min/max/k-th-smallest
selection over its children's failure times, a priority-AND fires at
its last child's failure time iff the children's failure times are
non-decreasing, and RDEP rate switches happen exactly at trigger
failure times and are realised by memoryless re-draws of the target
chains.  Everything stochastic therefore vectorizes; everything
non-vectorizable is deterministic and shared across the batch.

Models whose event times are *per-trajectory random* on the calendar —
exponentially timed modules, inspection work-order delays — or whose
failure-time composition needs historical gate flip times (PAND gates
over subtrees, RDEPs triggered by gates, chained RDEPs) break the
lockstep property.  :func:`vectorized_fallback_reason` classifies them
up front, and the driver then runs the batch through the object engine
instead — bit-identical to the plain object path, which stays the
correctness oracle (see :mod:`repro.simulation.differential` for the
distributional-equivalence harness).

Determinism: for a fixed chunk layout the kernel is a pure function of
the model and the seed sequence (chunk ``i`` draws from a child of its
first seed).  Results are *distributionally* equivalent to — but not
bit-identical with — the object engine, and they are not invariant to
the chunk size.  Studies that need bit-level reproducibility against
golden fixtures keep ``kernel="object"``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gates import OrGate, PandGate, VotingGate
from repro.errors import SimulationError
from repro.observability import instrumentation as _obs
from repro.simulation.batch import COST_FIELDS, TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.executor import DEFAULT_CHUNK_TRAJECTORIES, FMTSimulator

__all__ = [
    "DEFAULT_CHUNK_TRAJECTORIES",
    "VectorizedKernel",
    "iter_vectorized_batches",
    "simulate_batch_columns_vectorized",
    "vectorized_fallback_reason",
]

#: Hard cap on wave iterations per inter-epoch interval — each
#: iteration commits at least one rate switch or system failure per
#: stuck row, so hitting the cap means a logic error, not a big model.
_MAX_WAVE_ITERATIONS = 10_000

#: Rows per refill block of the pre-drawn RNG pools.  Re-draws after
#: chunk initialisation touch tens of rows at a time, so one block
#: amortizes hundreds of generator calls.
_POOL_REFILL = 1024


# ----------------------------------------------------------------------
# Model classification
# ----------------------------------------------------------------------
def vectorized_fallback_reason(simulator: FMTSimulator) -> Optional[str]:
    """Why ``simulator``'s model cannot run on the lockstep kernel.

    Returns None when the model is fully vectorizable, otherwise a
    human-readable reason.  The driver (:func:`iter_vectorized_batches`)
    falls back to the object engine — the oracle — for any non-None
    reason, so a conservative classification costs throughput, never
    correctness.
    """
    tree = simulator.tree
    events = simulator._events
    for plan in simulator._inspection_plans + simulator._repair_plans:
        if plan.exponential:
            return (
                f"module {plan.name!r} uses exponential timing "
                "(per-trajectory tick times break the lockstep calendar)"
            )
        if plan.delay > 0.0:
            return (
                f"module {plan.name!r} schedules delayed work orders "
                "(per-trajectory action times break the lockstep calendar)"
            )
    targets = set()
    for dep in tree.dependencies:
        targets.update(dep.targets)
    for dep in tree.dependencies:
        if dep.trigger not in events:
            return (
                f"RDEP trigger {dep.trigger!r} is a gate (composed gate "
                "failure times do not track historical flip times)"
            )
        if dep.trigger in targets:
            return (
                f"RDEP trigger {dep.trigger!r} is itself rate-dependent "
                "(chained RDEPs invalidate the switch fixed point)"
            )
    for gate in tree.gates.values():
        if isinstance(gate, PandGate):
            for child in gate.children:
                if child.name not in events:
                    return (
                        f"PAND gate {gate.name!r} has gate child "
                        f"{child.name!r} (order checks need historical "
                        "flip times)"
                    )
    return None


# ----------------------------------------------------------------------
# Compiled model tables
# ----------------------------------------------------------------------
class _GateOp:
    """One compiled gate: a selection kernel over child value slots."""

    __slots__ = ("slot", "kind", "children", "k")

    # kind codes
    PAND = 0
    MIN = 1  # OR / VOT(k=1)
    MAX = 2  # AND / inhibit / VOT(k=n)
    KTH = 3  # VOT(1 < k < n)

    def __init__(self, slot: int, kind: int, children: Tuple[int, ...], k: int = 0):
        self.slot = slot
        self.kind = kind
        self.children = children
        self.k = k


class _PlanCols:
    """One module plan with names resolved to event column indices."""

    __slots__ = (
        "name",
        "is_inspection",
        "visit_cost",
        "detect_failures",
        "detection_probability",
        "restore_phases",
        "targets",  # tuples (event index, threshold, action cost, corrective cost)
    )

    def __init__(self, plan, index: Dict[str, int], corrective_cost: Dict[str, float],
                 is_inspection: bool):
        self.name = plan.name
        self.is_inspection = is_inspection
        self.visit_cost = plan.visit_cost
        self.detect_failures = plan.detect_failures
        self.detection_probability = plan.detection_probability
        self.restore_phases = plan.action.restore_phases
        self.targets = tuple(
            (
                index[target],
                threshold,
                plan.action_cost[target],
                corrective_cost[target],
            )
            for target, threshold in plan.targets
        )


class _FusedInspect:
    """One epoch's inspection plans compiled into a single pass.

    When every inspected event appears at most once across the epoch's
    inspection plans, the per-target failed / threshold-crossed scans
    collapse into two stacked 2-D comparisons (one over the F rows of
    the inspected events, one over the crossing-time rows), and the
    per-plan visit bookkeeping folds into one masked add each.  Targets
    whose threshold equals the phase count are *detect-only* — crossing
    the threshold is failing — and are excluded from the condition
    block entirely.
    """

    __slots__ = (
        "n_visits",  # number of inspection plans ticking this epoch
        "visit_cost",  # their summed visit cost
        "targets",  # flat (e, action_cost, corrective_cost, dp,
        #             detect, renew, restore_phases, cond_pos) tuples
        "tidx",  # (m,) event index per target (failed-scan rows)
        "xsel",  # (c,) Xmat row per condition target
        "cond_sel",  # (c,) target position per condition target
    )


class _ExpPool:
    """Pre-drawn standard-exponential columns served in call order.

    Replaces per-re-draw generator calls with slices of one large
    batch: the RNG is still consumed in a deterministic order (the
    kernel stays a pure function of the seed), but hundreds of small
    ``standard_exponential`` dispatches collapse into a few block
    draws.  Leftover rows of a block too small for a request are
    discarded — distributionally irrelevant, and keeping them would
    complicate the accounting for no measurable gain.
    """

    __slots__ = ("_rng", "_k", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, k: int, capacity: int):
        self._rng = rng
        self._k = k
        self._buf = rng.standard_exponential((capacity, k))
        self._pos = 0

    def take(self, m: int) -> np.ndarray:
        if self._pos + m > len(self._buf):
            self._buf = self._rng.standard_exponential(
                (max(m, _POOL_REFILL), self._k)
            )
            self._pos = 0
        out = self._buf[self._pos : self._pos + m]
        self._pos += m
        return out


class _UniformPool:
    """Pre-drawn uniform [0, 1) column for detection-probability rolls."""

    __slots__ = ("_rng", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._buf = np.empty(0)
        self._pos = 0

    def take(self, m: int) -> np.ndarray:
        if self._pos + m > len(self._buf):
            self._buf = self._rng.random(max(m, _POOL_REFILL))
            self._pos = 0
        out = self._buf[self._pos : self._pos + m]
        self._pos += m
        return out


class _ChunkState:
    """Struct-of-arrays state of one lockstep chunk (n rows)."""

    __slots__ = (
        "n",
        "jumps",  # per event: (n, K_e) absolute jump times, inf-padded
        "p0",  # per event: (n,) phase at the chain's draw point
        "F",  # (E, n) final-jump (component failure) times
        "Xmat",  # (n_thresholds, n) threshold crossing times
        "X",  # per (event, threshold): view of the Xmat row
        "T",  # (n,) cached composed system failure times
        "S",  # (n,) cached earliest eligible RDEP switch candidate
        "dirty",  # (n,) rows whose T/S caches are stale
        "pools",  # per event: _ExpPool feeding its re-draws
        "upool",  # _UniformPool feeding detection rolls
        "down_until",
        "done",
        "downtime",
        "costs",
        "n_insp",
        "n_prev",
        "n_corr",
        "fail_rows",
        "fail_times",
        "path_t0",  # per RDEP target: (n,) draw time of the live chain
        "factor",  # per RDEP target: (n,) acceleration baked into it
    )

    def __init__(
        self,
        n: int,
        n_events: int,
        rdep_targets: Sequence[int],
        threshold_keys: Sequence[Tuple[int, int]] = (),
    ):
        self.n = n
        self.jumps: List[np.ndarray] = [None] * n_events  # type: ignore[list-item]
        self.p0: List[np.ndarray] = [None] * n_events  # type: ignore[list-item]
        self.F = np.zeros((n_events, n))
        # Row views of one contiguous matrix: scatter writes go through
        # the per-key views, while the fused inspection pass compares
        # whole row blocks of Xmat in a single 2-D op.
        self.Xmat = np.full((len(threshold_keys), n), np.inf)
        self.X = {key: self.Xmat[i] for i, key in enumerate(threshold_keys)}
        self.T = np.full(n, np.inf)
        self.S = np.full(n, np.inf)
        self.dirty = np.ones(n, dtype=bool)
        self.pools: List[_ExpPool] = []
        self.upool: Optional[_UniformPool] = None
        self.down_until = np.zeros(n)
        self.done = np.zeros(n, dtype=bool)
        self.downtime = np.zeros(n)
        self.costs = {field: np.zeros(n) for field in COST_FIELDS}
        self.n_insp = np.zeros(n, dtype=np.int64)
        self.n_prev = np.zeros(n, dtype=np.int64)
        self.n_corr = np.zeros(n, dtype=np.int64)
        self.fail_rows: List[np.ndarray] = []
        self.fail_times: List[np.ndarray] = []
        self.path_t0 = {e: np.zeros(n) for e in rdep_targets}
        self.factor = {e: np.ones(n) for e in rdep_targets}


class VectorizedKernel:
    """Compiled lockstep sampler for one (tree, strategy, config).

    Construction compiles the simulator's static tables into numpy form
    (per-phase reciprocal-rate matrices, topologically ordered gate
    selection ops, RDEP dependency columns, the merged tick-epoch
    calendar); :meth:`simulate_chunk` then runs N trajectories per call
    using only the provided RNG.

    Raises
    ------
    SimulationError
        If the model is not vectorizable — callers are expected to
        check :func:`vectorized_fallback_reason` first.
    """

    def __init__(self, simulator: FMTSimulator):
        reason = vectorized_fallback_reason(simulator)
        if reason is not None:
            raise SimulationError(f"model is not vectorizable: {reason}")
        self.simulator = simulator
        self.horizon = simulator.config.horizon
        cost_model = simulator.config.cost_model
        self.discount_rate = cost_model.discount_rate
        self.downtime_per_year = cost_model.downtime_per_year
        self.system_failure_cost = cost_model.system_failure
        strategy = simulator.strategy
        self.absorbing = strategy.on_system_failure == "none"
        self.repair_time = strategy.system_repair_time
        self._compile_events(simulator)
        self._compile_gates(simulator)
        self._compile_rdeps(simulator)
        self._compile_calendar(simulator)

    # -- compilation ----------------------------------------------------
    def _compile_events(self, sim: FMTSimulator) -> None:
        self.names: List[str] = list(sim._events)
        self.index: Dict[str, int] = {
            name: e for e, name in enumerate(self.names)
        }
        self.n_events = len(self.names)
        self.K: List[int] = [sim._n_phases[name] for name in self.names]
        # inv_from[e][p] = the reciprocal rates of the remaining phases
        # p, p+1, ..., K-1, zero-padded: one row-indexed gather gives
        # the Erlang scale matrix for a whole batch of re-draws.
        self.inv_from: List[np.ndarray] = []
        for name in self.names:
            inv = np.asarray(sim._inv_rates[name])
            K = len(inv)
            table = np.zeros((K + 1, K))
            for p in range(K):
                table[p, : K - p] = inv[p:]
            self.inv_from.append(table)
        # Phase-0 scale rows, pre-sliced for the renewal fast path.
        self.inv0: List[np.ndarray] = [table[0] for table in self.inv_from]

    def _compile_gates(self, sim: FMTSimulator) -> None:
        tree = sim.tree
        slots = dict(self.index)
        ops: List[_GateOp] = []
        visiting: set = set()

        def visit(node) -> int:
            name = node.name
            if name in slots:
                return slots[name]
            visiting.add(name)
            children = tuple(visit(child) for child in node.children)
            visiting.discard(name)
            slot = self.n_events + len(ops)
            slots[name] = slot
            # isinstance dispatch mirrors the executor's threshold
            # derivation: PAND -> order-sensitive, VOT -> k, OR -> 1,
            # anything else (AND, inhibit) -> all children.
            if isinstance(node, PandGate):
                ops.append(_GateOp(slot, _GateOp.PAND, children))
            elif isinstance(node, VotingGate):
                if node.k == 1:
                    ops.append(_GateOp(slot, _GateOp.MIN, children))
                elif node.k == len(children):
                    ops.append(_GateOp(slot, _GateOp.MAX, children))
                else:
                    ops.append(_GateOp(slot, _GateOp.KTH, children, node.k))
            elif isinstance(node, OrGate):
                ops.append(_GateOp(slot, _GateOp.MIN, children))
            else:
                ops.append(_GateOp(slot, _GateOp.MAX, children))
            return slot

        self.top_slot = visit(tree.top)
        self.gate_ops = ops
        self.n_slots = self.n_events + len(ops)

    def _compile_rdeps(self, sim: FMTSimulator) -> None:
        # Per target event index: [(trigger event index, factor), ...].
        deps: Dict[int, List[Tuple[int, float]]] = {}
        for dep in sim.tree.dependencies:
            trig = self.index[dep.trigger]
            for target in dep.targets:
                deps.setdefault(self.index[target], []).append(
                    (trig, dep.factor)
                )
        self.rdep_deps = deps

    def _compile_calendar(self, sim: FMTSimulator) -> None:
        plans: Dict[float, List[Tuple[Tuple[int, int], _PlanCols]]] = {}
        groups = (
            (0, sim._repair_plans, False),  # repairs before inspections
            (1, sim._inspection_plans, True),  # (ties: engine priority)
        )
        for prio, plan_list, is_inspection in groups:
            for j, plan in enumerate(plan_list):
                cols = _PlanCols(
                    plan, self.index, sim._corrective_cost, is_inspection
                )
                # Tick times by repeated addition, exactly as the object
                # engine reschedules (now + period): the epochs of the
                # two paths are the same floats, so tick *counts* per
                # trajectory agree exactly.
                t = plan.offset
                while t <= self.horizon:
                    plans.setdefault(t, []).append(((prio, j), cols))
                    t += plan.period
        self.epochs: List[Tuple[float, List[_PlanCols], Optional[_FusedInspect]]] = [
            (t, [cols for _, cols in sorted(plans[t], key=lambda item: item[0])])
            for t in sorted(plans)
        ]  # fused descriptors appended below
        # Thresholds inspected per event: each (event, threshold) pair
        # gets a cached crossing-time column in the chunk state, so the
        # per-epoch condition check is one comparison instead of a
        # phase count over the whole jump matrix.
        thresholds: Dict[int, set] = {}
        for _, plan_list, is_inspection in groups:
            if not is_inspection:
                continue
            for plan in plan_list:
                for target, threshold in plan.targets:
                    thresholds.setdefault(self.index[target], set()).add(
                        threshold
                    )
        self.plan_thresholds: Dict[int, Tuple[int, ...]] = {
            e: tuple(sorted(ts)) for e, ts in thresholds.items()
        }
        self.threshold_keys: Tuple[Tuple[int, int], ...] = tuple(
            (e, thr)
            for e, ts in sorted(self.plan_thresholds.items())
            for thr in ts
        )
        # Compile each distinct plan line-up into a fused inspection
        # pass where eligible (every inspected event unique within the
        # epoch); the epochs of a periodic policy all share one line-up,
        # so the cache usually holds a single entry.
        fused_cache: Dict[Tuple[int, ...], Optional[_FusedInspect]] = {}
        epochs_fused = []
        for t, plan_list in self.epochs:
            key = tuple(id(cols) for cols in plan_list)
            if key not in fused_cache:
                fused_cache[key] = self._fuse_inspections(plan_list)
            epochs_fused.append((t, plan_list, fused_cache[key]))
        self.epochs = epochs_fused

    def _fuse_inspections(
        self, plan_list: List[_PlanCols]
    ) -> Optional[_FusedInspect]:
        insp = [p for p in plan_list if p.is_inspection]
        if not insp:
            return None
        seen: set = set()
        for p in insp:
            for e, _, _, _ in p.targets:
                if e in seen:
                    # Sequential semantics (a later plan sees the
                    # earlier plan's renewals of the same event) can't
                    # be precomputed in one scan; keep per-plan passes.
                    return None
                seen.add(e)
        xrow = {key: i for i, key in enumerate(self.threshold_keys)}
        targets = []
        tidx: List[int] = []
        xsel: List[int] = []
        cond_sel: List[int] = []
        for p in insp:
            renew = p.restore_phases is None
            for e, thr, action_cost, corrective_cost in p.targets:
                if thr < self.K[e]:
                    cond_pos: Optional[int] = len(xsel)
                    xsel.append(xrow[(e, thr)])
                    cond_sel.append(len(targets))
                else:
                    cond_pos = None
                targets.append(
                    (
                        e,
                        action_cost,
                        corrective_cost,
                        p.detection_probability,
                        p.detect_failures,
                        renew,
                        p.restore_phases,
                        cond_pos,
                    )
                )
                tidx.append(e)
        fe = _FusedInspect()
        fe.n_visits = len(insp)
        fe.visit_cost = sum(p.visit_cost for p in insp)
        fe.targets = tuple(targets)
        fe.tidx = np.asarray(tidx, dtype=np.intp)
        fe.xsel = np.asarray(xsel, dtype=np.intp)
        fe.cond_sel = np.asarray(cond_sel, dtype=np.intp)
        return fe

    # -- sampling primitives --------------------------------------------
    def _redraw(
        self,
        st: _ChunkState,
        e: int,
        rows: np.ndarray,
        t,
        phases: np.ndarray,
        factor: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Re-sample event ``e``'s remaining jump chain for ``rows``.

        ``t`` (scalar or per-row array) is the draw point, ``phases``
        the phase there (``None`` means phase 0 for every row — the
        renewal fast path), ``factor`` the acceleration in force
        (``None`` means no acceleration).  Sojourn of phase p at
        acceleration a is Exp(rate_p * a), realised as
        ``standard_exponential() * inv_rate_p / a`` — memorylessness
        makes re-drawing at any point distributionally exact.
        """
        K = self.K[e]
        m = len(rows)
        if type(t) is float:
            t_arr = base = t
        else:
            t_arr = np.asarray(t, dtype=float)
            base = t_arr[:, None] if t_arr.ndim else t_arr
        if phases is None:
            # Fast path: a chain re-drawn from phase 0 (renewals,
            # corrective replacements, restore-to-new actions — the
            # vast majority of re-draws).  No per-row scale gather, no
            # inf padding, plain column slices for F and the crossing
            # times.
            sojourns = st.pools[e].take(m) * self.inv0[e]
            if factor is not None:
                sojourns /= factor[:, None]
            jumps = sojourns.cumsum(axis=1, out=sojourns)
            jumps += base
            st.jumps[e][rows] = jumps
            st.p0[e][rows] = 0
            st.F[e][rows] = jumps[:, K - 1]
            st.dirty[rows] = True
            for thr in self.plan_thresholds.get(e, ()):
                st.X[(e, thr)][rows] = (
                    -np.inf if thr < 1 else jumps[:, thr - 1]
                )
        else:
            scales = self.inv_from[e][phases]
            sojourns = st.pools[e].take(m) * scales
            if factor is not None:
                sojourns /= factor[:, None]
            jumps = sojourns.cumsum(axis=1, out=sojourns)
            jumps += base
            remaining = K - phases
            # Pad the columns past the remaining phases with +inf —
            # leaving the zero-sojourn duplicates in place would
            # overcount phases in _phase_at.
            jumps[np.arange(K)[None, :] >= remaining[:, None]] = np.inf
            st.jumps[e][rows] = jumps
            st.p0[e][rows] = phases
            arange_m = np.arange(m)
            st.F[e][rows] = jumps[arange_m, remaining - 1]
            st.dirty[rows] = True
            for thr in self.plan_thresholds.get(e, ()):
                # Crossing time of the inspection threshold: the jump
                # into phase ``thr`` (column thr - p0 - 1 of the
                # chain), already -inf when the chain was drawn at or
                # past the threshold.
                rel = thr - phases - 1
                st.X[(e, thr)][rows] = np.where(
                    rel < 0, -np.inf, jumps[arange_m, np.maximum(rel, 0)]
                )
        if e in self.rdep_deps:
            st.path_t0[e][rows] = t_arr
            st.factor[e][rows] = 1.0 if factor is None else factor

    def _phase_at(self, st: _ChunkState, e: int, rows: np.ndarray, t) -> np.ndarray:
        """Degradation phase of event ``e`` at time ``t`` for ``rows``."""
        if type(t) is float:
            bound = t
        else:
            t_arr = np.asarray(t, dtype=float)
            bound = t_arr[:, None] if t_arr.ndim else t_arr
        return st.p0[e][rows] + np.count_nonzero(
            st.jumps[e][rows] <= bound, axis=1
        )

    def _current_factor(
        self, st: _ChunkState, e: int, rows: np.ndarray, t
    ) -> np.ndarray:
        """Acceleration of target ``e`` at time ``t``: the product over
        its dependencies whose trigger is failed (trigger failure times
        are the F column — triggers are pure basic events).

        ``rows`` may be ``None`` for the whole-column variant (used by
        the end-of-epoch reconciliation, where gathering ~every row
        costs more than the full columns)."""
        fac = None
        for trig, f in self.rdep_deps[e]:
            Ft = st.F[trig] if rows is None else st.F[trig][rows]
            term = np.where(Ft <= t, f, 1.0)
            fac = term if fac is None else fac * term
        return fac

    # -- cost mirrors ---------------------------------------------------
    def _discount(self, t: float) -> float:
        if self.discount_rate == 0.0:
            return 1.0
        return math.exp(-self.discount_rate * t)

    def _discount_arr(self, t: np.ndarray):
        if self.discount_rate == 0.0:
            return 1.0
        return np.exp(-self.discount_rate * t)

    def _downtime_cost(self, start, end):
        r = self.discount_rate
        if r == 0.0:
            return self.downtime_per_year * (np.asarray(end) - start)
        return (
            self.downtime_per_year
            * (np.exp(-r * np.asarray(start)) - np.exp(-r * np.asarray(end)))
            / r
        )

    # -- composition ----------------------------------------------------
    def _compose_top(
        self, st: _ChunkState, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """System failure time per row, given the current jump chains.

        Component slots carry the failure-time columns; each gate op
        selects from its children: OR = min, AND/inhibit = max, VOT(k)
        = k-th smallest, PAND = last child's failure time where the
        children's failure times are non-decreasing, else +inf.  All
        selections propagate *actual component failure times*, so a
        finite top value is the exact instant the object engine would
        raise the top event on the same chains.

        ``rows`` restricts the composition to a row subset (the dirty
        rows of the cached top column); every op is elementwise per
        row, so the subset result equals the full composition gathered
        at ``rows``.
        """
        vals: List[np.ndarray] = [None] * self.n_slots  # type: ignore[list-item]
        for e in range(self.n_events):
            vals[e] = st.F[e] if rows is None else st.F[e][rows]
        for op in self.gate_ops:
            children = [vals[c] for c in op.children]
            if op.kind == _GateOp.MIN:
                v = np.minimum.reduce(children)
            elif op.kind == _GateOp.MAX:
                v = np.maximum.reduce(children)
            elif op.kind == _GateOp.KTH:
                if op.k == 2 and len(children) == 4:
                    # Second smallest of four via pairwise min/max
                    # (e.g. the paper's 2-of-4 bolt vote): the second
                    # smallest is the smaller of the two pair maxima or
                    # the larger of the two pair minima — six
                    # elementwise ops, no stack/partition round-trip.
                    a, b, c, d = children
                    v = np.minimum(
                        np.maximum(np.minimum(a, b), np.minimum(c, d)),
                        np.minimum(np.maximum(a, b), np.maximum(c, d)),
                    )
                else:
                    v = np.partition(
                        np.stack(children), op.k - 1, axis=0
                    )[op.k - 1]
            else:  # PAND: non-decreasing order, fires at the last child
                ok = children[0] <= children[1]
                for a, b in zip(children[1:-1], children[2:]):
                    ok &= a <= b
                v = np.where(ok, children[-1], np.inf)
            vals[op.slot] = v
        return vals[self.top_slot]

    def _sync(self, st: _ChunkState) -> None:
        """Bring the cached top times (T) and earliest eligible switch
        candidates (S) of the dirty rows up to date.

        Re-draws and switch-point moves mark their rows dirty;
        everything else is unchanged since the last composition, so the
        gather/scatter subset pass touches tens of rows per wave
        instead of the whole chunk.  ``min(T, S)`` per row is then the
        exact next instant anything can happen to that row between
        epochs — the per-row next-event lower bound that lets
        ``_advance`` skip every row (often the whole chunk) with
        nothing pending before the next calendar tick.
        """
        n_dirty = int(np.count_nonzero(st.dirty))
        if not n_dirty:
            return
        if n_dirty == st.n:
            st.T = self._compose_top(st)
            self._candidates(st, None)
            st.dirty[:] = False
        else:
            rows = st.dirty.nonzero()[0]
            st.T[rows] = self._compose_top(st, rows)
            self._candidates(st, rows)
            st.dirty[rows] = False

    def _candidates(
        self, st: _ChunkState, rows: Optional[np.ndarray]
    ) -> None:
        """Earliest eligible RDEP switch candidate per row, into st.S.

        A candidate for a target is a trigger failure strictly after
        the target chain's switch point; st.S holds the earliest over
        all (target, trigger) pairs, +inf when none is pending.
        """
        if not self.rdep_deps:
            return
        m = st.n if rows is None else len(rows)
        S = np.full(m, np.inf)
        for tgt, deps in self.rdep_deps.items():
            t0 = st.path_t0[tgt] if rows is None else st.path_t0[tgt][rows]
            for trig, _ in deps:
                Ft = st.F[trig] if rows is None else st.F[trig][rows]
                np.minimum(S, np.where(Ft > t0, Ft, np.inf), out=S)
        if rows is None:
            st.S = S
        else:
            st.S[rows] = S

    # -- inter-epoch advancement ----------------------------------------
    def _apply_switches(
        self, st: _ChunkState, hot: np.ndarray, t1: float,
        rng: np.random.Generator,
    ) -> bool:
        """Apply each hot row's earliest pending RDEP rate switch.

        A switch candidate for a target is a trigger failure strictly
        after the target chain's draw point and no later than
        ``min(T, t1)`` — later triggers are preempted by the system
        failure at T (renewal re-draws everything) or belong to the
        next interval.  Only the earliest candidate per row is applied
        (simultaneously across targets sharing it); the caller then
        recomposes and calls again, which keeps the factor product
        exact when several triggers fail in sequence.  Everything is
        gathered at the ``hot`` row subset — rows without a pending
        event never enter the scan.

        Returns whether any switch was applied; the caller only
        commits failures on switch-free waves.
        """
        if not self.rdep_deps:
            return False
        bound = np.minimum(st.T[hot], t1)
        # S is the row-wise minimum over every (target, trigger)
        # candidate past its draw point, so S > bound everywhere means
        # no candidate can be eligible — skip the per-target scan (the
        # common case: most waves are commit-only).
        if not (st.S[hot] <= bound).any():
            return False
        taus: Dict[int, np.ndarray] = {}
        for tgt, deps in self.rdep_deps.items():
            cand = np.full(len(hot), np.inf)
            t0 = st.path_t0[tgt][hot]
            for trig, _ in deps:
                Ft = st.F[trig][hot]
                eligible = (Ft > t0) & (Ft <= bound)
                cand = np.where(eligible & (Ft < cand), Ft, cand)
            taus[tgt] = cand
        row_min = np.minimum.reduce(list(taus.values()))
        hit = np.isfinite(row_min)
        if not hit.any():
            return False
        for tgt, cand in taus.items():
            apply = hit & (cand == row_min)
            if not apply.any():
                continue
            idx = apply.nonzero()[0]
            rows = hot[idx]
            tau = row_min[idx]
            fac = self._current_factor(st, tgt, rows, tau)
            up = st.F[tgt][rows] > tau
            if up.any():
                up_rows = rows[up]
                phases = self._phase_at(st, tgt, up_rows, tau[up])
                self._redraw(st, tgt, up_rows, tau[up], phases, fac[up], rng)
            # Failed targets get no re-draw (no pending transition to
            # reschedule) but must still advance their switch point, or
            # the same trigger would be re-found forever.  The moved
            # switch point invalidates the cached S column.
            down_rows = rows[~up]
            if len(down_rows):
                st.path_t0[tgt][down_rows] = tau[~up]
                st.factor[tgt][down_rows] = fac[~up]
                st.dirty[down_rows] = True
        return True

    def _commit_failures(
        self, st: _ChunkState, hot: np.ndarray, t1: float,
        rng: np.random.Generator,
    ) -> bool:
        """Commit system failures at T <= t1 and apply the strategy's
        failure response (absorbing stop or corrective renewal)."""
        T_hot = st.T[hot]
        fail = T_hot <= t1
        if not fail.any():
            return False
        idx = fail.nonzero()[0]
        rows = hot[idx]
        tf = T_hot[idx]
        st.fail_rows.append(rows)
        st.fail_times.append(tf)
        st.costs["failures"][rows] += (
            self.system_failure_cost * self._discount_arr(tf)
        )
        if self.absorbing:
            st.done[rows] = True
            st.downtime[rows] += self.horizon - tf
            st.costs["downtime"][rows] += self._downtime_cost(tf, self.horizon)
            return True
        st.n_corr[rows] += 1
        du = tf + self.repair_time
        over = du > self.horizon
        over_rows = rows[over]
        if len(over_rows):
            # Repair completes past the horizon: the trajectory ends
            # down (the object path books this in _finalize).
            st.done[over_rows] = True
            st.downtime[over_rows] += self.horizon - tf[over]
            st.costs["downtime"][over_rows] += self._downtime_cost(
                tf[over], self.horizon
            )
        in_rows = rows[~over]
        if len(in_rows):
            du_in = du[~over]
            st.downtime[in_rows] += du_in - tf[~over]
            st.costs["downtime"][in_rows] += self._downtime_cost(
                tf[~over], du_in
            )
            st.down_until[in_rows] = du_in
            # Corrective renewal: the whole asset restarts as new.
            self._renew_all(st, in_rows, du_in, rng)
        return True

    def _renew_all(
        self,
        st: _ChunkState,
        rows: np.ndarray,
        t: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Renew every event's chain from phase 0 at per-row time ``t``
        — the corrective-renewal inner loop of ``_commit_failures``,
        with the per-event ``_redraw`` dispatch overhead (time
        broadcasting, dirty marking, branchwork) hoisted out of the
        loop.  Pool consumption order matches event-by-event
        ``_redraw`` calls exactly."""
        base = t[:, None]
        m = len(rows)
        for e in range(self.n_events):
            sojourns = st.pools[e].take(m) * self.inv0[e]
            jumps = sojourns.cumsum(axis=1, out=sojourns)
            jumps += base
            st.jumps[e][rows] = jumps
            st.p0[e][rows] = 0
            st.F[e][rows] = jumps[:, self.K[e] - 1]
            for thr in self.plan_thresholds.get(e, ()):
                st.X[(e, thr)][rows] = (
                    -np.inf if thr < 1 else jumps[:, thr - 1]
                )
        for e in self.rdep_deps:
            st.path_t0[e][rows] = t
            st.factor[e][rows] = 1.0
        st.dirty[rows] = True

    def _advance(
        self, st: _ChunkState, t1: float, rng: np.random.Generator
    ) -> None:
        """Run all rows forward until no event remains at or before
        ``t1``: alternate earliest-switch application and failure
        commits until the composed system failure times clear ``t1``.

        Per-row compaction: after syncing the dirty caches, the only
        rows that participate in a wave are the *hot* ones — rows whose
        cached top time or earliest switch candidate is at or before
        ``t1``.  On a maintained model only a handful of the chunk's
        rows are hot per interval, so every wave is three whole-column
        compares plus work proportional to the hot subset.

        Switches and failure commits alternate strictly — failures are
        only committed on waves where *no* row applied a switch — so a
        row's composed failure time is never consumed while another
        pending dependency switch could still reshape it.  Every wave
        with hot rows makes progress (a hot row either has an eligible
        switch at or before ``min(T, t1)`` or its composed top time is
        at or before ``t1``), and mutated rows re-enter the next wave
        with their caches re-synced.
        """
        for _ in range(_MAX_WAVE_ITERATIONS):
            self._sync(st)
            hot = (~st.done & ((st.T <= t1) | (st.S <= t1))).nonzero()[0]
            if not len(hot):
                return
            if self._apply_switches(st, hot, t1, rng):
                continue
            if not self._commit_failures(st, hot, t1, rng):
                return
        raise SimulationError(
            "vectorized kernel failed to converge advancing the chunk "
            f"to t={t1!r} (wave iteration cap exceeded)"
        )

    # -- epoch (tick) processing ----------------------------------------
    def _process_epoch(
        self,
        st: _ChunkState,
        t: float,
        plans: List[_PlanCols],
        fused: Optional[_FusedInspect],
        rng: np.random.Generator,
    ) -> None:
        # System restoration (priority 1) precedes repair/inspection
        # ticks at the same instant, so rows restored exactly at t are
        # active; rows still down skip the visit (the object handlers
        # return early but the tick itself was still scheduled).
        active = ~st.done & (st.down_until <= t)
        if not active.any():
            return
        disc = self._discount(t)
        if fused is not None:
            # Repairs (if any) keep their priority slot ahead of the
            # fused inspection pass.
            for plan in plans:
                if not plan.is_inspection:
                    self._repair(
                        st, t, plan, active, active.nonzero()[0], disc, rng
                    )
            self._inspect_fused(st, t, fused, active, disc, rng)
        else:
            act_rows = active.nonzero()[0]
            n_visits = 0
            for plan in plans:
                if plan.is_inspection:
                    n_visits += 1
                    self._inspect(st, t, plan, active, act_rows, disc, rng)
                else:
                    self._repair(st, t, plan, active, act_rows, disc, rng)
            if n_visits:
                # One masked add for all of the epoch's visits.
                st.n_insp += active if n_visits == 1 else n_visits * active
        # End-of-epoch RDEP reconciliation: replacements above may have
        # un-failed trigger components, decelerating their targets.  The
        # object engine reschedules the pending target transition at the
        # very instant the trigger flips; by memorylessness, re-drawing
        # the chain at the same instant t with the settled factor is
        # distributionally identical.
        for tgt in self.rdep_deps:
            fac = self._current_factor(st, tgt, None, t)
            changed = active & (fac != st.factor[tgt])
            if not changed.any():
                continue
            rows = changed.nonzero()[0]
            new_fac = fac[rows]
            up = st.F[tgt][rows] > t
            if up.any():
                up_rows = rows[up]
                phases = self._phase_at(st, tgt, up_rows, t)
                self._redraw(st, tgt, up_rows, t, phases, new_fac[up], rng)
            down_rows = rows[~up]
            if len(down_rows):
                st.factor[tgt][down_rows] = new_fac[~up]
                st.path_t0[tgt][down_rows] = t
                # path_t0 moved, so the cached earliest-eligible-switch
                # candidate for these rows is stale (up rows were
                # already marked dirty by the re-draw above).
                st.dirty[down_rows] = True

    def _inspect(
        self,
        st: _ChunkState,
        t: float,
        plan: _PlanCols,
        active: np.ndarray,
        act_rows: np.ndarray,
        disc: float,
        rng: np.random.Generator,
    ) -> None:
        # Whole-column masked adds: x + 0.0 == x for the inactive rows
        # (costs are finite and non-negative), and the active rows see
        # the exact same addition as a fancy-indexed scatter — without
        # the gather/scatter index machinery.  (n_insp is booked once
        # per epoch by _process_epoch.)
        if plan.visit_cost != 0.0:
            st.costs["inspections"] += (plan.visit_cost * disc) * active
        dp = plan.detection_probability
        renew = plan.restore_phases is None
        for e, threshold, action_cost, corrective_cost in plan.targets:
            failed = active & (st.F[e] <= t)
            frows = None
            if plan.detect_failures and failed.any():
                frows = failed.nonzero()[0]
                st.costs["corrective"][frows] += corrective_cost * disc
                st.n_corr[frows] += 1
            rows = None
            if threshold < self.K[e]:
                # Condition check against the cached crossing-time
                # column: phase(t) >= threshold iff the chain crossed
                # by t.  Only the (typically few) crossed rows are
                # gathered; everyone else costs one boolean column op
                # instead of a phase count over the whole jump matrix.
                # (threshold == K means crossing *is* failing, so the
                # preventive branch can never fire on an unfailed row
                # and the scan is skipped outright.)
                rows = (
                    active & ~failed & (st.X[(e, threshold)] <= t)
                ).nonzero()[0]
                if len(rows) and dp < 1.0:
                    # Object draw: a visit *misses* when random() >=
                    # dp.  Uniforms are consumed only for rows past the
                    # threshold — independent draws, so
                    # distributionally identical to rolling for every
                    # candidate.
                    rows = rows[st.upool.take(len(rows)) < dp]
                if len(rows):
                    st.costs["preventive"][rows] += action_cost * disc
                    st.n_prev[rows] += 1
                else:
                    rows = None
            if renew:
                # Corrective replacement and a restore-to-new action
                # both re-draw from phase 0 at the same instant — fuse
                # them into one re-draw over the union (the pool is
                # consumed row-contiguously either way).
                if frows is None:
                    merged = rows
                elif rows is None:
                    merged = frows
                else:
                    merged = np.concatenate((frows, rows))
                if merged is not None:
                    fac = self._current_factor_or_none(st, e, merged, t)
                    self._redraw(st, e, merged, t, None, fac, rng)
            else:
                if frows is not None:
                    fac = self._current_factor_or_none(st, e, frows, t)
                    self._redraw(st, e, frows, t, None, fac, rng)
                if rows is not None:
                    self._apply_action(
                        st, e, rows, t, None, plan.restore_phases, rng
                    )

    def _inspect_fused(
        self,
        st: _ChunkState,
        t: float,
        fe: _FusedInspect,
        active: np.ndarray,
        disc: float,
        rng: np.random.Generator,
    ) -> None:
        """All of one epoch's inspection plans in a single pass.

        The per-target failed scans collapse into one stacked 2-D
        comparison over the inspected events' F rows, the condition
        checks into one over their crossing-time rows — ~4 matrix ops
        per epoch instead of ~5 column ops per target.  Per-target
        gathers, cost scatters and re-draws then run only for targets
        whose row-wise ``any`` fired, in the same order as the
        sequential plan loop (so the RNG pools are consumed
        identically)."""
        st.n_insp += active if fe.n_visits == 1 else fe.n_visits * active
        if fe.visit_cost != 0.0:
            st.costs["inspections"] += (fe.visit_cost * disc) * active
        failed_mat = st.F[fe.tidx] <= t
        failed_mat &= active
        any_failed = failed_mat.any(axis=1)
        if len(fe.xsel):
            crossed_mat = st.Xmat[fe.xsel] <= t
            crossed_mat &= active
            crossed_mat &= ~failed_mat[fe.cond_sel]
            any_crossed = crossed_mat.any(axis=1)
        for j, (
            e,
            action_cost,
            corrective_cost,
            dp,
            detect,
            renew,
            restore_phases,
            cond_pos,
        ) in enumerate(fe.targets):
            frows = None
            if detect and any_failed[j]:
                frows = failed_mat[j].nonzero()[0]
                st.costs["corrective"][frows] += corrective_cost * disc
                st.n_corr[frows] += 1
            rows = None
            if cond_pos is not None and any_crossed[cond_pos]:
                rows = crossed_mat[cond_pos].nonzero()[0]
                if dp < 1.0:
                    rows = rows[st.upool.take(len(rows)) < dp]
                if len(rows):
                    st.costs["preventive"][rows] += action_cost * disc
                    st.n_prev[rows] += 1
                else:
                    rows = None
            if renew:
                if frows is None:
                    merged = rows
                elif rows is None:
                    merged = frows
                else:
                    merged = np.concatenate((frows, rows))
                if merged is not None:
                    fac = self._current_factor_or_none(st, e, merged, t)
                    self._redraw(st, e, merged, t, None, fac, rng)
            else:
                if frows is not None:
                    fac = self._current_factor_or_none(st, e, frows, t)
                    self._redraw(st, e, frows, t, None, fac, rng)
                if rows is not None:
                    self._apply_action(
                        st, e, rows, t, None, restore_phases, rng
                    )

    def _repair(
        self,
        st: _ChunkState,
        t: float,
        plan: _PlanCols,
        active: np.ndarray,
        act_rows: np.ndarray,
        disc: float,
        rng: np.random.Generator,
    ) -> None:
        # Time-based repairs apply the action to every target regardless
        # of condition — including failed ones, which come back at
        # phase K - restore_phases (restore_phases >= 1, so always < K).
        for e, _, action_cost, _ in plan.targets:
            st.costs["preventive"] += (action_cost * disc) * active
            st.n_prev += active
            self._apply_action(
                st, e, act_rows, t, None, plan.restore_phases, rng
            )

    def _apply_action(
        self,
        st: _ChunkState,
        e: int,
        rows: np.ndarray,
        t: float,
        phases: Optional[np.ndarray],
        restore_phases: Optional[int],
        rng: np.random.Generator,
    ) -> None:
        """Mirror of _perform_action: restore the phase, re-draw the
        chain from ``t``.  The object engine re-draws the pending jump
        even when the phase is numerically unchanged (_set_phase always
        cancels and reschedules), so an unconditional re-draw matches.
        ``phases`` may be None — a full renewal (restore_phases None)
        never needs them, so callers skip the phase count entirely."""
        if restore_phases is None:
            new_phases = None
        else:
            if phases is None:
                phases = self._phase_at(st, e, rows, t)
            new_phases = np.maximum(phases - restore_phases, 0)
        fac = self._current_factor_or_none(st, e, rows, t)
        self._redraw(st, e, rows, t, new_phases, fac, rng)

    def _current_factor_or_none(
        self, st: _ChunkState, e: int, rows: np.ndarray, t
    ) -> Optional[np.ndarray]:
        """Acceleration factor for RDEP targets, else ``None`` — the
        ``_redraw`` fast path skips the division by an all-ones column."""
        if e in self.rdep_deps:
            return self._current_factor(st, e, rows, t)
        return None

    # -- chunk driver ---------------------------------------------------
    def simulate_chunk(
        self,
        n: int,
        rng: np.random.Generator,
        progress: Optional[Callable[[float], None]] = None,
    ) -> TrajectoryBatch:
        """Simulate ``n`` trajectories in lockstep; returns their batch.

        ``progress``, when given, is called with the fraction of the
        calendar processed after every epoch (and once with 1.0 at the
        end).  It must not touch the RNG; the kernel's results are
        bit-identical with or without a callback.
        """
        st = _ChunkState(
            n, self.n_events, tuple(self.rdep_deps), self.threshold_keys
        )
        st.pools = [_ExpPool(rng, self.K[e], n) for e in range(self.n_events)]
        st.upool = _UniformPool(rng)
        all_rows = np.arange(n)
        for e in range(self.n_events):
            st.jumps[e] = np.empty((n, self.K[e]))
            st.p0[e] = np.zeros(n, dtype=np.int64)
            self._redraw(st, e, all_rows, 0.0, None, None, rng)
        n_steps = len(self.epochs) + 1
        for i, (t, plans, fused) in enumerate(self.epochs):
            self._advance(st, t, rng)
            self._process_epoch(st, t, plans, fused, rng)
            if progress is not None:
                progress((i + 1) / n_steps)
        self._advance(st, self.horizon, rng)
        if progress is not None:
            progress(1.0)
        return self._build_batch(st)

    def _build_batch(self, st: _ChunkState) -> TrajectoryBatch:
        n = st.n
        if st.fail_rows:
            rows = np.concatenate(st.fail_rows)
            times = np.concatenate(st.fail_times)
            # Stable sort: appends are chronological per row, so the
            # per-trajectory failure-time slices come out ordered.
            order = np.argsort(rows, kind="stable")
            times = times[order]
            counts = np.bincount(rows, minlength=n)
        else:
            times = np.empty(0)
            counts = np.zeros(n, dtype=np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return TrajectoryBatch(
            horizon=self.horizon,
            failure_times=times,
            failure_offsets=offsets,
            downtime=st.downtime,
            costs=st.costs,
            n_inspections=st.n_insp,
            n_preventive_actions=st.n_prev,
            n_corrective_replacements=st.n_corr,
        )


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------
def iter_vectorized_batches(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    chunk_size: Optional[int] = None,
) -> Iterator[TrajectoryBatch]:
    """Yield one :class:`TrajectoryBatch` per lockstep chunk of seeds.

    Non-vectorizable models transparently run each seed through the
    object engine instead (bit-identical to ``kernel="object"``); fully
    vectorizable models derive each chunk's RNG from a child of the
    chunk's first seed, so results are deterministic for a fixed chunk
    layout but not bit-comparable with the object path.  ``chunk_size``
    defaults to the simulator's configured ``chunk_trajectories``.
    """
    n_total = len(seeds)
    if n_total == 0:
        return
    if chunk_size is None:
        chunk_size = simulator.config.chunk_trajectories
    instr = simulator.config.instrumentation
    if instr is None:
        instr = _obs.current()
    reason = vectorized_fallback_reason(simulator)
    kernel = None if reason is not None else VectorizedKernel(simulator)
    for start in range(0, n_total, chunk_size):
        chunk = seeds[start : start + chunk_size]
        if kernel is None:
            accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
            for seed in chunk:
                accumulator.add(simulator.simulate(np.random.default_rng(seed)))
            batch = accumulator.finalize()
        else:
            rng = np.random.default_rng(chunk[0].spawn(1)[0])
            batch = kernel.simulate_chunk(len(chunk), rng)
            if instr is not None:
                instr.count(_obs.SIM_TRAJECTORIES, len(chunk))
        yield batch


def simulate_batch_columns_vectorized(
    simulator: FMTSimulator,
    seeds: Sequence[np.random.SeedSequence],
    chunk_size: Optional[int] = None,
) -> TrajectoryBatch:
    """Columnar results for ``seeds`` via the lockstep kernel.

    Drop-in counterpart of
    :func:`repro.simulation.parallel.simulate_batch_columns` for
    ``SimulationConfig(kernel="vectorized")`` simulators.
    """
    accumulator = TrajectoryAccumulator(horizon=simulator.config.horizon)
    for batch in iter_vectorized_batches(simulator, seeds, chunk_size):
        accumulator.add_batch(batch)
    return accumulator.finalize()
