"""KPI estimators over collections of simulated trajectories.

:func:`summarize` turns raw :class:`~repro.simulation.trace.Trajectory`
records into the key performance indicators the paper analyses —
unreliability, expected number of failures, availability, and the
annual cost breakdown — each with a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown
from repro.simulation.trace import Trajectory
from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    wilson_interval,
)

__all__ = [
    "KpiSummary",
    "summarize",
    "reliability_curve",
    "availability_curve",
]


@dataclass(frozen=True)
class KpiSummary:
    """Point estimates + confidence intervals of the standard KPIs.

    All trajectory-averaged quantities refer to the simulation horizon;
    per-year figures are annualised by dividing by the horizon.
    """

    n_runs: int
    horizon: float
    #: P(at least one system failure within the horizon).
    unreliability: ConfidenceInterval
    #: Expected number of system failures within the horizon.
    expected_failures: ConfidenceInterval
    #: Expected number of system failures per year.
    failures_per_year: ConfidenceInterval
    #: Long-run fraction of time the system is up.
    availability: ConfidenceInterval
    #: Expected total cost per year.
    cost_per_year: ConfidenceInterval
    #: Mean annual cost split by category.
    cost_breakdown_per_year: CostBreakdown
    #: Mean inspections per year actually performed.
    inspections_per_year: float
    #: Mean preventive maintenance actions per year.
    preventive_actions_per_year: float
    #: Mean corrective replacements per year.
    corrective_replacements_per_year: float

    @property
    def reliability(self) -> float:
        """Convenience: 1 - unreliability point estimate."""
        return 1.0 - self.unreliability.estimate

    @property
    def mean_failures(self) -> float:
        """Convenience: point estimate of expected failures in horizon."""
        return self.expected_failures.estimate


def summarize(
    trajectories: Sequence[Trajectory], confidence: float = 0.95
) -> KpiSummary:
    """Aggregate trajectories into a :class:`KpiSummary`.

    Raises
    ------
    ValidationError
        If ``trajectories`` is empty or horizons are inconsistent.
    """
    if not trajectories:
        raise ValidationError("summarize() needs at least one trajectory")
    horizon = trajectories[0].horizon
    if any(t.horizon != horizon for t in trajectories):
        raise ValidationError("trajectories have inconsistent horizons")
    n = len(trajectories)

    failures = [float(t.n_failures) for t in trajectories]
    failed = sum(1 for t in trajectories if t.failed_by_horizon)
    availabilities = [t.availability for t in trajectories]
    totals = [t.costs.total for t in trajectories]

    if failed == 0:
        # No failures observed: the t-interval degenerates to zero
        # width at 0, claiming a certainty the data cannot support.
        # Fall back to the Wilson zero-success upper bound on the
        # failure indicator, which is exact for the mean as long as
        # multiple failures per trajectory are (as here, unobserved)
        # rare.
        upper = wilson_interval(0, n, confidence).upper
        expected_failures = ConfidenceInterval(0.0, 0.0, upper, confidence)
    else:
        expected_failures = mean_confidence_interval(failures, confidence)
    failures_per_year = ConfidenceInterval(
        expected_failures.estimate / horizon,
        expected_failures.lower / horizon,
        expected_failures.upper / horizon,
        confidence,
    )
    cost_total = mean_confidence_interval(totals, confidence)
    cost_per_year = ConfidenceInterval(
        cost_total.estimate / horizon,
        cost_total.lower / horizon,
        cost_total.upper / horizon,
        confidence,
    )

    mean_costs = CostBreakdown()
    for t in trajectories:
        mean_costs.add(t.costs)
    mean_costs = mean_costs.scaled(1.0 / n).per_year(horizon)

    return KpiSummary(
        n_runs=n,
        horizon=horizon,
        unreliability=wilson_interval(failed, n, confidence),
        expected_failures=expected_failures,
        failures_per_year=failures_per_year,
        availability=mean_confidence_interval(availabilities, confidence),
        cost_per_year=cost_per_year,
        cost_breakdown_per_year=mean_costs,
        inspections_per_year=_mean(trajectories, "n_inspections") / horizon,
        preventive_actions_per_year=_mean(trajectories, "n_preventive_actions")
        / horizon,
        corrective_replacements_per_year=_mean(
            trajectories, "n_corrective_replacements"
        )
        / horizon,
    )


def reliability_curve(
    trajectories: Sequence[Trajectory],
    times: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[np.ndarray, list]:
    """Empirical survival (reliability) curve over a time grid.

    Returns
    -------
    (times, intervals):
        ``times`` as an array and one Wilson
        :class:`~repro.stats.confidence.ConfidenceInterval` of the
        survival probability per grid point.
    """
    if not trajectories:
        raise ValidationError("reliability_curve() needs at least one trajectory")
    grid = np.asarray(list(times), dtype=float)
    horizon = trajectories[0].horizon
    if any(t.horizon != horizon for t in trajectories):
        raise ValidationError("trajectories have inconsistent horizons")
    if np.any(grid < 0.0) or np.any(grid > horizon):
        raise ValidationError("time grid must lie within [0, horizon]")
    first_failures = np.array(
        [
            t.first_failure if t.first_failure is not None else np.inf
            for t in trajectories
        ]
    )
    n = len(trajectories)
    intervals = []
    for t in grid:
        survived = int(np.sum(first_failures > t))
        intervals.append(wilson_interval(survived, n, confidence))
    return grid, intervals


def availability_curve(
    trajectories: Sequence[Trajectory],
    times: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[np.ndarray, list]:
    """Point availability A(t) = P(system up at t) over a time grid.

    Requires trajectories simulated with ``record_events=True`` (down
    intervals are reconstructed from the ``system_failure`` /
    ``system_restored`` event pairs).

    Returns
    -------
    (times, intervals):
        One Wilson interval of the up-probability per grid point.
    """
    if not trajectories:
        raise ValidationError("availability_curve() needs trajectories")
    grid = np.asarray(list(times), dtype=float)
    horizon = trajectories[0].horizon
    if any(t.horizon != horizon for t in trajectories):
        raise ValidationError("trajectories have inconsistent horizons")
    if np.any(grid < 0.0) or np.any(grid > horizon):
        raise ValidationError("time grid must lie within [0, horizon]")

    down_intervals = []
    for trajectory in trajectories:
        if trajectory.failure_times and not trajectory.events:
            raise ValidationError(
                "availability_curve() needs record_events=True "
                "(down intervals are reconstructed from events)"
            )
        intervals = []
        down_since = None
        for event in trajectory.events:
            if event.kind == "system_failure" and down_since is None:
                down_since = event.time
            elif event.kind == "system_restored" and down_since is not None:
                intervals.append((down_since, event.time))
                down_since = None
        if down_since is not None:
            # Still down when observation ends: the interval is
            # right-censored, not closed at the horizon.  An open end
            # keeps the half-open membership test below truthful at
            # t == horizon (a closed end would count the system as
            # restored at the very last grid point).
            intervals.append((down_since, np.inf))
        down_intervals.append(intervals)

    n = len(trajectories)
    results = []
    for t in grid:
        up = sum(
            1
            for intervals in down_intervals
            if not any(start <= t < end for start, end in intervals)
        )
        results.append(wilson_interval(up, n, confidence))
    return grid, results


def _mean(trajectories: Sequence[Trajectory], attribute: str) -> float:
    return sum(getattr(t, attribute) for t in trajectories) / len(trajectories)
