"""KPI estimators over collections of simulated trajectories.

:func:`summarize` turns raw :class:`~repro.simulation.trace.Trajectory`
records into the key performance indicators the paper analyses —
unreliability, expected number of failures, availability, and the
annual cost breakdown — each with a confidence interval.

Every estimator here accepts either a ``Sequence[Trajectory]`` or a
:class:`~repro.simulation.batch.TrajectoryBatch`; object sequences are
converted to a batch in a single pass and all arithmetic runs
vectorized over the columns.  The reductions keep the historical
left-to-right floating-point summation order (``np.cumsum``-based
sequential sums, elementwise numpy IEEE-754 ops), so the numbers are
**bit-identical** to the original per-object implementation — the
golden KPI fixtures and the batch-vs-object property tests pin this
with exact ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown
from repro.simulation.batch import COST_FIELDS, TrajectoryBatch
from repro.simulation.trace import Trajectory
from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    wilson_interval,
)

__all__ = [
    "KpiSummary",
    "summarize",
    "reliability_curve",
    "availability_curve",
]

#: Either representation of a replicated study's raw material.
Trajectories = Union[Sequence[Trajectory], TrajectoryBatch]


@dataclass(frozen=True)
class KpiSummary:
    """Point estimates + confidence intervals of the standard KPIs.

    All trajectory-averaged quantities refer to the simulation horizon;
    per-year figures are annualised by dividing by the horizon.
    """

    n_runs: int
    horizon: float
    #: P(at least one system failure within the horizon).
    unreliability: ConfidenceInterval
    #: Expected number of system failures within the horizon.
    expected_failures: ConfidenceInterval
    #: Expected number of system failures per year.
    failures_per_year: ConfidenceInterval
    #: Long-run fraction of time the system is up.
    availability: ConfidenceInterval
    #: Expected total cost per year.
    cost_per_year: ConfidenceInterval
    #: Mean annual cost split by category.
    cost_breakdown_per_year: CostBreakdown
    #: Mean inspections per year actually performed.
    inspections_per_year: float
    #: Mean preventive maintenance actions per year.
    preventive_actions_per_year: float
    #: Mean corrective replacements per year.
    corrective_replacements_per_year: float

    @property
    def reliability(self) -> float:
        """Convenience: 1 - unreliability point estimate."""
        return 1.0 - self.unreliability.estimate

    @property
    def mean_failures(self) -> float:
        """Convenience: point estimate of expected failures in horizon."""
        return self.expected_failures.estimate


def _as_batch(trajectories: Trajectories, estimator: str) -> TrajectoryBatch:
    """Normalize either representation to a non-empty batch."""
    if isinstance(trajectories, TrajectoryBatch):
        if len(trajectories) == 0:
            raise ValidationError(
                f"{estimator}() needs at least one trajectory"
            )
        return trajectories
    if not trajectories:
        raise ValidationError(f"{estimator}() needs at least one trajectory")
    # Single pass over the objects; horizon consistency is validated by
    # the conversion itself.
    return TrajectoryBatch.from_trajectories(trajectories)


def _seq_sum(values: np.ndarray) -> float:
    """Strict left-to-right float64 sum (bit-identical to ``sum()``)."""
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def summarize(
    trajectories: Trajectories, confidence: float = 0.95
) -> KpiSummary:
    """Aggregate trajectories (or a batch of them) into a :class:`KpiSummary`.

    Raises
    ------
    ValidationError
        If ``trajectories`` is empty or horizons are inconsistent.
    """
    batch = _as_batch(trajectories, "summarize")
    n = len(batch)
    horizon = batch.horizon

    n_failures = batch.n_failures
    failed = int(np.count_nonzero(n_failures))

    if failed == 0:
        # No failures observed: the t-interval degenerates to zero
        # width at 0, claiming a certainty the data cannot support.
        # Fall back to the Wilson zero-success upper bound on the
        # failure indicator, which is exact for the mean as long as
        # multiple failures per trajectory are (as here, unobserved)
        # rare.
        upper = wilson_interval(0, n, confidence).upper
        expected_failures = ConfidenceInterval(0.0, 0.0, upper, confidence)
    else:
        expected_failures = mean_confidence_interval(
            n_failures.astype(np.float64), confidence
        )
    failures_per_year = ConfidenceInterval(
        expected_failures.estimate / horizon,
        expected_failures.lower / horizon,
        expected_failures.upper / horizon,
        confidence,
    )
    cost_total = mean_confidence_interval(batch.cost_total, confidence)
    cost_per_year = ConfidenceInterval(
        cost_total.estimate / horizon,
        cost_total.lower / horizon,
        cost_total.upper / horizon,
        confidence,
    )

    # Mean annual breakdown: sum each category column, then apply the
    # same two scale factors (1/n, then 1/horizon) the object path
    # applied via CostBreakdown.scaled().per_year().
    per_run = 1.0 / n
    per_year = 1.0 / horizon
    mean_costs = CostBreakdown(
        **{
            field: (_seq_sum(batch.costs[field]) * per_run) * per_year
            for field in COST_FIELDS
        }
    )

    return KpiSummary(
        n_runs=n,
        horizon=horizon,
        unreliability=wilson_interval(failed, n, confidence),
        expected_failures=expected_failures,
        failures_per_year=failures_per_year,
        availability=mean_confidence_interval(batch.availability, confidence),
        cost_per_year=cost_per_year,
        cost_breakdown_per_year=mean_costs,
        inspections_per_year=_count_mean(batch.n_inspections, n) / horizon,
        preventive_actions_per_year=_count_mean(batch.n_preventive_actions, n)
        / horizon,
        corrective_replacements_per_year=_count_mean(
            batch.n_corrective_replacements, n
        )
        / horizon,
    )


def _count_mean(column: np.ndarray, n: int) -> float:
    """Mean of an integer counter column (integer sums are exact)."""
    return int(np.sum(column)) / n


def _validate_grid(grid: np.ndarray, horizon: float) -> None:
    if np.any(grid < 0.0) or np.any(grid > horizon):
        raise ValidationError("time grid must lie within [0, horizon]")


def reliability_curve(
    trajectories: Trajectories,
    times: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[np.ndarray, list]:
    """Empirical survival (reliability) curve over a time grid.

    The survivor counts come from one sort of the first-failure column
    plus a vectorized ``searchsorted`` over the grid — O((n + m) log n)
    instead of the historical O(n·m) per-grid-point scan — and are
    exactly the counts the scan produced.

    Returns
    -------
    (times, intervals):
        ``times`` as an array and one Wilson
        :class:`~repro.stats.confidence.ConfidenceInterval` of the
        survival probability per grid point.
    """
    if isinstance(trajectories, TrajectoryBatch):
        if len(trajectories) == 0:
            raise ValidationError(
                "reliability_curve() needs at least one trajectory"
            )
        horizon = trajectories.horizon
        first_failure = trajectories.first_failure
    else:
        if not trajectories:
            raise ValidationError(
                "reliability_curve() needs at least one trajectory"
            )
        horizon = trajectories[0].horizon
        if any(t.horizon != horizon for t in trajectories):
            raise ValidationError("trajectories have inconsistent horizons")
        first_failure = np.fromiter(
            (
                t.failure_times[0] if t.failure_times else np.inf
                for t in trajectories
            ),
            dtype=np.float64,
            count=len(trajectories),
        )
    grid = np.asarray(list(times), dtype=float)
    _validate_grid(grid, horizon)
    n = len(first_failure)
    ordered = np.sort(first_failure)
    # searchsorted(side="right") counts values <= t; survivors are the
    # rest (first_failure > t), matching the historical comparison.
    survivors = n - np.searchsorted(ordered, grid, side="right")
    intervals = [
        wilson_interval(int(survived), n, confidence) for survived in survivors
    ]
    return grid, intervals


def availability_curve(
    trajectories: Sequence[Trajectory],
    times: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[np.ndarray, list]:
    """Point availability A(t) = P(system up at t) over a time grid.

    Requires trajectories simulated with ``record_events=True`` (down
    intervals are reconstructed from the ``system_failure`` /
    ``system_restored`` event pairs).  Trajectories that carry an
    explicit ``events_recorded=False`` marker — including everything
    simulated with ``record_events=False`` and batch round-trips — are
    rejected outright; for hand-built records without the marker the
    check falls back to inferring it from failures without events.

    Returns
    -------
    (times, intervals):
        One Wilson interval of the up-probability per grid point.
    """
    if isinstance(trajectories, TrajectoryBatch):
        raise ValidationError(
            "availability_curve() needs Trajectory objects with recorded "
            "events; a TrajectoryBatch does not carry the event stream"
        )
    if not trajectories:
        raise ValidationError("availability_curve() needs trajectories")
    grid = np.asarray(list(times), dtype=float)
    horizon = trajectories[0].horizon
    if any(t.horizon != horizon for t in trajectories):
        raise ValidationError("trajectories have inconsistent horizons")
    _validate_grid(grid, horizon)

    starts = []
    ends = []
    for trajectory in trajectories:
        recorded = getattr(trajectory, "events_recorded", None)
        if recorded is False or (
            recorded is None and trajectory.failure_times and not trajectory.events
        ):
            raise ValidationError(
                "availability_curve() needs record_events=True "
                "(down intervals are reconstructed from events)"
            )
        down_since = None
        for event in trajectory.events:
            if event.kind == "system_failure" and down_since is None:
                down_since = event.time
            elif event.kind == "system_restored" and down_since is not None:
                starts.append(down_since)
                ends.append(event.time)
                down_since = None
        if down_since is not None:
            # Still down when observation ends: the interval is
            # right-censored, not closed at the horizon.  An open end
            # keeps the half-open membership test below truthful at
            # t == horizon (a closed end would count the system as
            # restored at the very last grid point).
            starts.append(down_since)
            ends.append(np.inf)

    n = len(trajectories)
    # Down intervals of one trajectory never overlap (failure and
    # restoration strictly alternate), so the number of intervals
    # covering t equals the number of down trajectories.  With sorted
    # endpoints that count is #{start <= t} - #{end <= t} — membership
    # is half-open (start <= t < end), so both ranks use side="right".
    # Two searchsorted passes over the whole grid replace the per-point
    # mask scan with identical integer counts.
    start_arr = np.sort(np.asarray(starts, dtype=float))
    end_arr = np.sort(np.asarray(ends, dtype=float))
    down_counts = np.searchsorted(
        start_arr, grid, side="right"
    ) - np.searchsorted(end_arr, grid, side="right")
    return grid, [
        wilson_interval(n - int(down), n, confidence) for down in down_counts
    ]
