"""Differential validation of the vectorized kernel against the object engine.

The object engine (:mod:`repro.simulation.executor`) is the correctness
oracle: every semantic detail — phase-type sampling, RDEP acceleration,
inspection thresholds, renewal, cost discounting — is implemented once
there, in readable per-trajectory form, and pinned by golden fixtures.
The lockstep kernel (:mod:`repro.simulation.vectorized`) draws the same
distributions in a different order, so its trajectories cannot be
compared seed-for-seed; what must hold is *distributional* equivalence:

* the empirical distributions of the per-trajectory first-failure time
  and total cost are indistinguishable (two-sample Kolmogorov–Smirnov
  test at a configurable significance level);
* every headline KPI interval of one kernel overlaps the other's
  (unreliability, failures/year, availability, cost/year).

:func:`compare_kernels` runs both kernels from the same root seed and
packages the evidence in a :class:`KernelComparisonReport`; the test
suite and the CI parity smoke call it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.simulation.metrics import KpiSummary, summarize
from repro.stats.confidence import ConfidenceInterval

__all__ = ["KernelComparisonReport", "KsResult", "compare_kernels", "intervals_overlap"]

#: Fewer finite samples than this on either side and the KS test is
#: skipped (recorded as None): the asymptotic p-value is meaningless and
#: the CI-overlap checks already cover the censoring proportion.
MIN_KS_SAMPLES = 5


@dataclass(frozen=True)
class KsResult:
    """One two-sample Kolmogorov–Smirnov comparison."""

    column: str
    statistic: float
    pvalue: float
    n_object: int
    n_vectorized: int

    def passed(self, alpha: float) -> bool:
        return self.pvalue >= alpha


@dataclass(frozen=True)
class KernelComparisonReport:
    """Evidence that the two kernels agree distributionally.

    ``passed`` is the conjunction of every KS test clearing ``alpha``
    and every KPI interval pair overlapping.  ``fallback_reason`` is
    non-None when the model routes the vectorized path through the
    object engine anyway — the comparison then degenerates to
    object-vs-object and ``passed`` is trivially informative only about
    the plumbing.
    """

    n_runs: int
    seed: int
    alpha: float
    fallback_reason: Optional[str]
    ks: Tuple[KsResult, ...]
    kpi_overlap: Dict[str, bool]
    object_summary: KpiSummary
    vectorized_summary: KpiSummary
    passed: bool

    def describe(self) -> str:
        """Human-readable one-paragraph verdict (for CI logs)."""
        lines = [
            f"kernel differential: n={self.n_runs} seed={self.seed} "
            f"alpha={self.alpha:g} -> {'PASS' if self.passed else 'FAIL'}"
        ]
        if self.fallback_reason is not None:
            lines.append(f"  (vectorized fell back: {self.fallback_reason})")
        for result in self.ks:
            lines.append(
                f"  ks[{result.column}]: D={result.statistic:.4f} "
                f"p={result.pvalue:.4g} "
                f"({result.n_object}/{result.n_vectorized} samples)"
            )
        for name, overlap in sorted(self.kpi_overlap.items()):
            lines.append(f"  ci[{name}]: {'overlap' if overlap else 'DISJOINT'}")
        return "\n".join(lines)


def intervals_overlap(a: ConfidenceInterval, b: ConfidenceInterval) -> bool:
    """Whether two confidence intervals share at least one point."""
    return a.lower <= b.upper and b.lower <= a.upper


def _ks(column: str, left: np.ndarray, right: np.ndarray) -> Optional[KsResult]:
    left = left[np.isfinite(left)]
    right = right[np.isfinite(right)]
    if len(left) < MIN_KS_SAMPLES or len(right) < MIN_KS_SAMPLES:
        return None
    from scipy.stats import ks_2samp

    outcome = ks_2samp(left, right)
    return KsResult(
        column=column,
        statistic=float(outcome.statistic),
        pvalue=float(outcome.pvalue),
        n_object=len(left),
        n_vectorized=len(right),
    )


def compare_kernels(
    tree,
    strategy,
    horizon: float,
    cost_model=None,
    n_runs: int = 2000,
    seed: int = 0,
    confidence: float = 0.95,
    alpha: float = 1e-3,
) -> KernelComparisonReport:
    """Run both kernels from the same root seed and compare distributions.

    Parameters mirror :class:`~repro.simulation.montecarlo.MonteCarlo`;
    ``alpha`` is the KS significance level — the null hypothesis is
    "same distribution", so a *correct* kernel fails a level-``alpha``
    test with probability ``alpha`` per column, which is why the
    default is conservative.
    """
    from repro.maintenance.costs import CostModel
    from repro.simulation.executor import FMTSimulator, SimulationConfig
    from repro.simulation.parallel import simulate_batch_columns
    from repro.simulation.vectorized import vectorized_fallback_reason

    if n_runs < 2:
        raise ValidationError(f"n_runs must be >= 2, got {n_runs}")

    resolved_costs = cost_model if cost_model is not None else CostModel()
    batches = {}
    fallback = None
    for kernel in ("object", "vectorized"):
        simulator = FMTSimulator(
            tree,
            strategy,
            config=SimulationConfig(
                horizon=horizon, cost_model=resolved_costs, kernel=kernel
            ),
        )
        if kernel == "vectorized":
            fallback = vectorized_fallback_reason(simulator)
        # Same root seed on both sides, spawned exactly like a
        # MonteCarlo driver would, so the object column equals a
        # kernel="object" run bit for bit.
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        batches[kernel] = simulate_batch_columns(simulator, seeds)

    obj, vec = batches["object"], batches["vectorized"]
    ks_results = tuple(
        result
        for result in (
            _ks("first_failure", obj.first_failure, vec.first_failure),
            _ks("cost_total", obj.cost_total, vec.cost_total),
        )
        if result is not None
    )

    obj_summary = summarize(obj, confidence=confidence)
    vec_summary = summarize(vec, confidence=confidence)
    kpi_overlap = {
        name: intervals_overlap(
            getattr(obj_summary, name), getattr(vec_summary, name)
        )
        if math.isfinite(getattr(obj_summary, name).estimate)
        and math.isfinite(getattr(vec_summary, name).estimate)
        else False
        for name in (
            "unreliability",
            "failures_per_year",
            "availability",
            "cost_per_year",
        )
    }

    passed = all(result.passed(alpha) for result in ks_results) and all(
        kpi_overlap.values()
    )
    return KernelComparisonReport(
        n_runs=n_runs,
        seed=seed,
        alpha=alpha,
        fallback_reason=fallback,
        ks=ks_results,
        kpi_overlap=kpi_overlap,
        object_summary=obj_summary,
        vectorized_summary=vec_summary,
        passed=passed,
    )
