"""Per-trajectory simulation records.

A :class:`Trajectory` is everything one simulated life of the system
produces: system failure times, downtime, cost breakdown, and — when
event recording is enabled — the stream of component-level events that
the synthetic incident database is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.maintenance.costs import CostBreakdown

__all__ = ["ComponentEvent", "Trajectory"]


@dataclass(frozen=True)
class ComponentEvent:
    """One component-level occurrence during a trajectory.

    ``kind`` is one of:

    * ``"failure"`` — the component (basic event) failed;
    * ``"detection"`` — an inspection found the component degraded;
    * ``"clean"`` / ``"repair"`` / ``"replace"`` — a maintenance action
      was applied (``corrective`` tells planned from unplanned);
    * ``"system_failure"`` — the top event occurred (component field
      holds the top element's name);
    * ``"system_restored"`` — corrective renewal completed.
    """

    time: float
    component: str
    kind: str
    corrective: bool = False
    phase: Optional[int] = None


@dataclass
class Trajectory:
    """Result of simulating one trajectory up to ``horizon`` years."""

    horizon: float
    failure_times: List[float] = field(default_factory=list)
    downtime: float = 0.0
    costs: CostBreakdown = field(default_factory=CostBreakdown)
    n_inspections: int = 0
    n_preventive_actions: int = 0
    n_corrective_replacements: int = 0
    events: List[ComponentEvent] = field(default_factory=list)
    #: Whether component-level events were recorded for this trajectory
    #: (``SimulationConfig.record_events``).  ``None`` means unknown
    #: (hand-built or legacy records); event-dependent consumers such
    #: as :func:`~repro.simulation.metrics.availability_curve` then
    #: fall back to inferring it from the record itself.
    events_recorded: Optional[bool] = None

    @property
    def n_failures(self) -> int:
        """Number of system (top-event) failures in the horizon."""
        return len(self.failure_times)

    @property
    def first_failure(self) -> Optional[float]:
        """Time of the first system failure, or None if none occurred."""
        return self.failure_times[0] if self.failure_times else None

    @property
    def failed_by_horizon(self) -> bool:
        """Whether at least one system failure occurred."""
        return bool(self.failure_times)

    @property
    def availability(self) -> float:
        """Fraction of the horizon the system was up."""
        if self.horizon <= 0.0:
            return 1.0
        return max(0.0, 1.0 - self.downtime / self.horizon)

    @property
    def failures_per_year(self) -> float:
        """Average number of system failures per year."""
        if self.horizon <= 0.0:
            return 0.0
        return self.n_failures / self.horizon

    def survived_until(self, t: float) -> bool:
        """Whether the system had no failure up to (and including) ``t``."""
        first = self.first_failure
        return first is None or first > t

    def copy(self) -> "Trajectory":
        """Independent copy (the event records themselves are shared —
        :class:`ComponentEvent` is frozen, so sharing is safe)."""
        return Trajectory(
            horizon=self.horizon,
            failure_times=list(self.failure_times),
            downtime=self.downtime,
            costs=replace(self.costs),
            n_inspections=self.n_inspections,
            n_preventive_actions=self.n_preventive_actions,
            n_corrective_replacements=self.n_corrective_replacements,
            events=list(self.events),
            events_recorded=self.events_recorded,
        )
