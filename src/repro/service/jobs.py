"""Bounded job queue with warm-start workers and in-flight dedup.

The service accepts more clients than it can simulate for at once;
the :class:`JobQueue` is the pressure valve between them:

* **bounded**: at most ``max_pending`` jobs wait; a submit beyond that
  raises :class:`QueueFull`, which the HTTP layer maps to ``429`` with
  a ``Retry-After`` header — backpressure, not an unbounded backlog;
* **deduplicating**: submits are keyed by the request's
  :class:`~repro.studies.key.StudyKey` digest; a request identical to
  one already queued or running attaches to the existing job instead
  of simulating again — many clients, one simulation;
* **warm-start**: all workers share one
  :class:`~repro.studies.StudyRunner`, whose prototype LRU keeps a
  validated simulator resident per model; each job clones the
  prototype instead of re-validating the tree (the PR 4 clone path),
  so repeat models skip construction entirely;
* **observable**: each job accumulates the run's
  :class:`~repro.observability.progress.ProgressEvent` records
  (schema v1), which ``GET /v1/studies/{id}/events`` streams back.

Workers are threads, not processes: the runner itself owns any process
pool, and a worker thread spends its time inside numpy/simulation code
anyway.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.observability.progress import ProgressEvent, use_progress
from repro.simulation.metrics import KpiSummary
from repro.studies.runner import StudyRequest, StudyRunner

__all__ = ["Job", "JobQueue", "QueueFull"]

#: Finished jobs retained for status queries before eviction.
DEFAULT_MAX_FINISHED = 1024

_STOP = object()


class QueueFull(Exception):
    """The pending queue is at capacity; retry after ``retry_after``."""

    def __init__(self, pending: int, retry_after: float):
        super().__init__(
            f"job queue full ({pending} pending); retry in {retry_after:g}s"
        )
        self.pending = pending
        self.retry_after = retry_after


class Job:
    """One submitted study and its lifecycle.

    Status moves ``queued`` → ``running`` → ``done`` | ``failed``.
    ``result`` holds the :class:`KpiSummary` once done; ``events`` the
    progress records collected while running.  ``kernel`` is the
    sampling kernel the job runs on (after any service-side routing)
    and ``kernel_fallback`` the reason a vectorized run will fall back
    to the object engine, when known.  All fields are written by
    exactly one worker thread and read by HTTP threads; the
    ``threading.Event`` publishes the final state safely.
    """

    __slots__ = (
        "id",
        "request",
        "digest",
        "status",
        "result",
        "error",
        "events",
        "kernel",
        "kernel_fallback",
        "created_at",
        "started_at",
        "finished_at",
        "_finished",
    )

    def __init__(
        self,
        job_id: str,
        request: StudyRequest,
        digest: str,
        kernel_fallback: Optional[str] = None,
    ):
        self.id = job_id
        self.request = request
        self.digest = digest
        self.kernel = request.kernel
        self.kernel_fallback = kernel_fallback
        self.status = "queued"
        self.result: Optional[KpiSummary] = None
        self.error: Optional[str] = None
        self.events: List[dict] = []
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._finished = threading.Event()

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes (or ``timeout`` elapses)."""
        return self._finished.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.id}, {self.status}, digest={self.digest[:12]})"


class _JobProgressReporter:
    """Collects a job's progress events (schema v1 dict records)."""

    def __init__(self, job: Job):
        self._job = job

    def update(self, event: ProgressEvent) -> None:
        self._job.events.append(event.to_dict())

    def close(self) -> None:
        pass


class JobQueue:
    """Bounded queue of study jobs executed by warm worker threads."""

    def __init__(
        self,
        runner: StudyRunner,
        max_pending: int = 64,
        workers: int = 2,
        retry_after: float = 1.0,
        max_finished: int = DEFAULT_MAX_FINISHED,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.runner = runner
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.max_finished = max_finished
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-{n}", daemon=True
            )
            for n in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------
    def submit(
        self,
        request: StudyRequest,
        kernel_fallback: Optional[str] = None,
    ) -> "tuple[Job, bool]":
        """Enqueue ``request``; returns ``(job, created)``.

        ``created`` is False when an identical request (same study-key
        digest) is already queued or running — the caller gets that
        job instead, so N clients asking the same question cost one
        simulation.  ``kernel_fallback`` annotates the job with the
        reason a vectorized run will use the object engine (surfaced
        by the status endpoint).

        Raises
        ------
        QueueFull
            When the pending queue is at capacity.
        """
        digest = request.key().digest
        with self._lock:
            existing = self._inflight.get(digest)
            if existing is not None:
                return existing, False
            job = Job(
                f"job-{next(self._ids):06d}-{digest[:8]}",
                request,
                digest,
                kernel_fallback=kernel_fallback,
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise QueueFull(self._queue.qsize(), self.retry_after) from None
            self._inflight[digest] = job
            self._jobs[job.id] = job
            self._evict_finished()
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or None (expired or never existed)."""
        with self._lock:
            return self._jobs.get(job_id)

    @property
    def pending(self) -> int:
        """Jobs waiting for a worker (excludes the ones running)."""
        return self._queue.qsize()

    @property
    def inflight(self) -> int:
        """Jobs queued or running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """Snapshot for ``/healthz``."""
        with self._lock:
            return {
                "pending": self._queue.qsize(),
                "inflight": len(self._inflight),
                "retained": len(self._jobs),
                "workers": len(self._workers),
            }

    def close(self) -> None:
        """Stop the workers after the jobs already queued drain."""
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=30.0)
        self._workers = []

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _evict_finished(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap.

        Called with the lock held.  Unfinished jobs are never evicted,
        so a slow job's status stays queryable no matter the churn.
        """
        excess = len(self._jobs) - self.max_finished
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]:
            del self._jobs[job_id]

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            job.started_at = time.time()
            job.status = "running"
            reporter = _JobProgressReporter(job)
            try:
                with use_progress(reporter):
                    job.result = self.runner.summary(job.request)
                job.status = "done"
            except Exception as exc:  # the job fails, the worker survives
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
            finally:
                job.finished_at = time.time()
                with self._lock:
                    self._inflight.pop(job.digest, None)
                job._finished.set()
