"""The one stdlib HTTP server implementation behind every endpoint.

``python -m repro serve`` (the analysis service) and ``python -m repro
metrics-serve`` (the Prometheus exposition verb) mount different *apps*
on the same :class:`AppServer`: a threaded :mod:`http.server` wrapper
that parses the request line, reads the body, and hands
``(method, path, query, body)`` to the app's :meth:`handle`, which
returns an :class:`HttpResponse`.  Apps stay plain objects — routable,
testable without sockets — and the server stays free of any knowledge
of studies or metrics.

This module is deliberately stdlib-only and imports nothing from the
rest of the package, so :mod:`repro.observability.exposition` can build
on it without an import cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Protocol, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpResponse", "WireApp", "AppServer"]


@dataclass
class HttpResponse:
    """What an app returns for one request."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)


class WireApp(Protocol):
    """Anything mountable on an :class:`AppServer`."""

    def handle(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> HttpResponse:
        """Serve one request."""
        ...  # pragma: no cover - protocol


class AppServer:
    """Threaded stdlib HTTP server for a :class:`WireApp`.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction).  :meth:`start` serves from a daemon thread (tests,
    the load harness); :meth:`serve_forever` blocks (the CLI verbs).
    Each request runs on its own thread, so a long poll never blocks a
    health check.
    """

    def __init__(self, app: WireApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self, method: str) -> None:
                split = urlsplit(self.path)
                query = dict(parse_qsl(split.query))
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                try:
                    response = server.app.handle(
                        method, split.path, query, body
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    response = HttpResponse(
                        500,
                        f'{{"error": "internal error: {type(exc).__name__}"}}\n'.encode("utf-8"),
                    )
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(response.body)))
                for name, value in response.headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(response.body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                self._serve("GET")

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                self._serve("POST")

            def do_DELETE(self) -> None:  # noqa: N802 - http.server API
                self._serve("DELETE")

            def log_message(self, *args) -> None:  # silence request noise
                server.requests_served += 1

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            # socketserver's default listen backlog of 5 drops
            # connections under a concurrent-client burst (the dropped
            # SYN retries after ~1s, wrecking tail latency); size it
            # for the load the service is benchmarked at.
            request_queue_size = 256

        self.requests_served = 0
        self._httpd = _Server((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AppServer":
        """Serve from a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        close = getattr(self.app, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "AppServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AppServer({type(self.app).__name__} @ {self.url})"
