"""The versioned JSON wire schema of the analysis service.

One payload format drives the HTTP API, the CLI, and future warehouse
persistence: every object that crosses a process boundary is wrapped
in an *envelope* ::

    {"schema_version": 1, "kind": "study_request", "payload": {...}}

``kind`` names the object type; ``payload`` is the object's own
``to_dict()`` rendering.  :func:`encode_wire` / :func:`decode_wire`
are the codec entry points; :func:`dumps` / :func:`loads` add strict,
deterministic JSON on top (sorted keys, no NaN/Infinity tokens) so two
encodes of the same object are byte-identical — which is what lets the
service prove a cached HTTP response equals an in-process result.

Compatibility policy
--------------------
``WIRE_SCHEMA_VERSION`` is a single integer, bumped whenever a change
would not be decodable by an existing decoder (a removed field, a
changed meaning, a new required field).  Decoders:

* reject a payload whose ``schema_version`` is missing, non-integer,
  or **newer** than what they support (fail loud, never guess);
* accept every older version they know how to read (additive fields
  carry defaults in the ``from_dict`` codecs, so version 1 decoders
  remain correct for version-1 payloads forever);
* reject unknown ``kind`` values and structurally malformed payloads
  with :class:`WireError`.

Adding an optional field with a default does **not** require a bump;
anything else does.  The envelope is also deliberately independent of
the study-cache ``CODE_SALT``: a payload stays decodable across
releases even when the cache key changes underneath it.

Round-trip guarantee
--------------------
``decode_wire(encode_wire(request))`` reconstructs a
:class:`~repro.studies.runner.StudyRequest` with the identical
:class:`~repro.studies.key.StudyKey` digest, so wire-submitted studies
share cache entries (and bit-identical results) with in-process ones.
The hypothesis suite in ``tests/test_wire.py`` pins this property.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Tuple

from repro.core.tree import FaultMaintenanceTree
from repro.errors import ModelError, ValidationError
from repro.maintenance.costs import CostBreakdown, CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.metrics import KpiSummary
from repro.stats.confidence import ConfidenceInterval
from repro.studies.runner import StudyRequest

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "encode_wire",
    "decode_wire",
    "dumps",
    "loads",
    "summary_to_dict",
    "summary_from_dict",
]

#: Current wire schema version (see the compatibility policy above).
WIRE_SCHEMA_VERSION = 1


class WireError(ValidationError):
    """A wire payload that cannot be encoded or decoded."""


# ----------------------------------------------------------------------
# Floats: strict JSON has no NaN/Infinity tokens, but confidence
# intervals legitimately carry infinite bounds (degenerate n<=1
# intervals).  Non-finite floats travel as sentinel strings.
# ----------------------------------------------------------------------
def _encode_float(value: float) -> Any:
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "NaN"
    return "Infinity" if value > 0 else "-Infinity"


def _decode_float(value: Any) -> float:
    if isinstance(value, str):
        if value == "NaN":
            return math.nan
        if value == "Infinity":
            return math.inf
        if value == "-Infinity":
            return -math.inf
        raise WireError(f"not a wire float: {value!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"not a wire float: {value!r}")
    return float(value)


# ----------------------------------------------------------------------
# Result codecs (ConfidenceInterval / KpiSummary) — these objects have
# no to_dict of their own because they never needed one before the
# service; the codec lives here with the rest of the wire format.
# ----------------------------------------------------------------------
def _ci_to_dict(ci: ConfidenceInterval) -> dict:
    return {
        "estimate": _encode_float(ci.estimate),
        "lower": _encode_float(ci.lower),
        "upper": _encode_float(ci.upper),
        "confidence": _encode_float(ci.confidence),
    }


def _ci_from_dict(data: dict) -> ConfidenceInterval:
    return ConfidenceInterval(
        estimate=_decode_float(data["estimate"]),
        lower=_decode_float(data["lower"]),
        upper=_decode_float(data["upper"]),
        confidence=_decode_float(data["confidence"]),
    )


_SUMMARY_CIS = (
    "unreliability",
    "expected_failures",
    "failures_per_year",
    "availability",
    "cost_per_year",
)
_SUMMARY_FLOATS = (
    "inspections_per_year",
    "preventive_actions_per_year",
    "corrective_replacements_per_year",
)


def summary_to_dict(summary: KpiSummary) -> dict:
    """JSON-safe rendering of a :class:`KpiSummary` (inverse of
    :func:`summary_from_dict`)."""
    data: Dict[str, Any] = {
        "n_runs": summary.n_runs,
        "horizon": _encode_float(summary.horizon),
        "cost_breakdown_per_year": {
            key: _encode_float(value)
            for key, value in summary.cost_breakdown_per_year.as_dict().items()
            if key != "total"  # derived, recomputed on decode
        },
    }
    for name in _SUMMARY_CIS:
        data[name] = _ci_to_dict(getattr(summary, name))
    for name in _SUMMARY_FLOATS:
        data[name] = _encode_float(getattr(summary, name))
    return data


def summary_from_dict(data: dict) -> KpiSummary:
    """Inverse of :func:`summary_to_dict`."""
    breakdown = CostBreakdown.from_dict(
        {
            key: _decode_float(value)
            for key, value in data["cost_breakdown_per_year"].items()
        }
    )
    kwargs: Dict[str, Any] = {
        "n_runs": int(data["n_runs"]),
        "horizon": _decode_float(data["horizon"]),
        "cost_breakdown_per_year": breakdown,
    }
    for name in _SUMMARY_CIS:
        kwargs[name] = _ci_from_dict(data[name])
    for name in _SUMMARY_FLOATS:
        kwargs[name] = _decode_float(data[name])
    return KpiSummary(**kwargs)


# ----------------------------------------------------------------------
# The envelope
# ----------------------------------------------------------------------
_Codec = Tuple[Callable[[Any], dict], Callable[[dict], Any]]

_CODECS: Dict[str, _Codec] = {
    "tree": (
        lambda obj: obj.to_dict(),
        FaultMaintenanceTree.from_dict,
    ),
    "strategy": (
        lambda obj: obj.to_dict(),
        MaintenanceStrategy.from_dict,
    ),
    "cost_model": (
        lambda obj: obj.to_dict(),
        CostModel.from_dict,
    ),
    "study_request": (
        lambda obj: obj.to_dict(),
        StudyRequest.from_dict,
    ),
    "kpi_summary": (summary_to_dict, summary_from_dict),
}

_KIND_BY_TYPE = {
    FaultMaintenanceTree: "tree",
    MaintenanceStrategy: "strategy",
    CostModel: "cost_model",
    StudyRequest: "study_request",
    KpiSummary: "kpi_summary",
}


def encode_wire(obj: Any) -> dict:
    """Wrap ``obj`` in a versioned wire envelope.

    Supported kinds: :class:`FaultMaintenanceTree`,
    :class:`MaintenanceStrategy`, :class:`CostModel`,
    :class:`StudyRequest`, :class:`KpiSummary`.
    """
    kind = _KIND_BY_TYPE.get(type(obj))
    if kind is None:
        for cls, name in _KIND_BY_TYPE.items():  # subclasses
            if isinstance(obj, cls):
                kind = name
                break
    if kind is None:
        raise WireError(
            f"no wire codec for {type(obj).__name__!r}; supported kinds: "
            f"{sorted(_CODECS)}"
        )
    encode, _ = _CODECS[kind]
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "kind": kind,
        "payload": encode(obj),
    }


def decode_wire(data: Any, expect: str = None) -> Any:
    """Decode a wire envelope back into the object it describes.

    ``expect`` optionally pins the ``kind`` (the service requires
    ``study_request`` on submissions).  Raises :class:`WireError` for
    anything malformed: non-dict input, missing/unsupported
    ``schema_version``, unknown ``kind``, or a payload the codec
    cannot reconstruct.
    """
    if not isinstance(data, dict):
        raise WireError(
            f"wire envelope must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError(
            "wire envelope is missing an integer 'schema_version' field"
        )
    if version < 1 or version > WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported schema_version {version} (this build speaks "
            f"1..{WIRE_SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    codec = _CODECS.get(kind)
    if codec is None:
        raise WireError(
            f"unknown wire kind {kind!r}; supported: {sorted(_CODECS)}"
        )
    if expect is not None and kind != expect:
        raise WireError(f"expected a {expect!r} payload, got {kind!r}")
    payload = data.get("payload")
    if not isinstance(payload, dict):
        raise WireError("wire envelope is missing the 'payload' object")
    _, decode = codec
    try:
        return decode(payload)
    except WireError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise WireError(f"malformed {kind} payload: {exc!r}") from exc
    except (ValidationError, ModelError, ValueError) as exc:
        raise WireError(f"invalid {kind} payload: {exc}") from exc


def dumps(obj: Any) -> str:
    """Deterministic JSON text of ``obj``'s wire envelope.

    Keys are sorted and separators fixed, so encoding the same object
    twice yields byte-identical text — the service's cache-equality
    checks rely on this.
    """
    return json.dumps(
        encode_wire(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def loads(text: str, expect: str = None) -> Any:
    """Inverse of :func:`dumps` (accepts any wire-envelope JSON text)."""
    try:
        data = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise WireError(f"not valid JSON: {exc}") from exc
    return decode_wire(data, expect=expect)
