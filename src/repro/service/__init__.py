"""Analysis-as-a-service: HTTP API + JSON wire schema over the runner.

* :mod:`repro.service.wire` — the versioned JSON wire schema
  (``encode_wire`` / ``decode_wire``, ``WIRE_SCHEMA_VERSION``);
* :mod:`repro.service.http` — the one stdlib HTTP server
  implementation shared with ``metrics-serve``;
* :mod:`repro.service.jobs` — bounded job queue, warm-start workers,
  in-flight deduplication;
* :mod:`repro.service.app` — the endpoints and :func:`serve_app`.

See docs/service.md for the endpoint and wire-schema reference.

Attribute access is lazy (PEP 562): :mod:`repro.observability.
exposition` imports :mod:`repro.service.http` at package-import time,
and an eager ``from repro.service.app import ...`` here would close an
import cycle through :mod:`repro.studies`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "AppServer",
    "HttpResponse",
    "Job",
    "JobQueue",
    "QueueFull",
    "StudyService",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "decode_wire",
    "encode_wire",
    "serve_app",
]

_LOCATIONS = {
    "AppServer": "repro.service.http",
    "HttpResponse": "repro.service.http",
    "Job": "repro.service.jobs",
    "JobQueue": "repro.service.jobs",
    "QueueFull": "repro.service.jobs",
    "StudyService": "repro.service.app",
    "WIRE_SCHEMA_VERSION": "repro.service.wire",
    "WireError": "repro.service.wire",
    "decode_wire": "repro.service.wire",
    "encode_wire": "repro.service.wire",
    "serve_app": "repro.service.app",
}

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports
    from repro.service.app import StudyService, serve_app
    from repro.service.http import AppServer, HttpResponse
    from repro.service.jobs import Job, JobQueue, QueueFull
    from repro.service.wire import (
        WIRE_SCHEMA_VERSION,
        WireError,
        decode_wire,
        encode_wire,
    )


def __getattr__(name: str):
    location = _LOCATIONS.get(name)
    if location is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(location), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
