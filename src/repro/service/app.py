"""Analysis-as-a-service: the HTTP application over the study runner.

Endpoints (all JSON unless noted):

``POST /v1/studies``
    Body: a ``study_request`` wire envelope
    (:mod:`repro.service.wire`).  A request whose summary is already
    cached is answered **synchronously** with ``200`` and the result —
    the :class:`~repro.studies.key.StudyKey` digest is the HTTP cache
    key, and cached submissions never touch the queue.  Otherwise the
    job is enqueued: ``202`` with a job id (a resubmission identical
    to a queued/running job attaches to it instead of re-simulating).
    A full queue answers ``429`` with a ``Retry-After`` header.

``GET /v1/studies/{id}``
    Job status; includes the wire-encoded result once ``done``.

``GET /v1/studies/{id}/events``
    The job's progress stream as NDJSON —
    :class:`~repro.observability.progress.ProgressEvent` schema v1
    records, terminated by one ``{"record": "job", ...}`` line.

``GET /healthz``
    Liveness plus queue depth.

``GET /metrics``
    Prometheus text exposition of the service's registry (the same
    :func:`~repro.observability.exposition.render_prometheus` as the
    ``metrics-serve`` verb), including the ``study.*`` cache counters.

The app itself is transport-free (``handle()`` in, ``HttpResponse``
out); :func:`serve_app` mounts it on the shared
:class:`~repro.service.http.AppServer`.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.observability.exposition import CONTENT_TYPE, render_prometheus
from repro.observability.instrumentation import Instrumentation
from repro.service.http import AppServer, HttpResponse
from repro.service.jobs import Job, JobQueue, QueueFull
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    decode_wire,
    encode_wire,
)
from repro.studies.runner import StudyRequest, StudyRunner

__all__ = ["StudyService", "serve_app"]

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

#: Kernel-routing memo bound (simulator-material digests retained).
_FALLBACK_MEMO_MAX = 256
_UNCLASSIFIED = object()


def _json_bytes(payload: Any) -> bytes:
    # sort_keys + fixed separators: the same result object always
    # renders to the same bytes, which is how clients (and the test
    # suite) can assert that a cached response equals a fresh one.
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _json_response(
    status: int, payload: Any, headers: Tuple[Tuple[str, str], ...] = ()
) -> HttpResponse:
    return HttpResponse(status, _json_bytes(payload), _JSON, headers)


def _error(status: int, message: str, **extra: Any) -> HttpResponse:
    body = {"error": message}
    body.update(extra)
    headers = ()
    if "retry_after" in extra:
        headers = (("Retry-After", f"{extra['retry_after']:g}"),)
    return _json_response(status, body, headers)


class StudyService:
    """The routable analysis-service application.

    Parameters
    ----------
    runner:
        The shared :class:`StudyRunner`; built fresh (serial, no disk
        cache) when omitted.  Its memo/disk caches are what make
        resubmissions synchronous.
    max_pending / workers:
        Queue bound and worker-thread count (see
        :class:`~repro.service.jobs.JobQueue`).
    retry_after:
        Seconds advertised in the ``Retry-After`` header of a ``429``.
    instrumentation:
        Metrics sink backing ``/metrics``; created when omitted and
        shared with the runner so ``study.*`` counters surface too.
    """

    def __init__(
        self,
        runner: Optional[StudyRunner] = None,
        *,
        max_pending: int = 64,
        workers: int = 2,
        retry_after: float = 1.0,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        if runner is None:
            runner = StudyRunner(instrumentation=self.instrumentation)
        elif runner.instrumentation is None:
            runner.instrumentation = self.instrumentation
        self.runner = runner
        self.jobs = JobQueue(
            runner,
            max_pending=max_pending,
            workers=workers,
            retry_after=retry_after,
        )
        # simulator-material digest -> vectorized fallback reason (or
        # None).  The classification is a pure function of the model,
        # so repeat submissions skip the prototype walk entirely.
        self._fallback_memo: "OrderedDict[str, Optional[str]]" = OrderedDict()
        self._fallback_memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> HttpResponse:
        """Serve one request (transport-free entry point)."""
        self.instrumentation.count("service.requests")
        if path == "/healthz":
            return self._healthz(method)
        if path == "/metrics":
            return self._metrics(method)
        if path == "/v1/studies":
            if method != "POST":
                return _error(405, "use POST to submit a study")
            return self._submit(body)
        if path.startswith("/v1/studies/"):
            rest = path[len("/v1/studies/"):]
            if method != "GET":
                return _error(405, "study resources are read-only")
            if rest.endswith("/events"):
                return self._events(rest[: -len("/events")].rstrip("/"))
            return self._status(rest)
        return _error(
            404,
            "unknown path; try POST /v1/studies, GET /v1/studies/{id}, "
            "GET /v1/studies/{id}/events, /healthz or /metrics",
        )

    def close(self) -> None:
        """Drain the queue, stop the workers, shut the runner down."""
        self.jobs.close()
        self.runner.close()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _submit(self, body: bytes) -> HttpResponse:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.instrumentation.count("service.bad_requests")
            return _error(400, f"request body is not valid JSON: {exc}")
        try:
            request = decode_wire(data, expect="study_request")
        except WireError as exc:
            self.instrumentation.count("service.bad_requests")
            return _error(400, str(exc), schema_version=WIRE_SCHEMA_VERSION)
        payload_fields = data.get("payload")
        request, kernel_fallback = self._route_kernel(
            request,
            payload_fields if isinstance(payload_fields, dict) else {},
        )
        digest = request.key().digest
        # Cache fast path: the StudyKey digest is the HTTP cache key.
        # A hit is answered on the request thread — no queue, no job.
        cached = self.runner.peek_summary(request)
        if cached is not None:
            self.instrumentation.count("service.cache_hits")
            return _json_response(
                200,
                {
                    "status": "done",
                    "cached": True,
                    "study_key": digest,
                    "kernel": request.kernel,
                    "kernel_fallback_reason": kernel_fallback,
                    "result": encode_wire(cached),
                },
            )
        try:
            job, created = self.jobs.submit(
                request, kernel_fallback=kernel_fallback
            )
        except QueueFull as exc:
            self.instrumentation.count("service.rejected")
            return _error(
                429,
                str(exc),
                retry_after=exc.retry_after,
                pending=exc.pending,
            )
        self.instrumentation.count(
            "service.jobs_created" if created else "service.jobs_joined"
        )
        return _json_response(
            202,
            {
                "job_id": job.id,
                "status": job.status,
                "cached": False,
                "deduplicated": not created,
                "study_key": digest,
                "kernel": job.kernel,
                "kernel_fallback_reason": job.kernel_fallback,
                "location": f"/v1/studies/{job.id}",
                "events": f"/v1/studies/{job.id}/events",
            },
        )

    def _route_kernel(
        self, request: StudyRequest, payload: Dict[str, Any]
    ) -> Tuple[StudyRequest, Optional[str]]:
        """Default eligible submissions to the vectorized kernel.

        A submission that *names* a kernel keeps it — explicit choice
        wins.  One that omits the field is upgraded to the lockstep
        kernel when :func:`~repro.simulation.vectorized.
        vectorized_fallback_reason` clears the model, and left on the
        object engine (with the reason surfaced) otherwise.  The
        rewrite happens before the study key is computed, so the
        upgraded request gets the vectorized cache namespace — it
        never aliases object-engine artifacts.
        """
        from dataclasses import replace

        from repro.simulation.vectorized import vectorized_fallback_reason
        from repro.studies.key import StudyKey

        explicit = "kernel" in payload
        if explicit and request.kernel != "vectorized":
            return request, None
        try:
            material = StudyKey.from_material(
                request.simulator_material()
            ).digest
            with self._fallback_memo_lock:
                memoized = self._fallback_memo.get(material, _UNCLASSIFIED)
            if memoized is not _UNCLASSIFIED:
                reason = memoized
            else:
                reason = vectorized_fallback_reason(
                    self.runner.prototype(request)
                )
                with self._fallback_memo_lock:
                    while len(self._fallback_memo) >= _FALLBACK_MEMO_MAX:
                        self._fallback_memo.popitem(last=False)
                    self._fallback_memo[material] = reason
        except Exception:
            # A model the simulator rejects fails identically on either
            # kernel; let the job (or the synchronous cache path)
            # surface the real error.
            return request, None
        if explicit:
            return request, reason
        if reason is not None:
            return request, reason
        self.instrumentation.count("service.kernel_upgrades")
        return replace(request, kernel="vectorized"), None

    def _status(self, job_id: str) -> HttpResponse:
        job = self.jobs.get(job_id)
        if job is None:
            return _error(404, f"no such job: {job_id!r}")
        payload: Dict[str, Any] = {
            "job_id": job.id,
            "status": job.status,
            "cached": False,
            "study_key": job.digest,
            "kernel": job.kernel,
            "kernel_fallback_reason": job.kernel_fallback,
            "created_at": job.created_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
        }
        if job.status == "done":
            payload["result"] = encode_wire(job.result)
        elif job.status == "failed":
            payload["error"] = job.error
        return _json_response(200, payload)

    def _events(self, job_id: str) -> HttpResponse:
        job = self.jobs.get(job_id)
        if job is None:
            return _error(404, f"no such job: {job_id!r}")
        records = list(job.events)
        records.append(
            {
                "record": "job",
                "job_id": job.id,
                "status": job.status,
                "events": len(records),
            }
        )
        body = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        return HttpResponse(200, body, _NDJSON)

    def _healthz(self, method: str) -> HttpResponse:
        if method != "GET":
            return _error(405, "use GET")
        payload = {"status": "ok", "jobs": self.jobs.stats()}
        return _json_response(200, payload)

    def _metrics(self, method: str) -> HttpResponse:
        if method != "GET":
            return _error(405, "use GET")
        body = render_prometheus(
            self.instrumentation.registry.to_dict()
        ).encode("utf-8")
        return HttpResponse(200, body, CONTENT_TYPE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StudyService(jobs={self.jobs.stats()})"


def serve_app(
    runner: Optional[StudyRunner] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8177,
    max_pending: int = 64,
    workers: int = 2,
    retry_after: float = 1.0,
    instrumentation: Optional[Instrumentation] = None,
) -> AppServer:
    """Mount a :class:`StudyService` on the shared HTTP stack.

    Returns the (not yet started) :class:`AppServer`; call
    :meth:`~repro.service.http.AppServer.start` for a background
    thread (tests, embedding) or
    :meth:`~repro.service.http.AppServer.serve_forever` to block (the
    ``python -m repro serve`` verb).  Stopping the server closes the
    service (queue drained, runner pool shut down).

    >>> import repro
    >>> server = repro.serve_app(port=0).start()
    >>> server.url  # doctest: +SKIP
    'http://127.0.0.1:54321'
    >>> server.stop()
    """
    service = StudyService(
        runner,
        max_pending=max_pending,
        workers=workers,
        retry_after=retry_after,
        instrumentation=instrumentation,
    )
    return AppServer(service, host=host, port=port)
