"""Common-cause failures: the beta-factor model as a tree transform.

Redundancy arguments (the 2-of-4 bolt gate tolerating two failures)
assume independence, but components installed together share causes:
one bad batch of bolts, one sloppy installation.  The classical
**beta-factor model** splits each member's failure rate: a fraction
``beta`` of failures strike the whole group at once, the rest stay
independent.

:func:`apply_beta_factor` implements the model as a *tree transform*:
each group member ``X`` becomes ``OR(X_indep, CCF)`` where ``X_indep``
keeps ``(1-beta)`` of the original rate and the new shared basic event
``CCF`` carries ``beta`` of it.  The transformed tree is an ordinary
FMT — every analysis engine (BDD, CTMC, simulator) applies unchanged,
which is the point of expressing CCF structurally.

The transform requires single-phase (exponential) group members: for
multi-phase events the "rate split" has no canonical definition.

A subtlety worth knowing: because the transform preserves each member's
*marginal* lifetime, it only redistributes the joint behaviour — more
mass on "all fail together" and on "none fail".  For short missions
(member failure probability small) this is devastating for k-of-n
redundancy: the failure probability jumps from O(p^k) to O(beta*p).
For long missions (p near 1) the same correlation can *reduce* the
k-of-n failure probability.  The tests pin both regimes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.errors import UnsupportedModelError, ValidationError

__all__ = ["apply_beta_factor"]


def apply_beta_factor(
    tree: FaultMaintenanceTree,
    group: Sequence[str],
    beta: float,
    ccf_name: str = "ccf",
) -> FaultMaintenanceTree:
    """Return a copy of ``tree`` with a beta-factor CCF on ``group``.

    Parameters
    ----------
    tree:
        The original tree.  Maintenance modules and dependencies that
        reference the group members are not remapped automatically and
        therefore rejected; apply the transform before attaching
        maintenance.
    group:
        Names of the (single-phase) basic events sharing the cause.
    beta:
        Fraction of each member's failure rate attributed to the
        common cause (0 < beta < 1).
    ccf_name:
        Name of the introduced common-cause basic event.
    """
    if not 0.0 < beta < 1.0:
        raise ValidationError(f"beta must be in (0, 1), got {beta}")
    members = list(group)
    if len(members) < 2:
        raise ValidationError("a common-cause group needs >= 2 members")
    events = tree.basic_events
    rates: List[float] = []
    for name in members:
        event = events.get(name)
        if event is None:
            raise ValidationError(f"unknown group member {name!r}")
        if event.phases != 1:
            raise UnsupportedModelError(
                f"{name!r} has {event.phases} phases; the beta-factor "
                "rate split is defined for single-phase events"
            )
        rates.append(event.phase_rates[0])
    if len(set(rates)) != 1:
        raise UnsupportedModelError(
            "beta-factor requires identical member rates "
            f"(got {sorted(set(rates))}); use explicit modelling otherwise"
        )
    for module in list(tree.inspections) + list(tree.repairs):
        if set(module.targets) & set(members):
            raise UnsupportedModelError(
                f"maintenance module {module.name!r} targets group "
                "members; apply the CCF transform before maintenance"
            )
    for dep in tree.dependencies:
        if set(dep.targets) & set(members) or dep.trigger in members:
            raise UnsupportedModelError(
                f"dependency {dep.name!r} references group members; "
                "apply the CCF transform first"
            )
    if ccf_name in tree.nodes:
        raise ValidationError(f"name {ccf_name!r} already used in the tree")

    rate = rates[0]
    ccf_event = BasicEvent(
        ccf_name,
        phase_rates=[beta * rate],
        description=f"common cause of {', '.join(members)} "
        f"(beta={beta:g})",
    )
    member_set = set(members)
    rebuilt: Dict[str, Element] = {}

    def _rebuild(node: Element) -> Element:
        hit = rebuilt.get(node.name)
        if hit is not None:
            return hit
        if isinstance(node, BasicEvent):
            if node.name in member_set:
                independent = BasicEvent(
                    f"{node.name}_indep",
                    phase_rates=[(1.0 - beta) * rate],
                    threshold=node.threshold,
                    repair_time=node.repair_time,
                    description=node.description,
                )
                result: Element = OrGate(node.name, [independent, ccf_event])
            else:
                result = node
        else:
            assert isinstance(node, Gate)
            children = [_rebuild(child) for child in node.children]
            result = _clone_gate(node, children)
        rebuilt[node.name] = result
        return result

    return FaultMaintenanceTree(
        top=_rebuild(tree.top),
        dependencies=tree.dependencies,
        inspections=tree.inspections,
        repairs=tree.repairs,
        name=tree.name,
    )


def _clone_gate(gate: Gate, children: List[Element]) -> Gate:
    if isinstance(gate, OrGate):
        return OrGate(gate.name, children)
    if isinstance(gate, VotingGate):
        return VotingGate(gate.name, gate.k, children)
    if isinstance(gate, PandGate):
        return PandGate(gate.name, children)
    if isinstance(gate, InhibitGate):
        return InhibitGate(gate.name, children)
    if isinstance(gate, AndGate):
        return AndGate(gate.name, children)
    raise UnsupportedModelError(  # pragma: no cover - defensive
        f"cannot clone gate type {type(gate).__name__}"
    )
